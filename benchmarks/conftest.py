"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures and prints the
series the paper plots (run with ``-s`` to see them). Runs are deterministic,
so a single round per benchmark is meaningful.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the target exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner


def show(table) -> None:
    print()
    print(table.render())
