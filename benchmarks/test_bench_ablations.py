"""Ablation benchmarks for design choices called out in DESIGN.md.

These go beyond the paper's figures: they isolate individual mechanisms of
the model (steering mechanism, NIC-side LRO vs software GRO, the DCA
dilution model, and the §4 zero-copy what-if) so their contribution to the
headline results is visible.
"""

import dataclasses

from repro.config import (
    ExperimentConfig,
    HostConfig,
    OptimizationConfig,
    SteeringMode,
)
from repro.core.experiment import Experiment
from repro.core.report import Table
from repro.costs.calibration import zero_copy_cost_model
from repro.units import msec

from .conftest import show


def run(config: ExperimentConfig):
    return Experiment(
        config.replace(duration_ns=msec(6), warmup_ns=msec(10))
    ).run()


def steering_ablation() -> Table:
    """All four Table-2 steering mechanisms on the single-flow workload."""
    table = Table(
        "Ablation: flow steering mechanisms (single flow)",
        ["mechanism", "thpt_per_core_gbps", "miss_rate", "receiver_cores"],
    )
    cases = [
        ("aRFS", ExperimentConfig(opts=OptimizationConfig.all())),
        (
            "RFS",
            ExperimentConfig(
                opts=OptimizationConfig.tso_gro_jumbo(),
                worst_case_irq_mapping=False,
                steering=SteeringMode.RFS,
            ),
        ),
        (
            "RSS/RPS",
            ExperimentConfig(
                opts=OptimizationConfig.tso_gro_jumbo(),
                worst_case_irq_mapping=False,
                steering=SteeringMode.RSS,
            ),
        ),
        (
            "RSS (worst-case pin)",
            ExperimentConfig(opts=OptimizationConfig.tso_gro_jumbo()),
        ),
    ]
    for label, config in cases:
        result = run(config)
        table.add_row(
            label,
            result.throughput_per_core_gbps,
            f"{result.receiver_cache_miss_rate:.0%}",
            result.receiver_utilization_cores,
        )
    return table


def test_steering_ablation(once):
    table = once(steering_ablation)
    show(table)
    per_core = dict(zip(table.column("mechanism"),
                        table.column("thpt_per_core_gbps")))
    assert per_core["aRFS"] > per_core["RFS"]  # only aRFS unlocks DCA
    assert per_core["aRFS"] > per_core["RSS (worst-case pin)"]


def lro_ablation() -> Table:
    """Footnote 3: NIC-side LRO vs software GRO."""
    table = Table(
        "Ablation: LRO (NIC merge) vs GRO (software merge)",
        ["receive_offload", "thpt_per_core_gbps", "netdev_fraction"],
    )
    from repro.core.taxonomy import Category

    for label, opts in (
        ("GRO", OptimizationConfig.all()),
        ("LRO", OptimizationConfig(tso_gro=True, jumbo=True, arfs=True, lro=True)),
    ):
        result = run(ExperimentConfig(opts=opts))
        table.add_row(
            label,
            result.throughput_per_core_gbps,
            result.receiver_breakdown.fraction(Category.NETDEV),
        )
    return table


def test_lro_ablation(once):
    """The paper reaches ~55Gbps with LRO: NIC merging skips GRO cycles."""
    table = once(lro_ablation)
    show(table)
    gro, lro = table.rows
    assert lro[1] > gro[1]        # LRO is faster per core...
    assert lro[2] < gro[2]        # ...because the netdev share shrinks


def dca_dilution_ablation() -> Table:
    """The descriptor-footprint dilution model behind Fig 3e."""
    table = Table(
        "Ablation: DCA dilution exponent (ring=8192, static 3200KB buffer)",
        ["dilution_exponent", "thpt_gbps", "miss_rate"],
    )
    from repro.config import NicConfig, TcpConfig
    from repro.units import kb

    for exponent in (0.0, 0.25, 1.0):
        config = ExperimentConfig(
            host=HostConfig(dca_dilution_exponent=exponent),
            nic=NicConfig(rx_descriptors=8192),
            tcp=TcpConfig(rx_buffer_bytes=kb(3200), autotune_rx_buffer=False),
        )
        result = run(config)
        table.add_row(
            exponent,
            result.total_throughput_gbps,
            f"{result.receiver_cache_miss_rate:.0%}",
        )
    return table


def test_dca_dilution_ablation(once):
    table = once(dca_dilution_ablation)
    show(table)
    throughputs = table.column("thpt_gbps")
    assert throughputs[0] > throughputs[2]  # stronger dilution hurts


def zero_copy_ablation() -> Table:
    """§4 what-if: receiver-side zero copy."""
    table = Table(
        "Ablation: zero-copy receive path (paper §4)",
        ["stack", "thpt_per_core_gbps"],
    )
    baseline = run(ExperimentConfig())
    zero = run(
        ExperimentConfig(
            cost_overrides=dataclasses.asdict(zero_copy_cost_model())
        )
    )
    table.add_row("in-kernel copies", baseline.throughput_per_core_gbps)
    table.add_row("zero-copy", zero.throughput_per_core_gbps)
    return table


def test_zero_copy_ablation(once):
    """The paper projects ~100Gbps-per-core without the receive copy."""
    table = once(zero_copy_ablation)
    show(table)
    baseline, zero = table.column("thpt_per_core_gbps")
    assert zero > 1.6 * baseline
    assert zero > 80
