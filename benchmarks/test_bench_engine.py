"""Micro-benchmarks for the discrete-event engine hot loop.

Unlike the figure benchmarks (one deterministic round each), these measure
the two paths the sim/engine.py micro-optimizations target: the plain
schedule/fire loop, and timer churn where most scheduled events are cancelled
before they fire (the TCP RTO / delayed-ACK / pacing re-arm pattern).
"""

from repro.sim.engine import Engine

NUM_EVENTS = 50_000


def _schedule_and_run() -> int:
    engine = Engine()
    fired = 0

    def tick() -> None:
        nonlocal fired
        fired += 1

    for i in range(NUM_EVENTS):
        engine.schedule(i % 977, tick)
    engine.run()
    return fired


def _cancel_churn() -> int:
    """Re-armed timers: every event re-schedules a timer and cancels the old
    one, so cancelled events vastly outnumber live ones in the heap."""
    engine = Engine()
    fired = 0
    timer = None

    def tick() -> None:
        nonlocal fired, timer
        fired += 1
        if fired < NUM_EVENTS:
            old = timer
            timer = engine.schedule(100, tick)
            engine.schedule(50, noop)
            if old is not None:
                old.cancel()
            # Arm-and-cancel immediately: the dead-event tail the compaction
            # bookkeeping is there to keep out of the heap.
            engine.schedule(1_000_000, noop).cancel()

    def noop() -> None:
        pass

    timer = engine.schedule(0, tick)
    engine.run()
    return fired


def test_engine_schedule_run(benchmark):
    fired = benchmark(_schedule_and_run)
    assert fired == NUM_EVENTS


def test_engine_cancel_churn(benchmark):
    fired = benchmark(_cancel_churn)
    assert fired == NUM_EVENTS
