"""Benchmarks regenerating Fig 10 (short-flow RPCs, §3.7)."""

from repro.core.taxonomy import Category
from repro.figures import fig10

from .conftest import show


def test_fig10a_throughput_vs_rpc_size(once):
    table = once(fig10.fig10a, sizes=(4, 64))
    show(table)
    all_opt = [row for row in table.rows if row[1] == "+aRFS"]
    assert all_opt[1][2] > 2 * all_opt[0][2]


def test_fig10b_copy_not_dominant_for_4kb(once):
    results = once(fig10._all_opt_results, (4, 64))
    table = fig10.fig10b(results)
    show(table)
    copy_col = table.columns.index(Category.DATA_COPY.label)
    small, large = table.rows
    assert float(small[copy_col]) < float(large[copy_col])


def test_fig10c_numa_placement_marginal(once):
    table = once(fig10.fig10c)
    show(table)
    local, remote = table.rows
    assert remote[1] > 0.85 * local[1]  # unlike long flows (Fig 4)
