"""Benchmarks regenerating Fig 11 (mixed long/short flows, §3.7)."""

from repro.figures import fig11

from .conftest import show


def test_fig11a_mixing_degrades_throughput(once):
    results = once(fig11._results, (0, 16))
    table = fig11.fig11a(results)
    show(table)
    per_core = table.column("thpt_per_core_gbps")
    assert per_core[1] < 0.75 * per_core[0]  # paper: ~43% drop


def test_fig11b_breakdown(once):
    results = once(fig11._results, (0, 16))
    table = fig11.fig11b(results)
    show(table)
    copy_col = table.columns.index("data copy")
    assert float(table.rows[1][copy_col]) > 0.25  # copy still dominant


def test_fig11_isolation_comparison(once):
    table = once(fig11.isolation_comparison)
    show(table)
    isolated, mixed = table.rows
    assert mixed[1] < isolated[1]  # long flow loses when mixed
    assert mixed[2] < isolated[2]  # short flows lose too
