"""Benchmarks regenerating Fig 12 (DCA and IOMMU, §3.8-§3.9)."""

from repro.core.taxonomy import Category
from repro.figures import fig12

from .conftest import show


def test_fig12a_host_configs(once):
    table = once(fig12.fig12a)
    show(table)
    all_opt = {row[0]: row[2] for row in table.rows if row[1] == "+aRFS"}
    assert all_opt["DCA Disabled"] < all_opt["Default"]
    assert all_opt["IOMMU Enabled"] < all_opt["Default"]


def test_fig12bc_iommu_memory_blowup(once):
    results = once(fig12._results)
    table_b = fig12.fig12b(results)
    table_c = fig12.fig12c(results)
    show(table_b)
    show(table_c)
    mem_col = table_c.columns.index(Category.MEMORY.label)
    rows = {row[0]: float(row[mem_col]) for row in table_c.rows}
    assert rows["IOMMU Enabled"] > rows["Default"] + 0.10
