"""Benchmarks regenerating Fig 13 (congestion control protocols, §3.10)."""

from repro.core.taxonomy import Category
from repro.figures import fig13

from .conftest import show


def test_fig13a_protocol_parity(once):
    results = once(fig13._results)
    table = fig13.fig13a(results)
    show(table)
    values = table.column("thpt_per_core_gbps")
    assert max(values) / min(values) < 1.25


def test_fig13b_bbr_scheduling_signature(once):
    results = once(fig13._results)
    table = fig13.fig13b(results)
    show(table)
    sched_col = table.columns.index(Category.SCHED.label)
    rows = {row[0]: float(row[sched_col]) for row in table.rows}
    assert rows["bbr"] > rows["cubic"]


def test_fig13c_receiver_side_identical(once):
    results = once(fig13._results)
    table = fig13.fig13c(results)
    show(table)
    copy_col = table.columns.index(Category.DATA_COPY.label)
    values = [float(row[copy_col]) for row in table.rows]
    assert max(values) - min(values) < 0.12
