"""Benchmarks regenerating Fig 3 (single-flow study, §3.1)."""

from repro.figures import fig3

from .conftest import show


def test_fig3a_optimization_ladder(once):
    table = once(fig3.fig3a)
    show(table)
    values = table.column("thpt_per_core_gbps")
    assert values == sorted(values)  # incremental optimizations monotone
    assert values[-1] > 4 * values[0]


def test_fig3b_cpu_utilization(once):
    table = once(fig3.fig3b)
    show(table)
    # receiver-side CPU is the bottleneck in every column
    senders = table.column("sender_util_pct")
    receivers = table.column("receiver_util_pct")
    assert all(r > s for s, r in zip(senders, receivers))


def test_fig3c_sender_breakdown(once):
    table = once(fig3.fig3c)
    show(table)
    assert len(table.rows) == 4


def test_fig3d_receiver_breakdown(once):
    table = once(fig3.fig3d)
    show(table)
    # all-opt row: data copy dominates
    final = table.rows[-1]
    copy_fraction = float(final[table.columns.index("data copy")])
    assert copy_fraction > 0.40


def test_fig3e_ring_and_buffer_sweep(once):
    table = once(fig3.fig3e, ring_sizes=(128, 1024, 8192), buffers_kb=(3200, 6400))
    show(table)
    # larger rings dilute DCA: miss grows for the static 3200KB series
    rows_3200 = [row for row in table.rows if row[1] == "3200KB"]
    misses = [float(row[3].rstrip("%")) for row in rows_3200]
    assert misses[0] < misses[-1]


def test_fig3f_latency_vs_buffer(once):
    table = once(fig3.fig3f, buffers_kb=(100, 800, 3200, 12800))
    show(table)
    latencies = table.column("avg_latency_us")
    assert latencies == sorted(latencies)  # latency rises with buffer size
    assert latencies[-1] > 10 * latencies[0]
