"""Benchmark regenerating Fig 4 (NIC-remote NUMA placement, §3.1)."""

from repro.figures import fig4

from .conftest import show


def test_fig4_numa_placement(once):
    table = once(fig4.fig4)
    show(table)
    local, remote = table.rows
    assert remote[1] < local[1]  # throughput-per-core drops off-node
    assert float(remote[2].rstrip("%")) > float(local[2].rstrip("%"))
