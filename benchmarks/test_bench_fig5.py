"""Benchmarks regenerating Fig 5 (one-to-one scaling, §3.2)."""

from repro.core.taxonomy import Category
from repro.figures import fig5

from .conftest import show


def test_fig5a_throughput_per_core(once):
    table = once(fig5.fig5a, flows=(1, 8, 24))
    show(table)
    all_opt = [
        row for row in table.rows if row[1] == "+aRFS"
    ]
    per_core = [row[2] for row in all_opt]
    assert per_core[-1] < per_core[0]  # per-core efficiency drops with flows
    totals = [row[3] for row in all_opt]
    assert totals[1] > 90  # the link saturates by 8 flows


def test_fig5b_sender_breakdown(once):
    results = once(fig5._all_opt_results, (1, 24))
    table = fig5.fig5b(results)
    show(table)
    assert len(table.rows) == 2


def test_fig5c_receiver_breakdown_shifts(once):
    results = once(fig5._all_opt_results, (1, 24))
    table = fig5.fig5c(results)
    show(table)
    sched_col = table.columns.index(Category.SCHED.label)
    mem_col = table.columns.index(Category.MEMORY.label)
    one, twentyfour = table.rows
    assert float(twentyfour[sched_col]) > float(one[sched_col])  # sched grows
    assert float(twentyfour[mem_col]) < float(one[mem_col])      # memory falls
