"""Benchmarks regenerating Fig 6 (incast, §3.3)."""

from repro.figures import fig6

from .conftest import show


def test_fig6a_throughput_per_core(once):
    table = once(fig6.fig6a, flows=(1, 8))
    show(table)
    all_opt = [row for row in table.rows if row[1] == "+aRFS"]
    assert all_opt[1][2] < all_opt[0][2]  # per-core drops with incast degree


def test_fig6b_breakdown_stable(once):
    results = once(fig6._all_opt_results, (1, 8))
    table = fig6.fig6b(results)
    show(table)
    copy_col = table.columns.index("data copy")
    values = [float(row[copy_col]) for row in table.rows]
    assert abs(values[0] - values[1]) < 0.15


def test_fig6c_miss_rate_grows(once):
    results = once(fig6._all_opt_results, (1, 8))
    table = fig6.fig6c(results)
    show(table)
    misses = [float(row[2].rstrip("%")) for row in table.rows]
    assert misses[1] > misses[0]
