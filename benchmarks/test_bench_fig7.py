"""Benchmarks regenerating Fig 7 (outcast, §3.4)."""

from repro.figures import fig7

from .conftest import show


def test_fig7a_sender_core_efficiency(once):
    table = once(fig7.fig7a, flows=(1, 8))
    show(table)
    all_opt = [row for row in table.rows if row[1] == "+aRFS"]
    # a single sender core sustains close to the paper's ~89Gbps at 8 flows
    assert all_opt[1][2] > 70
    # total throughput scales with the number of receiver cores
    assert all_opt[1][3] > all_opt[0][3]


def test_fig7b_copy_still_dominant(once):
    results = once(fig7._all_opt_results, (8,))
    table = fig7.fig7b(results)
    show(table)
    copy = float(table.rows[0][table.columns.index("data copy")])
    assert copy > 0.30


def test_fig7c_sender_cache_warm(once):
    results = once(fig7._all_opt_results, (8,))
    table = fig7.fig7c(results)
    show(table)
    miss = float(table.rows[0][3].rstrip("%"))
    assert miss < 35
