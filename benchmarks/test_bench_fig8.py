"""Benchmarks regenerating Fig 8 (all-to-all, §3.5)."""

from repro.figures import fig8

from .conftest import show


def test_fig8a_per_core_collapse(once):
    table = once(fig8.fig8a, sides=(1, 8, 24))
    show(table)
    all_opt = [row for row in table.rows if row[1] == "+aRFS"]
    per_core = [row[2] for row in all_opt]
    assert per_core[2] < per_core[1] < per_core[0]
    assert per_core[2] < 0.55 * per_core[0]  # paper: ~67% reduction


def test_fig8b_breakdown(once):
    results = once(fig8._all_opt_results, (1, 24))
    table = fig8.fig8b(results)
    show(table)
    assert len(table.rows) == 2


def test_fig8c_skb_sizes_shrink(once):
    results = once(fig8._all_opt_results, (1, 8, 24))
    table = fig8.fig8c(results)
    show(table)
    means = table.column("mean_skb_kb")
    assert means[2] < means[0]
    full_fraction = table.column("frac_64kb_skbs")
    assert full_fraction[2] < full_fraction[0]
