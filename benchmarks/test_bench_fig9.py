"""Benchmarks regenerating Fig 9 (in-network loss, §3.6)."""

from repro.core.taxonomy import Category
from repro.figures import fig9

from .conftest import show


def test_fig9a_throughput_vs_loss(once):
    results = once(fig9._results, (0.0, 1.5e-3, 1.5e-2))
    table = fig9.fig9a(results)
    show(table)
    totals = table.column("total_thpt_gbps")
    assert totals[0] > totals[1] > totals[2]
    assert table.column("retransmits")[2] > 0


def test_fig9b_utilization_vs_loss(once):
    results = once(fig9._results, (0.0, 1.5e-2))
    table = fig9.fig9b(results)
    show(table)
    receivers = table.column("receiver_util_pct")
    assert receivers[1] < receivers[0]


def test_fig9cd_breakdowns_shift_to_protocol(once):
    results = once(fig9._results, (0.0, 1.5e-2))
    table_c = fig9.fig9c(results)
    table_d = fig9.fig9d(results)
    show(table_c)
    show(table_d)
    tcp_col = table_d.columns.index(Category.TCPIP.label)
    clean, lossy = table_d.rows
    assert float(lossy[tcp_col]) > float(clean[tcp_col])
