"""Benchmarks regenerating the paper's Tables 1 and 2."""

from repro.figures import tables

from .conftest import show


def test_table1_taxonomy(once):
    table = once(tables.table1)
    show(table)
    assert len(table.rows) == 8  # the paper's 8 CPU-usage categories


def test_table2_steering(once):
    table = once(tables.table2)
    show(table)
    assert [row[0] for row in table.rows] == ["RPS", "RFS", "RSS", "ARFS"]
