#!/usr/bin/env python3
"""Congestion control protocols and in-network loss (paper §3.6, §3.10).

Part 1 compares CUBIC, BBR and DCTCP on a clean path (Fig 13): the receiver
is the bottleneck, so throughput barely moves, but BBR's pacing timers show
up as sender-side scheduling.

Part 2 injects random drops at a switch (Fig 9) and watches retransmissions
eat into throughput while the TCP share of CPU grows.

Run:
    python examples/congestion_loss_study.py
"""

from repro import (
    CongestionControl,
    Experiment,
    ExperimentConfig,
    LinkConfig,
    TcpConfig,
)
from repro.core.taxonomy import Category
from repro.units import msec


def run(config: ExperimentConfig):
    return Experiment(
        config.replace(duration_ns=msec(8), warmup_ns=msec(12))
    ).run()


def main() -> None:
    print("== congestion control (clean path) ==")
    print(f"{'protocol':8s} {'thpt/core':>10s} {'snd sched%':>11s} {'rcv copy%':>10s}")
    for cc in (CongestionControl.CUBIC, CongestionControl.BBR, CongestionControl.DCTCP):
        link = LinkConfig(has_switch=(cc is CongestionControl.DCTCP))
        result = run(ExperimentConfig(tcp=TcpConfig(congestion_control=cc), link=link))
        print(
            f"{cc.value:8s} {result.throughput_per_core_gbps:9.1f}G "
            f"{result.sender_breakdown.fraction(Category.SCHED):10.1%} "
            f"{result.receiver_breakdown.fraction(Category.DATA_COPY):9.1%}"
        )

    print()
    print("== random drops at an in-path switch ==")
    print(f"{'loss rate':>9s} {'total':>8s} {'thpt/core':>10s} {'retx':>6s} "
          f"{'rcv tcp%':>9s}")
    for loss in (0.0, 1.5e-4, 1.5e-3, 1.5e-2):
        result = run(
            ExperimentConfig(link=LinkConfig(loss_rate=loss, has_switch=True))
        )
        print(
            f"{loss:9.0e} {result.total_throughput_gbps:7.1f}G "
            f"{result.throughput_per_core_gbps:9.1f}G {result.retransmits:6d} "
            f"{result.receiver_breakdown.fraction(Category.TCPIP):8.1%}"
        )


if __name__ == "__main__":
    main()
