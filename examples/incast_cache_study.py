#!/usr/bin/env python3
"""Study receiver cache contention under incast (paper §3.3, Fig 6).

Sweeps the number of flows converging on a single receiver core and shows
the L3/DCA miss rate climbing as flows pollute each other's DMA'd data —
the paper's "host resource sharing considered harmful" finding.

Run:
    python examples/incast_cache_study.py
"""

from repro import Experiment, ExperimentConfig, TrafficPattern
from repro.units import msec


def main() -> None:
    print(f"{'flows':>5s} {'thpt/core':>10s} {'total':>8s} {'miss rate':>10s}")
    baseline = None
    for flows in (1, 2, 4, 8, 16, 24):
        config = ExperimentConfig(
            pattern=TrafficPattern.INCAST,
            num_flows=flows,
            duration_ns=msec(8),
            warmup_ns=msec(40),  # autotuned buffers need time to fill
        )
        result = Experiment(config).run()
        if baseline is None:
            baseline = result.throughput_per_core_gbps
        delta = result.throughput_per_core_gbps / baseline - 1
        print(
            f"{flows:5d} {result.throughput_per_core_gbps:9.1f}G "
            f"{result.total_throughput_gbps:7.1f}G "
            f"{result.receiver_cache_miss_rate:9.1%}  ({delta:+.0%} vs 1 flow)"
        )
    print()
    print("More flows per receiver core -> more DCA evictions before the app")
    print("copies -> higher per-byte copy cost -> lower throughput-per-core.")


if __name__ == "__main__":
    main()
