#!/usr/bin/env python3
"""Mixing long and short flows on one core (paper §3.7, Fig 11).

Measures a bulk flow and a set of 4KB ping-pong RPC flows in isolation,
then colocated on the same core — demonstrating why the paper argues for
application-aware CPU scheduling.

Run:
    python examples/mixed_workload_study.py
"""

from repro import Experiment, ExperimentConfig, TrafficPattern, WorkloadConfig
from repro.core.taxonomy import Category
from repro.units import msec

NUM_SHORT = 16


def run(num_short: int, include_long: bool):
    config = ExperimentConfig(
        pattern=TrafficPattern.MIXED,
        duration_ns=msec(8),
        warmup_ns=msec(12),
        workload=WorkloadConfig(
            num_rpc_flows=num_short, include_long_flow=include_long
        ),
    )
    return Experiment(config).run()


def main() -> None:
    long_alone = run(0, True)
    short_alone = run(NUM_SHORT, False)
    mixed = run(NUM_SHORT, True)

    long_iso = long_alone.throughput_by_tag_gbps.get("long", 0.0)
    short_iso = short_alone.throughput_by_tag_gbps.get("short", 0.0)
    long_mix = mixed.throughput_by_tag_gbps.get("long", 0.0)
    short_mix = mixed.throughput_by_tag_gbps.get("short", 0.0)

    print(f"{'workload':32s} {'long flow':>10s} {'short flows':>12s}")
    print(f"{'isolated':32s} {long_iso:9.1f}G {short_iso:11.2f}G")
    print(f"{'mixed on one core':32s} {long_mix:9.1f}G {short_mix:11.2f}G")
    print(
        f"{'penalty':32s} {long_mix / long_iso - 1:>9.0%} "
        f"{short_mix / short_iso - 1:>11.0%}"
    )
    print()
    sched = mixed.receiver_breakdown.fraction(Category.SCHED)
    sched_base = long_alone.receiver_breakdown.fraction(Category.SCHED)
    print(f"receiver scheduling share: {sched_base:.1%} alone -> {sched:.1%} mixed")
    print("Both flow classes lose when sharing a core: the paper's case for")
    print("scheduling long-flow and short-flow applications on separate cores.")


if __name__ == "__main__":
    main()
