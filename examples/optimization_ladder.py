#!/usr/bin/env python3
"""Walk the paper's Fig 3a optimization ladder.

Enables TSO/GRO, jumbo frames, and aRFS incrementally — exactly the columns
of the paper's Fig 3a — and shows how the bottleneck shifts from protocol
processing to data copy as packet-processing overheads are optimized away.

Run:
    python examples/optimization_ladder.py
"""

from repro import Experiment, ExperimentConfig, OptimizationConfig
from repro.core.taxonomy import Category
from repro.units import msec


def main() -> None:
    print(f"{'config':10s} {'thpt/core':>10s} {'total':>8s} "
          f"{'rcv util':>9s} {'copy%':>6s} {'tcpip%':>7s} {'miss%':>6s}")
    for label, opts in OptimizationConfig.incremental_ladder():
        config = ExperimentConfig(
            opts=opts, duration_ns=msec(8), warmup_ns=msec(10)
        )
        result = Experiment(config).run()
        breakdown = result.receiver_breakdown
        print(
            f"{label:10s} {result.throughput_per_core_gbps:9.1f}G "
            f"{result.total_throughput_gbps:7.1f}G "
            f"{result.receiver_utilization_cores:8.2f}c "
            f"{breakdown.fraction(Category.DATA_COPY):6.1%} "
            f"{breakdown.fraction(Category.TCPIP):6.1%} "
            f"{result.receiver_cache_miss_rate:6.1%}"
        )
    print()
    print("Note how TCP/IP processing dominates the unoptimized stack while")
    print("data copy dominates once aggregation offloads are on - the paper's")
    print("core finding about the shifting bottleneck.")


if __name__ == "__main__":
    main()
