#!/usr/bin/env python3
"""Quickstart: measure a single 100Gbps flow through the simulated stack.

Reproduces the paper's §3.1 headline in a few lines: one iperf-style flow
between two directly-connected hosts with every optimization enabled, then
prints throughput-per-core and the receiver's Table-1 CPU breakdown.

Run:
    python examples/quickstart.py
"""

from repro import Experiment, ExperimentConfig
from repro.units import msec


def main() -> None:
    config = ExperimentConfig(duration_ns=msec(8), warmup_ns=msec(10))
    result = Experiment(config).run()

    print(result.summary())
    print()
    print(f"total throughput       : {result.total_throughput_gbps:6.1f} Gbps")
    print(f"throughput-per-core    : {result.throughput_per_core_gbps:6.1f} Gbps")
    print(f"sender CPU utilization : {100 * result.sender_utilization_cores:6.1f} %")
    print(f"receiver CPU util.     : {100 * result.receiver_utilization_cores:6.1f} %")
    print(f"receiver L3 miss rate  : {100 * result.receiver_cache_miss_rate:6.1f} %")
    print(
        f"NAPI->copy latency     : avg {result.copy_latency.avg_ns / 1000:.0f}us, "
        f"p99 {result.copy_latency.p99_ns / 1000:.0f}us"
    )
    print()
    print("receiver CPU breakdown (paper Fig 3d, '+aRFS' column):")
    for label, fraction in result.receiver_breakdown.as_rows():
        bar = "#" * int(50 * fraction)
        print(f"  {label:22s} {fraction:5.1%}  {bar}")


if __name__ == "__main__":
    main()
