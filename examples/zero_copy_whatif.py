#!/usr/bin/env python3
"""What-if: a zero-copy receive path (paper §4, "Zero-copy mechanisms").

The paper projects that eliminating the receiver's user-space copy
(MSG_ZEROCOPY / TCP mmap-style interfaces) could push a single core towards
100Gbps. This example swaps in the zero-copy cost profile — payload copies
free, small pinning overhead per call — and re-runs the single-flow study.

Run:
    python examples/zero_copy_whatif.py
"""

import dataclasses

from repro import Experiment, ExperimentConfig, zero_copy_cost_model
from repro.core.taxonomy import Category
from repro.units import msec


def run(cost_overrides: dict):
    config = ExperimentConfig(
        duration_ns=msec(8), warmup_ns=msec(10), cost_overrides=cost_overrides
    )
    return Experiment(config).run()


def main() -> None:
    baseline = run({})
    zero_copy = run(dataclasses.asdict(zero_copy_cost_model()))

    print(f"{'stack':16s} {'thpt/core':>10s} {'rcv copy%':>10s} {'rcv tcpip%':>11s}")
    for label, result in (("today's stack", baseline), ("zero-copy", zero_copy)):
        print(
            f"{label:16s} {result.throughput_per_core_gbps:9.1f}G "
            f"{result.receiver_breakdown.fraction(Category.DATA_COPY):9.1%} "
            f"{result.receiver_breakdown.fraction(Category.TCPIP):10.1%}"
        )
    speedup = (
        zero_copy.throughput_per_core_gbps / baseline.throughput_per_core_gbps
    )
    print()
    print(f"zero-copy speedup: {speedup:.2f}x per core")
    print("With the copy gone, the residual per-skb processing becomes the")
    print("next bottleneck - the paper's point that userspace stacks without")
    print("zero-copy interfaces only move the problem around.")


if __name__ == "__main__":
    main()
