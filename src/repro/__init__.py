"""repro — a simulation-based reproduction of
*Understanding Host Network Stack Overheads* (SIGCOMM 2021).

Public API quickstart::

    from repro import Experiment, ExperimentConfig, TrafficPattern

    config = ExperimentConfig(pattern=TrafficPattern.SINGLE)
    result = Experiment(config).run()
    print(result.summary())
    print(result.receiver_breakdown.as_rows())

Batches of independent configs parallelize and cache transparently::

    from repro import ResultCache, run_many

    results = run_many(configs, jobs=8, cache=ResultCache())

See ``repro.figures`` for generators reproducing every figure of the paper's
evaluation, and DESIGN.md for the system inventory.
"""

from .config import (
    CongestionControl,
    ExperimentConfig,
    HostConfig,
    LinkConfig,
    NicConfig,
    NumaPolicy,
    OptimizationConfig,
    SteeringMode,
    TcpConfig,
    TrafficPattern,
    WorkloadConfig,
)
from .core.cache import ResultCache
from .core.experiment import Experiment
from .core.metrics import LatencyStats, MetricsHub
from .core.profiler import CpuProfiler
from .core.results import BreakdownTable, ExperimentResult
from .core.runner import RunnerStats, run_many
from .core.taxonomy import Category
from .costs.calibration import default_cost_model, zero_copy_cost_model
from .costs.model import CostModel

__version__ = "1.0.0"

__all__ = [
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "BreakdownTable",
    "Category",
    "CongestionControl",
    "CostModel",
    "CpuProfiler",
    "HostConfig",
    "LatencyStats",
    "LinkConfig",
    "MetricsHub",
    "NicConfig",
    "NumaPolicy",
    "OptimizationConfig",
    "ResultCache",
    "RunnerStats",
    "SteeringMode",
    "TcpConfig",
    "TrafficPattern",
    "WorkloadConfig",
    "default_cost_model",
    "run_many",
    "zero_copy_cost_model",
    "__version__",
]
