"""Static analysis (``repro lint``): AST checkers proving repo invariants.

The four checkers and the framework they share are documented in
DESIGN.md §14. Entry point: :func:`repro.analysis.lint.run_lint` (wired to
the ``repro lint`` CLI subcommand).
"""

from .findings import Finding
from .lint import LintReport, run_lint
from .project import Project

__all__ = ["Finding", "LintReport", "Project", "run_lint"]
