"""Committed-baseline handling for ``repro lint``.

The baseline is the explicit, reviewed list of findings the tree is allowed
to carry: each entry names the finding's stable identity plus a mandatory
human reason. The gate is *ratcheting*:

* a finding not in the baseline fails the lint run (no new debt), and
* a baseline entry that no longer matches anything fails it too (debt that
  was paid off must leave the ledger — ``repro lint --write-baseline``
  rewrites the file from the current findings, preserving reasons).

Entries match on :meth:`repro.analysis.findings.Finding.identity` — rule,
path, symbol and message, never line numbers — so accepted findings survive
unrelated edits in the same file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Finding

#: The committed baseline ships inside the package, next to this module.
DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    message: str
    reason: str = ""

    def identity(self) -> Tuple[str, str, str, str]:
        return (self.rule, self.path, self.symbol, self.message)


@dataclass
class BaselineResult:
    """Outcome of matching findings against the baseline."""

    new: List[Finding]               # findings with no baseline entry -> fail
    suppressed: List[Finding]        # findings covered by the baseline
    stale: List[BaselineEntry]       # entries matching nothing -> fail (ratchet)


def load_baseline(path: Optional[Path] = None) -> List[BaselineEntry]:
    """Entries of the baseline file; a missing file is an empty baseline."""
    path = Path(path) if path is not None else DEFAULT_BASELINE_PATH
    if not path.exists():
        return []
    document = json.loads(path.read_text())
    if document.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported lint baseline version {document.get('version')!r} "
            f"in {path} (expected {_FORMAT_VERSION})"
        )
    return [
        BaselineEntry(
            rule=entry["rule"],
            path=entry["path"],
            symbol=entry["symbol"],
            message=entry["message"],
            reason=entry.get("reason", ""),
        )
        for entry in document["findings"]
    ]


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> BaselineResult:
    """Split findings into new vs baseline-suppressed; report stale entries.

    Duplicate identities are tolerated on both sides: one entry covers every
    finding sharing its identity (several sites of one accepted pattern in
    one symbol collapse naturally).
    """
    by_identity: Dict[Tuple[str, str, str, str], BaselineEntry] = {
        entry.identity(): entry for entry in entries
    }
    used = set()
    new: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        entry = by_identity.get(finding.identity())
        if entry is None:
            new.append(finding)
        else:
            suppressed.append(finding)
            used.add(entry.identity())
    stale = [e for e in entries if e.identity() not in used]
    return BaselineResult(new=new, suppressed=suppressed, stale=stale)


def write_baseline(
    findings: Sequence[Finding],
    path: Optional[Path] = None,
    previous: Sequence[BaselineEntry] = (),
) -> Path:
    """Rewrite the baseline from the current findings.

    Reasons of surviving entries are preserved; genuinely new entries get an
    empty reason that review is expected to fill in. Output is sorted and
    deduplicated so the file diffs cleanly.
    """
    path = Path(path) if path is not None else DEFAULT_BASELINE_PATH
    reasons = {entry.identity(): entry.reason for entry in previous}
    entries = sorted(
        {
            BaselineEntry(
                rule=f.rule,
                path=f.path,
                symbol=f.symbol,
                message=f.message,
                reason=reasons.get(f.identity(), ""),
            )
            for f in findings
        },
        key=lambda e: (e.path, e.rule, e.symbol, e.message),
    )
    document = {
        "version": _FORMAT_VERSION,
        "findings": [
            {
                "rule": e.rule,
                "path": e.path,
                "symbol": e.symbol,
                "message": e.message,
                "reason": e.reason,
            }
            for e in entries
        ],
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path
