"""Checker registry for ``repro lint``.

Each checker module exposes ``CHECKER_ID`` and ``check(project) ->
list[Finding]``. Order here is presentation order; findings are re-sorted
globally before reporting, so it carries no semantics.
"""

from __future__ import annotations

from . import cache_key, determinism, express, slots

#: id -> check function, in registration order.
CHECKERS = {
    determinism.CHECKER_ID: determinism.check,
    cache_key.CHECKER_ID: cache_key.check,
    express.CHECKER_ID: express.check,
    slots.CHECKER_ID: slots.check,
}

__all__ = ["CHECKERS", "cache_key", "determinism", "express", "slots"]
