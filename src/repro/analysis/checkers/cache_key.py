"""Checker 2 — cache-key completeness: every ``ExperimentConfig`` field is
either part of the content-addressed cache key or declared excluded.

The persistent result cache (``core/cache.py``) keys entries by a hash of
``ExperimentConfig.to_canonical_dict()``. A field that affects simulation
output but is silently dropped from the key poisons the cache (stale hits);
a field excluded *implicitly* is tribal knowledge. The contract this checker
proves, against the real source:

* ``config.py`` declares ``CACHE_KEY_EXCLUDED``, a literal frozenset of
  field names, and ``_canonicalize`` (the single place the key's field set
  is decided) actually consults it.
* A field is dropped from the key **iff** both declaration sites agree:
  its name is in ``CACHE_KEY_EXCLUDED`` *and* the field carries the
  ``metadata={"cache_key": False}`` marker at its definition. One without
  the other — the historical shape of this bug — is a finding.
* Every name in ``CACHE_KEY_EXCLUDED`` is a real field (no stale entries).

Rules: ``key-marked-not-declared``, ``key-declared-not-marked``,
``key-unknown-field``, ``key-not-enforced``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from ..findings import Finding
from ..project import Project, const_str_elements

CHECKER_ID = "cache-key"

CONFIG_RELPATH = "config.py"
CONFIG_CLASS = "ExperimentConfig"
EXCLUDED_NAME = "CACHE_KEY_EXCLUDED"
CANONICALIZE_FUNC = "_canonicalize"

RATIONALES = {
    "key-marked-not-declared": "a field marked cache_key=False but absent "
    "from CACHE_KEY_EXCLUDED is dropped from the key only by convention; "
    "the declarative set is the audited contract",
    "key-declared-not-marked": "a CACHE_KEY_EXCLUDED entry whose field "
    "lacks the metadata marker hides the exclusion from the field's "
    "definition site",
    "key-unknown-field": "stale CACHE_KEY_EXCLUDED entries mask typos: a "
    "misspelled exclusion silently keeps the field in the key (or keeps a "
    "removed field's name forever)",
    "key-not-enforced": "the canonical-dict builder must consult "
    "CACHE_KEY_EXCLUDED, otherwise the declaration is decorative and the "
    "cache key drifts from it",
}


def _field_metadata_excluded(node: ast.expr) -> bool:
    """Does a field default expression carry ``metadata={'cache_key': False}``?"""
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "field"
    ):
        return False
    for keyword in node.keywords:
        if keyword.arg != "metadata" or not isinstance(keyword.value, ast.Dict):
            continue
        for key, value in zip(keyword.value.keys, keyword.value.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "cache_key"
                and isinstance(value, ast.Constant)
                and value.value is False
            ):
                return True
    return False


def _config_fields(class_node: ast.ClassDef) -> Dict[str, Tuple[int, bool]]:
    """``{field name: (lineno, metadata-excluded?)}`` for the dataclass body."""
    fields: Dict[str, Tuple[int, bool]] = {}
    for statement in class_node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            excluded = statement.value is not None and _field_metadata_excluded(
                statement.value
            )
            fields[statement.target.id] = (statement.lineno, excluded)
    return fields


def check(project: Project) -> List[Finding]:
    file = project.file(CONFIG_RELPATH)
    if file is None or file.tree is None:
        return []  # nothing to check in fixture projects without a config

    def finding(line: int, rule: str, symbol: str, message: str) -> Finding:
        return Finding(
            path=file.path,
            line=line,
            rule=rule,
            symbol=symbol,
            message=message,
            rationale=RATIONALES[rule],
            checker=CHECKER_ID,
        )

    class_node: Optional[ast.ClassDef] = None
    excluded_node: Optional[ast.Assign] = None
    canonicalize: Optional[ast.FunctionDef] = None
    for node in file.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
            class_node = node
        elif isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == EXCLUDED_NAME for t in node.targets
        ):
            excluded_node = node
        elif isinstance(node, ast.FunctionDef) and node.name == CANONICALIZE_FUNC:
            canonicalize = node

    findings: List[Finding] = []
    if class_node is None:
        return findings  # fixture without the class: out of scope

    if excluded_node is None:
        findings.append(
            finding(
                1,
                "key-not-enforced",
                "<module>",
                f"{EXCLUDED_NAME} is not declared in {CONFIG_RELPATH}",
            )
        )
        declared: List[Tuple[str, int]] = []
    else:
        declared = const_str_elements(excluded_node.value) or []
        if const_str_elements(excluded_node.value) is None:
            findings.append(
                finding(
                    excluded_node.lineno,
                    "key-not-enforced",
                    "<module>",
                    f"{EXCLUDED_NAME} must be a literal frozenset/tuple of "
                    "field-name strings so it is statically checkable",
                )
            )

    fields = _config_fields(class_node)
    declared_names = {name for name, _ in declared}

    for name, line in declared:
        if name not in fields:
            findings.append(
                finding(
                    line,
                    "key-unknown-field",
                    "<module>",
                    f"{EXCLUDED_NAME} names {name!r}, which is not a field "
                    f"of {CONFIG_CLASS}",
                )
            )
        elif not fields[name][1]:
            findings.append(
                finding(
                    fields[name][0],
                    "key-declared-not-marked",
                    CONFIG_CLASS,
                    f"field {name!r} is in {EXCLUDED_NAME} but its definition "
                    "lacks metadata={'cache_key': False}",
                )
            )

    for name, (line, marked) in fields.items():
        if marked and name not in declared_names:
            findings.append(
                finding(
                    line,
                    "key-marked-not-declared",
                    CONFIG_CLASS,
                    f"field {name!r} is marked cache_key=False but missing "
                    f"from {EXCLUDED_NAME}",
                )
            )

    if excluded_node is not None:
        if canonicalize is None or not any(
            isinstance(sub, ast.Name) and sub.id == EXCLUDED_NAME
            for sub in ast.walk(canonicalize)
        ):
            findings.append(
                finding(
                    canonicalize.lineno if canonicalize is not None else 1,
                    "key-not-enforced",
                    CANONICALIZE_FUNC if canonicalize is not None else "<module>",
                    f"{CANONICALIZE_FUNC} does not consult {EXCLUDED_NAME}; "
                    "the declared exclusions cannot be reaching the cache key",
                )
            )
    return findings
