"""Checker 1 — determinism: no ambient-nondeterminism sources in the tree.

Every result this reproduction publishes is a pure function of its
``ExperimentConfig`` (golden digests and the runner's byte-identity
guarantees depend on it). This checker forbids, at the AST level, the ways
that property has historically been broken in simulators:

``det-wallclock``
    ``time.time()``/``perf_counter()``/``monotonic()``/``datetime.now()``
    and friends — wall-clock reads leaking into logic. Virtual time is
    ``engine.now``. Timing harnesses (``bench.py``) are allowlisted.
``det-urandom``
    ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*`` — OS entropy.
``det-global-random``
    Draws from the process-global ``random`` module (``random.random()``,
    ``from random import randint`` ...). All randomness must flow through a
    seeded ``random.Random`` instance (``sim/rng.py`` streams).
``det-unseeded-rng``
    ``random.Random()`` / ``numpy.random.default_rng()`` with no seed, and
    any use of the global ``numpy.random.*`` functions.
``det-id-order``
    ``id()`` used as a sort key or in an ordering comparison — CPython heap
    addresses vary run to run.
``det-set-iter``
    Iterating a ``set``/``frozenset`` (or materializing one with
    ``list``/``tuple``) in a simulation-path module: set iteration order
    depends on insertion history and hash seeds for str-keyed sets. Wrap in
    ``sorted(...)`` or use a list/dict. Applies only under
    :data:`SIM_PATH_PREFIXES` — analysis/CLI/reporting code may iterate
    sets where order cannot reach results.
``det-fs-order``
    ``glob``/``rglob``/``iterdir``/``os.listdir``/``os.scandir`` iterated
    without ``sorted(...)`` — directory order is filesystem-dependent.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from ..findings import Finding
from ..project import Project, ScopeVisitor, SourceFile

CHECKER_ID = "determinism"

#: Package-relative prefixes where results are computed: the set-iteration
#: rule applies only here (iteration order can reach simulated behaviour).
SIM_PATH_PREFIXES = (
    "sim/",
    "hardware/",
    "kernel/",
    "workloads/",
    "costs/",
    "core/",
    "trace.py",
    "golden.py",
)

#: Package-relative files exempt from the wall-clock rule: dedicated timing
#: harnesses whose whole point is reading the host clock.
WALLCLOCK_ALLOW_FILES = frozenset({"bench.py"})

_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_ENTROPY_CALLS = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})

#: Rationale strings, one per rule (rendered once per rule by the driver).
RATIONALES = {
    "det-wallclock": "results must be a pure function of the config; "
    "wall-clock reads vary run to run (use engine virtual time)",
    "det-urandom": "OS entropy makes runs unrepeatable",
    "det-global-random": "the process-global random module is shared, "
    "unseeded state; draw from a seeded sim/rng.py stream",
    "det-unseeded-rng": "an RNG constructed without a seed derives its "
    "state from OS entropy",
    "det-id-order": "id() is a heap address; orderings built on it differ "
    "across runs and interpreters",
    "det-set-iter": "set iteration order depends on insertion history and "
    "per-process hash seeds; sort or use a list/dict on the sim path",
    "det-fs-order": "directory listing order is filesystem-dependent; "
    "wrap in sorted(...)",
}


def _call_name(file: SourceFile, node: ast.Call) -> Optional[str]:
    return file.resolve_call_target(node.func)


class _SetTracker:
    """Statically-known set expressions within one file.

    Knows three shapes: literal/constructor expressions, local names
    assigned such an expression anywhere in their function, and ``self.X``
    attributes assigned such an expression anywhere in their class.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.local_sets: Dict[ast.AST, Set[str]] = {}  # function node -> names
        self.attr_sets: Dict[str, Set[str]] = {}       # class name -> attrs
        self.module_sets: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names: Set[str] = set()
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Assign) and self.is_set_expr(sub.value):
                        for target in sub.targets:
                            if isinstance(target, ast.Name):
                                names.add(target.id)
                    elif (
                        isinstance(sub, ast.AnnAssign)
                        and sub.value is not None
                        and self.is_set_expr(sub.value)
                        and isinstance(sub.target, ast.Name)
                    ):
                        names.add(sub.target.id)
                self.local_sets[node] = names
            elif isinstance(node, ast.ClassDef):
                attrs: Set[str] = set()
                for sub in ast.walk(node):
                    value = None
                    if isinstance(sub, ast.Assign):
                        value, targets = sub.value, sub.targets
                    elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                        value, targets = sub.value, [sub.target]
                    else:
                        continue
                    if not self.is_set_expr(value):
                        continue
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attrs.add(target.attr)
                self.attr_sets[node.name] = attrs
        for node in tree.body:
            if isinstance(node, ast.Assign) and self.is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.module_sets.add(target.id)

    def is_set_expr(self, node: ast.expr) -> bool:
        """Is ``node`` statically known to evaluate to a set?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False

    def is_known_set(
        self,
        node: ast.expr,
        func: Optional[ast.AST],
        class_name: Optional[str],
    ) -> bool:
        if self.is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            if func is not None and node.id in self.local_sets.get(func, ()):
                return True
            return node.id in self.module_sets
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and class_name is not None
        ):
            return node.attr in self.attr_sets.get(class_name, ())
        return False


class _DeterminismVisitor(ScopeVisitor):
    def __init__(self, file: SourceFile, sim_path: bool) -> None:
        super().__init__()
        self.file = file
        self.sim_path = sim_path
        self.findings: List[Finding] = []
        self.sets = _SetTracker(file.tree)
        self._func_stack: List[ast.AST] = []
        self._class_stack: List[str] = []
        #: Call nodes appearing directly inside ``sorted(...)`` — exempt from
        #: the fs-order and set-iteration rules.
        self._sorted_args: Set[ast.AST] = set()

    # ------------------------------------------------------------- plumbing

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.file.path,
                line=getattr(node, "lineno", 0),
                rule=rule,
                symbol=self.qualname,
                message=message,
                rationale=RATIONALES[rule],
                checker=CHECKER_ID,
            )
        )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        try:
            self.generic_visit_scoped(node, node.name)
        finally:
            self._class_stack.pop()

    def _visit_func(self, node: ast.AST, name: str) -> None:
        self._func_stack.append(node)
        try:
            self.generic_visit_scoped(node, name)
        finally:
            self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node, node.name)

    @property
    def _current_func(self) -> Optional[ast.AST]:
        return self._func_stack[-1] if self._func_stack else None

    @property
    def _current_class(self) -> Optional[str]:
        return self._class_stack[-1] if self._class_stack else None

    # ------------------------------------------------------------ call rules

    def visit_Call(self, node: ast.Call) -> None:
        target = _call_name(self.file, node)
        if target is not None:
            self._check_call_target(node, target)
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "sorted" and node.args:
                self._sorted_args.add(node.args[0])
            if func.id in ("sorted", "min", "max"):
                self._check_sort_key(node)
            if func.id in ("list", "tuple") and len(node.args) == 1:
                self._check_set_iteration(node.args[0], node, materialize=True)
        elif isinstance(func, ast.Attribute):
            if func.attr == "sort":
                self._check_sort_key(node)
            if func.attr in ("glob", "rglob", "iterdir") and (
                node not in self._sorted_args
            ):
                self._emit(
                    node,
                    "det-fs-order",
                    f"unsorted filesystem iteration via .{func.attr}()",
                )
        self.generic_visit(node)

    def _check_call_target(self, node: ast.Call, target: str) -> None:
        if target in _WALLCLOCK_CALLS:
            if self.file.relpath not in WALLCLOCK_ALLOW_FILES:
                self._emit(node, "det-wallclock", f"wall-clock call {target}()")
            return
        if target in _ENTROPY_CALLS or target.startswith("secrets."):
            self._emit(node, "det-urandom", f"OS-entropy call {target}()")
            return
        if target in ("os.listdir", "os.scandir", "glob.glob", "glob.iglob"):
            if node not in self._sorted_args:
                self._emit(
                    node, "det-fs-order", f"unsorted filesystem listing {target}()"
                )
            return
        if target == "random.Random":
            if not node.args and not node.keywords:
                self._emit(
                    node, "det-unseeded-rng", "random.Random() constructed unseeded"
                )
            return
        if target == "random.SystemRandom":
            self._emit(node, "det-urandom", "random.SystemRandom() uses OS entropy")
            return
        if target.startswith("random."):
            self._emit(
                node,
                "det-global-random",
                f"draw from the global random module: {target}()",
            )
            return
        if target == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                self._emit(
                    node,
                    "det-unseeded-rng",
                    "numpy.random.default_rng() constructed unseeded",
                )
            return
        if target.startswith("numpy.random."):
            self._emit(
                node,
                "det-unseeded-rng",
                f"global numpy RNG call {target}()",
            )

    # ------------------------------------------------------------- id() rules

    def _is_id_ref(self, node: ast.expr) -> bool:
        """``id`` the builtin (as a reference or wrapped in a lambda)."""
        if isinstance(node, ast.Name) and node.id == "id":
            return node.id not in self.file.imports
        if isinstance(node, ast.Lambda):
            return any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
                for sub in ast.walk(node.body)
            )
        return False

    def _check_sort_key(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg == "key" and self._is_id_ref(keyword.value):
                self._emit(
                    node, "det-id-order", "id() used as a sort/min/max key"
                )

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)) for op in node.ops):
            operands = [node.left, *node.comparators]
            for operand in operands:
                if (
                    isinstance(operand, ast.Call)
                    and isinstance(operand.func, ast.Name)
                    and operand.func.id == "id"
                    and operand.func.id not in self.file.imports
                ):
                    self._emit(
                        node, "det-id-order", "id() used in an ordering comparison"
                    )
                    break
        self.generic_visit(node)

    # ------------------------------------------------------- set iteration

    def _check_set_iteration(
        self, iterable: ast.expr, site: ast.AST, materialize: bool = False
    ) -> None:
        if not self.sim_path:
            return
        if iterable in self._sorted_args:
            return
        if self.sets.is_known_set(
            iterable, self._current_func, self._current_class
        ):
            how = "materialized" if materialize else "iterated"
            self._emit(
                site,
                "det-set-iter",
                f"set {how} in unspecified order on the sim path",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter, node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_set_iteration(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in node.generators:
            self._check_set_iteration(generator.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set is fine (order does not escape); only check the
        # sources it iterates.
        self._visit_comprehension(node)


def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for file in project:
        if file.tree is None:
            continue
        sim_path = file.relpath.startswith(SIM_PATH_PREFIXES)
        visitor = _DeterminismVisitor(file, sim_path)
        # Two passes: first collect sorted(...) wrappers so rules firing
        # before their sorted() parent is visited still see the exemption.
        for node in ast.walk(file.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sorted"
                and node.args
            ):
                visitor._sorted_args.add(node.args[0])
        visitor.visit(file.tree)
        findings.extend(visitor.findings)
    return findings
