"""Checker 3 — express-lane purity: the DESIGN.md §13 contract, statically.

Express-lane entries (``Engine.express_at``) dispatch straight off a side
heap: no ``Event`` object exists and the entry can never be cancelled. The
lane is only byte-identical to the wheel because everything it carries is
*fully determined* work. Code running under a lane callback that quietly
creates wheel traffic is therefore suspect: the wheel event it schedules is
cancellable state the lane's identity argument knows nothing about, and the
hot loop's "provably empty skipped region" reasoning stops holding if lane
work re-enters the wheel in unexpected places.

This checker finds every lane entry point —

* the callback passed to ``*.express_at(time, fn, ...)``, and
* any function that draws a lane ticket with ``*.reserve_serial()``
  (a producer deferring a registration),

— then walks the statically-resolvable call graph from each root
(``self.method()`` edges, same-module function calls, and functions defined
inside a traversed function) and flags:

``express-wheel-schedule``
    a reachable call to ``*.schedule(...)`` / ``*.schedule_at(...)``.
``express-event-alloc``
    a reachable direct allocation of ``Event(...)``.

Deliberately-gated wheel fallbacks (the eager branch behind
``express_enabled`` / quiescence checks) are real findings by design: they
live in the committed baseline with a reason, so any *new* wheel traffic
reachable from the lane must be justified the same way.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..findings import Finding
from ..project import Project, SourceFile

CHECKER_ID = "express-purity"

RATIONALES = {
    "express-wheel-schedule": "code reachable from an express-lane entry "
    "point schedules wheel events; the lane's byte-identity argument only "
    "covers fully-determined, cancel-free work (DESIGN.md §13) — gate "
    "the wheel path explicitly and justify it in the baseline",
    "express-event-alloc": "an Event allocated under a lane callback "
    "creates cancellable wheel state the express fast-forward cannot see",
}

_SINK_ATTRS = frozenset({"schedule", "schedule_at"})


def _body_nodes(func: ast.AST):
    """Yield AST nodes of a function body, excluding nested function bodies.

    Nested functions are traversed as their own call-graph nodes; lambdas
    are treated inline (their bodies execute with the enclosing scope's
    discipline and cannot contain statements anyway).
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _FuncInfo:
    """One function in the per-file call-graph index."""

    __slots__ = ("node", "qualname", "class_name", "nested")

    def __init__(
        self,
        node: ast.AST,
        qualname: str,
        class_name: Optional[str],
        nested: Dict[str, "_FuncInfo"],
    ) -> None:
        self.node = node
        self.qualname = qualname
        self.class_name = class_name
        self.nested = nested


class _FileIndex:
    """Functions, methods and Event-name resolution for one module."""

    def __init__(self, file: SourceFile) -> None:
        self.file = file
        self.module_funcs: Dict[str, _FuncInfo] = {}
        self.methods: Dict[Tuple[str, str], _FuncInfo] = {}  # (class, name)
        self._index_module(file.tree)
        origin = file.imports.get("Event", "")
        self.event_is_engine_event = origin.endswith("engine.Event") or any(
            isinstance(node, ast.ClassDef) and node.name == "Event"
            for node in file.tree.body
        )

    def _index_module(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_funcs[node.name] = self._index_func(node, node.name, None)
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = self._index_func(
                            sub, f"{node.name}.{sub.name}", node.name
                        )
                        self.methods[(node.name, sub.name)] = info

    def _index_func(
        self, node: ast.AST, qualname: str, class_name: Optional[str]
    ) -> _FuncInfo:
        nested: Dict[str, _FuncInfo] = {}
        for sub in _body_nodes(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested[sub.name] = self._index_func(
                    sub, f"{qualname}.{sub.name}", class_name
                )
        return _FuncInfo(node, qualname, class_name, nested)

    def all_funcs(self):
        stack = list(self.module_funcs.values()) + list(self.methods.values())
        while stack:
            info = stack.pop()
            yield info
            stack.extend(info.nested.values())


def _callback_target(
    index: _FileIndex, info: _FuncInfo, call: ast.Call
) -> Optional[_FuncInfo]:
    """Resolve the callback argument of an ``express_at`` call site."""
    callback: Optional[ast.expr] = None
    if len(call.args) >= 2:
        callback = call.args[1]
    else:
        for keyword in call.keywords:
            if keyword.arg == "fn":
                callback = keyword.value
    if callback is None:
        return None
    if (
        isinstance(callback, ast.Attribute)
        and isinstance(callback.value, ast.Name)
        and callback.value.id == "self"
        and info.class_name is not None
    ):
        return index.methods.get((info.class_name, callback.attr))
    if isinstance(callback, ast.Name):
        return info.nested.get(callback.id) or index.module_funcs.get(callback.id)
    return None


def _walk_from_root(
    index: _FileIndex, root: _FuncInfo, root_kind: str, findings: List[Finding]
) -> None:
    root_label = f"{root_kind} {root.qualname}"
    visited: Set[int] = set()
    emitted: Set[Tuple[str, str, str]] = set()
    stack: List[_FuncInfo] = [root]
    while stack:
        info = stack.pop()
        if id(info.node) in visited:
            continue
        visited.add(id(info.node))
        for node in _body_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in _SINK_ATTRS:
                    rule = "express-wheel-schedule"
                    message = (
                        f"wheel event scheduled via .{func.attr}() in code "
                        f"reachable from express-lane {root_label}"
                    )
                    key = (rule, info.qualname, message)
                    if key not in emitted:
                        emitted.add(key)
                        findings.append(
                            Finding(
                                path=index.file.path,
                                line=node.lineno,
                                rule=rule,
                                symbol=info.qualname,
                                message=message,
                                rationale=RATIONALES[rule],
                                checker=CHECKER_ID,
                            )
                        )
                # Traversal edge: self.method()
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and info.class_name is not None
                ):
                    target = index.methods.get((info.class_name, func.attr))
                    if target is not None:
                        stack.append(target)
            elif isinstance(func, ast.Name):
                if func.id == "Event" and index.event_is_engine_event:
                    rule = "express-event-alloc"
                    message = (
                        "Event allocated in code reachable from express-lane "
                        f"{root_label}"
                    )
                    key = (rule, info.qualname, message)
                    if key not in emitted:
                        emitted.add(key)
                        findings.append(
                            Finding(
                                path=index.file.path,
                                line=node.lineno,
                                rule=rule,
                                symbol=info.qualname,
                                message=message,
                                rationale=RATIONALES[rule],
                                checker=CHECKER_ID,
                            )
                        )
                target = info.nested.get(func.id) or index.module_funcs.get(func.id)
                if target is not None:
                    stack.append(target)
        # Functions defined inside a traversed function are part of its
        # logic (deferred-work closures): traverse them unconditionally.
        stack.extend(info.nested.values())


def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for file in project:
        if file.tree is None:
            continue
        if file.relpath == "sim/engine.py":
            # The engine implements the lane; its internal wheel/heap
            # bookkeeping is the mechanism under contract, not a consumer.
            continue
        index = _FileIndex(file)
        roots: Dict[str, Tuple[_FuncInfo, str]] = {}
        for info in index.all_funcs():
            for node in _body_nodes(info.node):
                if not isinstance(node, ast.Call) or not isinstance(
                    node.func, ast.Attribute
                ):
                    continue
                if node.func.attr == "express_at":
                    target = _callback_target(index, info, node)
                    if target is not None:
                        roots.setdefault(target.qualname, (target, "callback"))
                elif node.func.attr == "reserve_serial":
                    roots.setdefault(info.qualname, (info, "producer"))
        for qualname in sorted(roots):
            info, kind = roots[qualname]
            _walk_from_root(index, info, kind, findings)
    return findings
