"""Checker 4 — slots/fast-constructor discipline.

Hot-path value classes (``Frame``, ``Skb``, ``RxFrameRecord``) are built two
ways: the normal ``__init__``, and a fast path that calls
``Cls.__new__(Cls)`` and assigns slots directly (bypassing ``__init__``
entirely — measured as the hottest allocation sites in PR 3). That idiom is
fast *and* fragile: a slot added to ``__init__`` but forgotten at one fast
site becomes an ``AttributeError`` at a distance, on whichever code path
first reads the unset slot — typically far from the construction and only
under the configs that exercise it.

Rules, applied to every class in the tree that declares ``__slots__``:

``slots-incomplete-new``
    A ``Cls.__new__(Cls)`` fast-construction site (direct or through a
    hoisted local alias ``ctor = Cls.__new__``) whose enclosing function
    does not assign every declared slot of the constructed object.
    Intentionally-lazy slots (e.g. trace stamps only written under
    tracing) are suppressed at the site with an inline pragma naming the
    reason.
``slots-stray-write``
    An attribute write to a name that is *not* in the class's
    ``__slots__``, through a receiver whose class is statically known
    (``self`` inside the class, a parameter annotated with the class, or a
    local constructed from it). At runtime this raises ``AttributeError``
    only when the write executes; the checker catches it on every path.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from ..findings import Finding
from ..project import Project, ScopeVisitor, SourceFile, const_str_elements

CHECKER_ID = "slots-discipline"

RATIONALES = {
    "slots-incomplete-new": "a fast-construction site that skips a slot "
    "leaves it unset (no __init__ ran); the first read raises "
    "AttributeError far from the construction, only on the configs that "
    "reach it",
    "slots-stray-write": "writing an attribute outside __slots__ raises "
    "AttributeError at runtime; a typo here only explodes on the paths "
    "that execute it",
}


def _slotted_classes(project: Project) -> Dict[str, Set[str]]:
    """``{class name: slot names}`` across the whole tree.

    Class names are assumed unique across the package (true for this repo;
    a collision would only merge slot sets and weaken the check, never
    produce a false finding for slots-incomplete-new).
    """
    classes: Dict[str, Set[str]] = {}
    for file in project:
        if file.tree is None:
            continue
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for statement in node.body:
                if (
                    isinstance(statement, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "__slots__"
                        for t in statement.targets
                    )
                ):
                    elements = const_str_elements(statement.value)
                    if elements is not None:
                        slots = {name for name, _ in elements}
                        classes[node.name] = classes.get(node.name, set()) | slots
    return classes


def _new_call_class(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Class name when ``node`` is ``Cls.__new__(Cls)`` or ``alias(Cls)``."""
    if not isinstance(node, ast.Call) or len(node.args) != 1:
        return None
    arg = node.args[0]
    if not isinstance(arg, ast.Name):
        return None
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "__new__"
        and isinstance(func.value, ast.Name)
        and func.value.id == arg.id
    ):
        return arg.id
    if isinstance(func, ast.Name) and aliases.get(func.id) == arg.id:
        return arg.id
    return None


class _FunctionScan:
    """Receiver typing and attribute writes within one function body."""

    def __init__(
        self,
        func: ast.AST,
        slotted: Dict[str, Set[str]],
        class_name: Optional[str],
    ) -> None:
        #: local/parameter name -> slotted class name
        self.receiver_class: Dict[str, str] = {}
        #: receiver name -> attribute names written in this function
        self.writes: Dict[str, List[ast.Attribute]] = {}
        #: (lineno, class, receiver) of each fast-construction site
        self.new_sites: List[tuple] = []
        aliases: Dict[str, str] = {}

        args = func.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            annotation = arg.annotation
            name: Optional[str] = None
            if isinstance(annotation, ast.Name):
                name = annotation.id
            elif isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                name = annotation.value.strip()
            if name in slotted:
                self.receiver_class[arg.arg] = name
        if class_name is not None and class_name in slotted and args.args:
            first = args.args[0].arg
            if first == "self":
                self.receiver_class[first] = class_name

        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                # Hoisted constructor alias: ctor = Cls.__new__
                if (
                    isinstance(node.value, ast.Attribute)
                    and node.value.attr == "__new__"
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id in slotted
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            aliases[target.id] = node.value.value.id
                    continue
                cls = _new_call_class(node.value, aliases)
                if cls is None and (
                    isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id in slotted
                ):
                    # Plain construction: receiver type known, but __init__
                    # ran, so completeness is not checked.
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.receiver_class[target.id] = node.value.func.id
                elif cls is not None and cls in slotted:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.receiver_class[target.id] = cls
                            self.new_sites.append((node.lineno, cls, target.id))
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                    ):
                        self.writes.setdefault(target.value.id, []).append(target)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Attribute
            ):
                if isinstance(node.target.value, ast.Name):
                    self.writes.setdefault(node.target.value.id, []).append(
                        node.target
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Attribute
            ):
                # Augmented writes (x.attr += 1) read first — they cannot
                # initialize a slot, but a stray name still fails.
                if isinstance(node.target.value, ast.Name):
                    self.writes.setdefault(node.target.value.id, []).append(
                        node.target
                    )


class _SlotsVisitor(ScopeVisitor):
    def __init__(self, file: SourceFile, slotted: Dict[str, Set[str]]) -> None:
        super().__init__()
        self.file = file
        self.slotted = slotted
        self.findings: List[Finding] = []
        self._class_stack: List[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        try:
            self.generic_visit_scoped(node, node.name)
        finally:
            self._class_stack.pop()

    def _visit_func(self, node: ast.AST, name: str) -> None:
        class_name = self._class_stack[-1] if self._class_stack else None
        in_ctor = name in ("__init__", "__new__") and class_name is not None
        scan = _FunctionScan(node, self.slotted, class_name)

        for lineno, cls, receiver in scan.new_sites:
            written = {
                write.attr for write in scan.writes.get(receiver, [])
            }
            missing = sorted(self.slotted[cls] - written)
            if missing:
                self.findings.append(
                    Finding(
                        path=self.file.path,
                        line=lineno,
                        rule="slots-incomplete-new",
                        symbol=self._qual(name),
                        message=(
                            f"{cls}.__new__ fast construction leaves slots "
                            f"unassigned: {', '.join(missing)}"
                        ),
                        rationale=RATIONALES["slots-incomplete-new"],
                        checker=CHECKER_ID,
                    )
                )

        for receiver, cls in scan.receiver_class.items():
            if receiver == "self" and in_ctor:
                continue  # __init__/__new__ may define any declared slot
            slots = self.slotted[cls]
            for write in scan.writes.get(receiver, []):
                if write.attr not in slots:
                    self.findings.append(
                        Finding(
                            path=self.file.path,
                            line=write.lineno,
                            rule="slots-stray-write",
                            symbol=self._qual(name),
                            message=(
                                f"write to {receiver}.{write.attr}: "
                                f"{write.attr!r} is not in {cls}.__slots__"
                            ),
                            rationale=RATIONALES["slots-stray-write"],
                            checker=CHECKER_ID,
                        )
                    )
        self.generic_visit_scoped(node, name)

    def _qual(self, name: str) -> str:
        return f"{self.qualname}.{name}" if self._scope else name

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node, node.name)


def check(project: Project) -> List[Finding]:
    slotted = _slotted_classes(project)
    if not slotted:
        return []
    findings: List[Finding] = []
    for file in project:
        if file.tree is None:
            continue
        visitor = _SlotsVisitor(file, slotted)
        visitor.visit(file.tree)
        findings.extend(visitor.findings)
    return findings
