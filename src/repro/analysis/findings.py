"""Finding model shared by every ``repro lint`` checker.

A :class:`Finding` is one violation of a statically-checkable invariant:
where it is (repo-relative path, line, enclosing symbol), which rule fired,
and why the rule exists. Findings are value objects — checkers produce them,
the lint driver suppresses/baselines/renders them.

Baseline matching deliberately excludes the line number: an accepted finding
must survive unrelated edits above it, so its identity is the stable tuple
``(rule, path, symbol, message)``. Messages therefore never embed line
numbers or other position-dependent text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One statically-detected invariant violation."""

    path: str      # repo-relative posix path, e.g. "src/repro/sim/engine.py"
    line: int      # 1-based; 0 for whole-file findings
    rule: str      # stable rule id, e.g. "det-wallclock"
    symbol: str    # enclosing qualname ("Engine.run") or "<module>"
    message: str   # stable one-line statement of the violation (no line numbers)
    #: Why the rule exists — shown once per rule in reports, not per finding.
    rationale: str = field(default="", compare=False)
    checker: str = field(default="", compare=False)  # owning checker id

    def identity(self) -> Tuple[str, str, str, str]:
        """Baseline-matching key: stable across unrelated line churn."""
        return (self.rule, self.path, self.symbol, self.message)

    def render(self) -> str:
        symbol = f" ({self.symbol})" if self.symbol != "<module>" else ""
        return f"{self.path}:{self.line}: [{self.rule}]{symbol} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "checker": self.checker,
        }
