"""Lint orchestrator: run every checker, apply suppressions, report.

Pipeline: load the ``src/repro`` tree into a :class:`Project`, run each
registered checker, drop findings covered by an inline
``# repro-lint: allow[rule] reason`` pragma, match the rest against the
committed baseline, and render. Exit status is the gate contract:

* ``0`` — no new findings and no stale baseline entries,
* ``1`` — new findings and/or stale entries (the ratchet fired),
* ``2`` — a linted file failed to parse (the tree itself is broken).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from .baseline import (
    DEFAULT_BASELINE_PATH,
    BaselineEntry,
    BaselineResult,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .checkers import CHECKERS
from .findings import Finding
from .project import Project


@dataclass
class LintReport:
    """Everything one lint run produced, pre-rendering."""

    findings: List[Finding] = field(default_factory=list)      # post-pragma
    pragma_suppressed: List[Finding] = field(default_factory=list)
    baseline: BaselineResult = field(
        default_factory=lambda: BaselineResult(new=[], suppressed=[], stale=[])
    )
    syntax_errors: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        if self.syntax_errors:
            return 2
        if self.baseline.new or self.baseline.stale:
            return 1
        return 0


def run_lint(
    project: Optional[Project] = None,
    baseline_entries: Optional[List[BaselineEntry]] = None,
    baseline_path: Optional[Path] = None,
) -> LintReport:
    """Run all checkers over ``project`` (default: the installed tree)."""
    if project is None:
        project = Project.from_dir()
    if baseline_entries is None:
        baseline_entries = load_baseline(baseline_path)

    report = LintReport()
    for file in project:
        if file.syntax_error is not None:
            report.syntax_errors.append(f"{file.path}: {file.syntax_error}")

    collected: List[Finding] = []
    for check in CHECKERS.values():
        collected.extend(check(project))

    for finding in sorted(collected):
        source = project.file_by_path(finding.path)
        if source is not None and finding.rule in source.allowed_rules(
            finding.line
        ):
            report.pragma_suppressed.append(finding)
        else:
            report.findings.append(finding)

    report.baseline = apply_baseline(report.findings, baseline_entries)
    return report


def render_text(report: LintReport, verbose: bool = False) -> str:
    lines: List[str] = []
    for error in report.syntax_errors:
        lines.append(f"syntax error: {error}")
    for finding in report.baseline.new:
        lines.append(finding.render())
        if verbose:
            lines.append(f"    rationale: {finding.rationale}")
    for entry in report.baseline.stale:
        lines.append(
            f"{entry.path}: [{entry.rule}] ({entry.symbol}) stale baseline "
            f"entry — no matching finding; remove it or run --write-baseline"
        )
    summary = (
        f"repro lint: {len(report.baseline.new)} new, "
        f"{len(report.baseline.suppressed)} baselined, "
        f"{len(report.pragma_suppressed)} pragma-suppressed, "
        f"{len(report.baseline.stale)} stale baseline entr"
        f"{'y' if len(report.baseline.stale) == 1 else 'ies'}"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(
        {
            "exit_code": report.exit_code,
            "new": [f.to_dict() for f in report.baseline.new],
            "baselined": [f.to_dict() for f in report.baseline.suppressed],
            "pragma_suppressed": [
                f.to_dict() for f in report.pragma_suppressed
            ],
            "stale_baseline": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "symbol": e.symbol,
                    "message": e.message,
                    "reason": e.reason,
                }
                for e in report.baseline.stale
            ],
            "syntax_errors": report.syntax_errors,
        },
        indent=2,
    )


def update_baseline(
    report: LintReport, path: Optional[Path] = None
) -> Path:
    """Rewrite the baseline from this run's findings, keeping old reasons."""
    previous = load_baseline(path)
    return write_baseline(report.findings, path=path, previous=previous)


__all__ = [
    "DEFAULT_BASELINE_PATH",
    "LintReport",
    "render_json",
    "render_text",
    "run_lint",
    "update_baseline",
]
