"""Source loading and shared AST plumbing for ``repro lint``.

A :class:`Project` is the parsed view of the ``src/repro`` package (or, in
tests, of an in-memory dict of fixture sources): one :class:`SourceFile` per
module, each carrying its AST, raw lines, per-line suppression pragmas, and
an import map resolving local names back to dotted module paths.

Inline suppression
------------------
A finding is suppressed at its site with::

    something_noisy()  # repro-lint: allow[det-wallclock] why this is fine

or, for lines too long to share, as a standalone comment immediately above
the offending line. Several rules may share one pragma:
``allow[det-wallclock,det-fs-order]``. The justification text is mandatory
by convention (the pragma regex tolerates its absence, the review process
should not).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: Inline suppression pragma. Group 1: comma-separated rule ids.
_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*allow\[([A-Za-z0-9_,\s\-]+)\]")


class SourceFile:
    """One parsed module of the linted tree."""

    def __init__(self, path: str, relpath: str, source: str) -> None:
        #: Repo-relative posix path used in findings ("src/repro/sim/engine.py").
        self.path = path
        #: Package-relative posix path used for allowlists ("sim/engine.py").
        self.relpath = relpath
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(source, filename=path)
        except SyntaxError as exc:  # surfaced as a lint finding by the driver
            self.tree = None
            self.syntax_error = exc
        self._allow: Dict[int, Set[str]] = self._scan_pragmas()
        self._imports: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------ suppression

    def _scan_pragmas(self) -> Dict[int, Set[str]]:
        """Map line number -> rule ids allowed there.

        A pragma on a code line covers that line; a pragma on a
        standalone comment line covers the next line as well (chained, so a
        block of comment lines covers the first code line after it).
        """
        allow: Dict[int, Set[str]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(text)
            if not match:
                continue
            rules = {rule.strip() for rule in match.group(1).split(",") if rule.strip()}
            allow.setdefault(lineno, set()).update(rules)
            if text.lstrip().startswith("#"):  # standalone: covers the next line
                allow.setdefault(lineno + 1, set()).update(rules)
        # Chain standalone-comment runs downward onto the first code line.
        for lineno in sorted(allow):
            text = self.lines[lineno - 1] if lineno <= len(self.lines) else ""
            if text.lstrip().startswith("#") and not _PRAGMA_RE.search(text):
                allow.setdefault(lineno + 1, set()).update(allow[lineno])
        return allow

    def allowed_rules(self, lineno: int) -> Set[str]:
        return self._allow.get(lineno, frozenset())

    # ------------------------------------------------------------ import map

    @property
    def imports(self) -> Dict[str, str]:
        """Local name -> dotted origin, e.g. ``{"np": "numpy",
        "perf_counter": "time.perf_counter"}``. Relative imports keep their
        leading dots (``from ..sim.engine import Event`` ->
        ``{"Event": "..sim.engine.Event"}``)."""
        if self._imports is None:
            table: Dict[str, str] = {}
            if self.tree is not None:
                for node in ast.walk(self.tree):
                    if isinstance(node, ast.Import):
                        for alias in node.names:
                            table[alias.asname or alias.name.split(".")[0]] = (
                                alias.name
                            )
                    elif isinstance(node, ast.ImportFrom):
                        prefix = "." * node.level + (node.module or "")
                        for alias in node.names:
                            table[alias.asname or alias.name] = (
                                f"{prefix}.{alias.name}" if prefix else alias.name
                            )
            self._imports = table
        return self._imports

    def resolve_call_target(self, func: ast.expr) -> Optional[str]:
        """Dotted origin of a call's func expression, or None.

        ``time.perf_counter()`` -> "time.perf_counter" (via the import map),
        ``perf_counter()`` after ``from time import perf_counter`` -> same.
        Attribute chains rooted at non-imported names resolve to None.
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.imports.get(node.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))


class Project:
    """The set of modules ``repro lint`` analyses, parsed once."""

    #: Path prefix stitched in front of package-relative paths in findings.
    PKG_PREFIX = "src/repro"

    def __init__(self, files: List[SourceFile]) -> None:
        self.files = sorted(files, key=lambda f: f.relpath)
        self._by_relpath = {f.relpath: f for f in self.files}

    @classmethod
    def from_dir(cls, package_dir: Optional[Path] = None) -> "Project":
        """Load every ``*.py`` under the repro package directory."""
        if package_dir is None:
            package_dir = Path(__file__).resolve().parents[1]
        package_dir = Path(package_dir)
        files = []
        for path in sorted(package_dir.rglob("*.py")):
            relpath = path.relative_to(package_dir).as_posix()
            files.append(
                SourceFile(
                    f"{cls.PKG_PREFIX}/{relpath}", relpath, path.read_text()
                )
            )
        return cls(files)

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Project":
        """Build a project from ``{package-relative path: source}`` (tests)."""
        return cls(
            [
                SourceFile(f"{cls.PKG_PREFIX}/{relpath}", relpath, source)
                for relpath, source in sources.items()
            ]
        )

    def file(self, relpath: str) -> Optional[SourceFile]:
        return self._by_relpath.get(relpath)

    def file_by_path(self, path: str) -> Optional[SourceFile]:
        """Lookup by the repo-relative path stamped into findings."""
        prefix = f"{self.PKG_PREFIX}/"
        if path.startswith(prefix):
            return self._by_relpath.get(path[len(prefix):])
        return None

    def __iter__(self) -> Iterable[SourceFile]:
        return iter(self.files)


class ScopeVisitor(ast.NodeVisitor):
    """NodeVisitor that tracks the enclosing class/function qualname.

    Checkers subclass this and read :attr:`qualname` while visiting to stamp
    findings with their enclosing symbol. Subclasses overriding the class or
    function visitors must call ``self.generic_visit_scoped(node)`` (or the
    base implementation) to keep the stack balanced.
    """

    def __init__(self) -> None:
        self._scope: List[str] = []

    @property
    def qualname(self) -> str:
        return ".".join(self._scope) if self._scope else "<module>"

    @property
    def enclosing_class(self) -> Optional[str]:
        """Innermost enclosing class name, if the scope stack holds one."""
        for name in reversed(self._scope):
            if name[:1].isupper():  # repo convention: classes are CapWords
                return name
        return None

    def generic_visit_scoped(self, node: ast.AST, name: str) -> None:
        self._scope.append(name)
        try:
            self.generic_visit(node)
        finally:
            self._scope.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.generic_visit_scoped(node, node.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.generic_visit_scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.generic_visit_scoped(node, node.name)


def const_str_elements(node: ast.expr) -> Optional[List[Tuple[str, int]]]:
    """``(value, lineno)`` pairs of a literal collection of strings.

    Understands set/tuple/list literals and ``frozenset({...})`` /
    ``frozenset((...))`` / ``set([...])`` calls. Returns None when the node
    is not such a literal (or holds non-string elements).
    """
    if isinstance(node, ast.Call):
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("frozenset", "set")
            and len(node.args) == 1
            and not node.keywords
        ):
            return const_str_elements(node.args[0])
        return None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant) and isinstance(element.value, str)
            ):
                return None
            out.append((element.value, element.lineno))
        return out
    return None
