"""Perf-trajectory harness behind ``repro bench``.

Measures the two engine hot paths the timer-wheel targets (plain
schedule/fire, and cancel-heavy timer churn), a pure-Python calibration loop
used to normalize across machines, and per-figure wall times. ``repro bench``
assembles these into a ``BENCH_<stamp>.json`` snapshot; committing one per
perf-relevant PR builds the repo's performance trajectory, and
``tools/check_bench_regression.py`` gates CI on the normalized engine
numbers.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Dict, List, Optional

from .sim.engine import Engine

#: Events per engine micro-benchmark round (matches benchmarks/test_bench_engine.py).
NUM_EVENTS = 50_000
#: Iterations of the pure-Python calibration spin.
CALIBRATION_OPS = 200_000


def _schedule_and_run() -> Engine:
    """Plain schedule/fire loop: every event fires."""
    engine = Engine()
    fired = 0

    def tick() -> None:
        nonlocal fired
        fired += 1

    for i in range(NUM_EVENTS):
        engine.schedule(i % 977, tick)
    engine.run()
    assert fired == NUM_EVENTS
    return engine


def _cancel_churn() -> Engine:
    """Re-armed timers: cancelled events vastly outnumber live ones (the TCP
    RTO / delayed-ACK / pacing pattern)."""
    engine = Engine()
    fired = 0
    timer = None

    def tick() -> None:
        nonlocal fired, timer
        fired += 1
        if fired < NUM_EVENTS:
            old = timer
            timer = engine.schedule(100, tick)
            engine.schedule(50, noop)
            if old is not None:
                old.cancel()
            engine.schedule(1_000_000, noop).cancel()

    def noop() -> None:
        pass

    timer = engine.schedule(0, tick)
    engine.run()
    assert fired == NUM_EVENTS
    return engine


def _calibration() -> int:
    """Fixed pure-Python workload whose throughput tracks machine speed.

    Normalizing engine events/sec by this makes the committed baseline
    meaningful on other hardware (CI runners, laptops).
    """
    acc = 0
    table = {}
    for i in range(CALIBRATION_OPS):
        key = i & 1023
        table[key] = acc
        acc += table.get(key, 0) & 0xFFFF
    return acc


def _best_seconds(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def engine_metrics(repeat: int = 3) -> Dict[str, float]:
    """Engine micro-benchmark throughputs, raw and calibration-normalized.

    Event counts come from the engine's own ``events_fired`` counter (the
    workloads are deterministic, so one counting run serves all timed runs).
    """
    calibration_s = _best_seconds(_calibration, repeat)
    calibration_ops = CALIBRATION_OPS / calibration_s

    schedule_events = _schedule_and_run().events_fired
    churn_engine = _cancel_churn()
    churn_events = churn_engine.events_fired

    schedule_s = _best_seconds(_schedule_and_run, repeat)
    churn_s = _best_seconds(_cancel_churn, repeat)

    schedule_eps = schedule_events / schedule_s
    churn_eps = churn_events / churn_s
    return {
        "calibration_ops_per_sec": calibration_ops,
        "schedule_run_seconds": schedule_s,
        "schedule_run_events_fired": float(schedule_events),
        "schedule_run_events_per_sec": schedule_eps,
        "schedule_run_normalized": schedule_eps / calibration_ops,
        "cancel_churn_seconds": churn_s,
        "cancel_churn_events_fired": float(churn_events),
        "cancel_churn_events_recycled": float(churn_engine.events_recycled),
        "cancel_churn_events_per_sec": churn_eps,
        "cancel_churn_normalized": churn_eps / calibration_ops,
    }


def snapshot(
    figures: Dict[str, Dict[str, float]],
    engine: Dict[str, float],
    stamp: Optional[str] = None,
) -> Dict:
    """Assemble one BENCH snapshot document."""
    return {
        "stamp": stamp or time.strftime("%Y%m%dT%H%M%SZ", time.gmtime()),
        "host": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
        "engine": engine,
        "figures": figures,
    }


#: Cumulative one-snapshot-per-line log kept alongside the BENCH_*.json
#: snapshots. Committing it gives the repo a machine-readable perf
#: trajectory without having to glob and parse every historical snapshot.
HISTORY_FILENAME = "BENCH_HISTORY.jsonl"


def write_snapshot(
    doc: Dict, path: Optional[str] = None, history_path: Optional[str] = None
) -> str:
    """Write ``doc`` to ``path`` (default ``BENCH_<stamp>.json`` in cwd) and
    append it as a single JSON line to the cumulative history log."""
    if path is None:
        path = f"BENCH_{doc['stamp']}.json"
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if history_path is None:
        history_path = HISTORY_FILENAME
    with open(history_path, "a") as fh:
        json.dump(doc, fh, sort_keys=True)
        fh.write("\n")
    return path


def load_baseline(path: str) -> Dict:
    with open(path) as fh:
        return json.load(fh)


def compare_to_baseline(
    current: Dict[str, float], baseline: Dict[str, float], tolerance: float
) -> List[str]:
    """Return regression messages for normalized metrics below baseline.

    A metric regresses when its calibration-normalized throughput drops more
    than ``tolerance`` (fraction) below the committed baseline value.
    """
    failures = []
    for key in ("schedule_run_normalized", "cancel_churn_normalized"):
        base = baseline.get(key)
        if not base:
            continue
        now = current[key]
        if now < base * (1.0 - tolerance):
            failures.append(
                f"{key}: {now:.3f} is {1 - now / base:.1%} below baseline "
                f"{base:.3f} (tolerance {tolerance:.0%})"
            )
    return failures


def compare_figures_to_baseline(
    figures: Dict[str, Dict[str, float]],
    baseline_figures: Dict[str, Dict[str, float]],
    tolerance: float,
) -> List[str]:
    """Return regression messages for the per-figure gate.

    ``figures`` maps panel name to measured ``normalized_cost`` (wall time ×
    calibration throughput — machine-independent work units) for the
    train+express fast path, ``normalized_cost_no_express`` for trains
    without the express lane, ``normalized_cost_legacy`` for the per-event
    pipeline, and ``events_reduction`` (fractional drop in engine events
    fired, fast path vs legacy). Cost ceilings get ``tolerance`` headroom;
    the event-count reduction is a structural property of the simulation
    and is enforced exactly.
    """
    failures = []
    for name, floor in baseline_figures.items():
        row = figures.get(name)
        if row is None:
            failures.append(f"{name}: gated figure was not measured")
            continue
        min_reduction = floor.get("min_events_reduction")
        if min_reduction is not None and row["events_reduction"] < min_reduction:
            failures.append(
                f"{name}: events_reduction {row['events_reduction']:.1%} is "
                f"below the required {min_reduction:.0%}"
            )
        for key in (
            "normalized_cost",
            "normalized_cost_no_express",
            "normalized_cost_legacy",
        ):
            ceiling = floor.get(f"max_{key}")
            if not ceiling:
                continue
            now = row[key]
            if now > ceiling * (1.0 + tolerance):
                failures.append(
                    f"{name}: {key} {now:,.0f} is {now / ceiling - 1:.1%} above "
                    f"baseline {ceiling:,.0f} (tolerance {tolerance:.0%})"
                )
    return failures
