"""Command-line interface: run experiments and regenerate paper figures.

Usage examples::

    python -m repro run --pattern incast --flows 8
    python -m repro run --pattern single --no-arfs --loss 1.5e-3
    python -m repro figure fig3a
    python -m repro figure fig3e --jobs 8        # fan the sweep out across workers
    python -m repro figure fig8c --export /tmp/fig8c.csv
    python -m repro figure fig3a --no-cache      # force re-simulation
    python -m repro figure fig3a --audit         # conservation-audit every run
    python -m repro trace fig3a                  # per-stage latency breakdown
    python -m repro audit fig3a --jobs 4         # audit only, no table output
    python -m repro list

Results are cached on disk keyed by a content hash of the full experiment
config (see ``repro.core.cache``), so re-running an unchanged figure is a
near-instant cache hit; ``--no-cache`` disables it and ``--cache-dir`` moves
it (default: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-hostnet``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import (
    CongestionControl,
    ExperimentConfig,
    HostConfig,
    LinkConfig,
    NicConfig,
    NumaPolicy,
    OptimizationConfig,
    TcpConfig,
    TrafficPattern,
    WorkloadConfig,
)
from .core.cache import ResultCache, default_cache_dir
from .core.export import export_table, result_to_json
from .core.runner import RunnerStats, run_many
from .figures import base as figures_base
from .units import kb, msec


def _jobs_arg(text: str) -> int:
    jobs = int(text)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 0 (0 = one per CPU), got {jobs}"
        )
    return jobs


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    """Runner knobs shared by the ``run`` and ``figure`` subcommands."""
    parser.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N",
                        help="worker processes for independent experiments "
                        "(0 = one per CPU; default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the persistent result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache location (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro-hostnet)")
    parser.add_argument("--audit", action="store_true",
                        help="run the conservation auditor on every experiment "
                        "(byte/cycle/event accounting; implies --no-cache; "
                        "exits non-zero on violations)")
    parser.add_argument("--no-train", action="store_true",
                        help="disable the frame-train wire fast path and "
                        "replay the wire with per-batch engine events "
                        "(byte-identical results, more events)")
    parser.add_argument("--no-express", action="store_true",
                        help="disable the steady-state express lane and "
                        "schedule CPU completions / TCP timers as plain "
                        "wheel events (byte-identical results, more events)")


def _runner_settings(args: argparse.Namespace):
    """Map parsed runner flags to ``(jobs, cache, audit)`` for run_many."""
    jobs = None if args.jobs == 0 else args.jobs
    audit = getattr(args, "audit", False)
    # Audited runs never touch the cache: a cached entry carries the audit
    # of the run that produced it, not of the current code.
    cache = None if (args.no_cache or audit) else ResultCache(
        args.cache_dir if args.cache_dir else default_cache_dir()
    )
    return jobs, cache, audit


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulation-based reproduction of 'Understanding Host "
        "Network Stack Overheads' (SIGCOMM 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment and print its result")
    run.add_argument("--pattern", default="single",
                     choices=[p.value for p in TrafficPattern])
    run.add_argument("--flows", type=int, default=1)
    run.add_argument("--duration-ms", type=float, default=8.0)
    run.add_argument("--warmup-ms", type=float, default=10.0)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--no-tso-gro", action="store_true")
    run.add_argument("--no-jumbo", action="store_true")
    run.add_argument("--no-arfs", action="store_true")
    run.add_argument("--lro", action="store_true", help="NIC-side merge instead of GRO")
    run.add_argument("--no-dca", action="store_true", help="disable DDIO")
    run.add_argument("--iommu", action="store_true", help="enable the IOMMU")
    run.add_argument("--numa-remote", action="store_true",
                     help="place receiver apps on NIC-remote NUMA nodes")
    run.add_argument("--cc", default="cubic",
                     choices=[c.value for c in CongestionControl])
    run.add_argument("--loss", type=float, default=0.0,
                     help="random drop rate at an in-path switch")
    run.add_argument("--rx-buffer-kb", type=int, default=0,
                     help="pin the TCP Rx buffer (disables autotuning)")
    run.add_argument("--ring", type=int, default=0, help="NIC Rx descriptors")
    run.add_argument("--rpc-kb", type=int, default=4, help="RPC message size")
    run.add_argument("--rpc-flows", type=int, default=0,
                     help="short flows for the mixed pattern")
    run.add_argument("--json", action="store_true", help="emit JSON")
    _add_runner_args(run)

    figure = sub.add_parser("figure", help="regenerate one paper figure panel")
    figure.add_argument("name", help="e.g. fig3a, fig8c, table1")
    figure.add_argument("--export", help="write the table to a .csv/.json file")
    _add_runner_args(figure)

    trace = sub.add_parser(
        "trace",
        help="run one figure's experiments with per-stage latency tracing "
        "and render the stage-by-stage breakdown (avg/p50/p99 per stage, "
        "audit-checked against the end-to-end copy latency)",
    )
    trace.add_argument("name", help="e.g. fig3a, fig8c, table1")
    trace.add_argument("--export", help="write the trace table to .csv/.json")
    _add_runner_args(trace)

    audit = sub.add_parser(
        "audit",
        help="run one figure's experiments under the conservation auditor "
        "and report every byte/cycle/event accounting violation",
    )
    audit.add_argument("name", help="e.g. fig3a, fig8c, table1")
    audit.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N",
                       help="worker processes (0 = one per CPU; default 1)")
    audit.add_argument("--no-train", action="store_true",
                       help="audit the legacy per-event wire path instead of "
                       "the frame-train fast path")
    audit.add_argument("--no-express", action="store_true",
                       help="audit with the steady-state express lane off")

    bench = sub.add_parser(
        "bench",
        help="record a BENCH_<stamp>.json perf snapshot (also appended to "
        "BENCH_HISTORY.jsonl): engine micro-benchmarks plus per-figure wall "
        "times and event counts, each figure timed on the fast path "
        "(frame trains + express lane) and on the legacy per-event path",
    )
    bench.add_argument("--figures", default="fig3a,fig9a", metavar="NAMES",
                       help="comma-separated panel names to time "
                       "(default fig3a,fig9a; 'none' skips figure timing)")
    bench.add_argument("--repeat", type=int, default=3, metavar="N",
                       help="rounds per measurement; best-of-N is kept "
                       "(default 3)")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="output path (default BENCH_<stamp>.json in cwd)")

    lint = sub.add_parser(
        "lint",
        help="run the repro static-analysis checkers (determinism, "
        "cache-key completeness, express-lane purity, slots discipline) "
        "over src/repro; exits non-zero on new findings or stale baseline "
        "entries",
    )
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="baseline file of accepted findings (default: "
                      "src/repro/analysis/baseline.json)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="rewrite the baseline from the current findings "
                      "(preserving reasons of surviving entries) instead of "
                      "failing on them")
    lint.add_argument("--json", action="store_true",
                      help="emit the full report as JSON")
    lint.add_argument("--verbose", action="store_true",
                      help="print each rule's rationale under its findings")

    sub.add_parser("list", help="list available figure panels")
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    opts = OptimizationConfig(
        tso_gro=not args.no_tso_gro,
        jumbo=not args.no_jumbo,
        arfs=not args.no_arfs,
        lro=args.lro,
    )
    tcp = TcpConfig(congestion_control=CongestionControl(args.cc))
    if args.rx_buffer_kb:
        tcp.rx_buffer_bytes = kb(args.rx_buffer_kb)
        tcp.autotune_rx_buffer = False
    nic = NicConfig()
    if args.ring:
        nic.rx_descriptors = args.ring
    link = LinkConfig(loss_rate=args.loss, has_switch=args.loss > 0)
    host = HostConfig(dca_enabled=not args.no_dca, iommu_enabled=args.iommu)
    return ExperimentConfig(
        pattern=TrafficPattern(args.pattern),
        num_flows=args.flows,
        duration_ns=msec(args.duration_ms),
        warmup_ns=msec(args.warmup_ms),
        seed=args.seed,
        opts=opts,
        tcp=tcp,
        nic=nic,
        link=link,
        host=host,
        numa_policy=(
            NumaPolicy.NIC_REMOTE if args.numa_remote else NumaPolicy.NIC_LOCAL_FIRST
        ),
        workload=WorkloadConfig(
            rpc_size_bytes=kb(args.rpc_kb), num_rpc_flows=args.rpc_flows
        ),
        frame_trains=not args.no_train,
        express=not args.no_express,
    )


def _panel_registry() -> dict:
    from .figures import ALL_FIGURES, tables

    panels = {"table1": tables.table1, "table2": tables.table2}
    for module in ALL_FIGURES.values():
        for name in dir(module):
            if name.startswith("fig") and callable(getattr(module, name)):
                panels[name] = getattr(module, name)
    return panels


def cmd_run(args: argparse.Namespace) -> int:
    jobs, cache, audit = _runner_settings(args)
    stats = RunnerStats()
    result = run_many([_config_from_args(args)], jobs=jobs, cache=cache,
                      stats=stats, audit=audit)[0]
    if stats.cache_hits:
        print("(served from result cache)", file=sys.stderr)
    if args.json:
        print(result_to_json(result))
        return _audit_exit_code(result.audit_report)
    print(result.summary())
    print()
    print("receiver CPU breakdown:")
    for label, fraction in result.receiver_breakdown.as_rows():
        print(f"  {label:22s} {fraction:6.1%}")
    print("sender CPU breakdown:")
    for label, fraction in result.sender_breakdown.as_rows():
        print(f"  {label:22s} {fraction:6.1%}")
    if result.audit_report is not None:
        print()
        print(result.audit_report.render())
    return _audit_exit_code(result.audit_report)


def _audit_exit_code(report) -> int:
    return 1 if report is not None and not report.ok else 0


def _run_panel(name: str, jobs, cache, audit: bool, frame_trains: bool = True,
               trace: bool = False, express: bool = True):
    """Run one figure panel under the given runner settings.

    Returns ``(table, merged_audit_report)``; the report is ``None`` when
    auditing is off. With ``trace`` a merged
    :class:`~repro.trace.TraceReport` is appended: ``(table, audit_report,
    trace_report)``. Raises ``KeyError`` for an unknown panel name.
    """
    from .core.audit import merge_reports
    from .trace import TraceReport

    generator = _panel_registry()[name]
    figures_base.configure(
        jobs=jobs, cache=cache, audit=audit, frame_trains=frame_trains,
        trace=trace, express=express,
    )
    figures_base.STATS.reset()
    try:
        table = generator()
        report = merge_reports(figures_base.AUDIT_REPORTS) if audit else None
        if trace:
            # Merge before the finally clause's configure() clears the list.
            trace_report = TraceReport.merge(figures_base.TRACE_REPORTS)
    finally:
        figures_base.configure()  # restore the sequential, uncached default
    if trace:
        return table, report, trace_report
    return table, report


def cmd_figure(args: argparse.Namespace) -> int:
    jobs, cache, audit = _runner_settings(args)
    try:
        table, report = _run_panel(
            args.name, jobs, cache, audit, frame_trains=not args.no_train,
            express=not args.no_express,
        )
    except KeyError:
        print(f"unknown panel {args.name!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    stats = figures_base.STATS
    if stats.experiments_run or stats.cache_hits:
        print(
            f"runner: {stats.experiments_run} experiments simulated, "
            f"{stats.cache_hits} served from cache",
            file=sys.stderr,
        )
    print(table.render())
    if report is not None:
        print(report.render(), file=sys.stderr)
    if args.export:
        export_table(table, args.export)
        print(f"\nwritten to {args.export}")
    return _audit_exit_code(report)


def cmd_trace(args: argparse.Namespace) -> int:
    jobs, cache, audit = _runner_settings(args)
    try:
        table, report, trace_report = _run_panel(
            args.name, jobs, cache, audit,
            frame_trains=not args.no_train, trace=True,
            express=not args.no_express,
        )
    except KeyError:
        print(f"unknown panel {args.name!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    stats = figures_base.STATS
    if stats.experiments_run or stats.cache_hits:
        print(
            f"runner: {stats.experiments_run} experiments simulated, "
            f"{stats.cache_hits} served from cache",
            file=sys.stderr,
        )
    trace_table = trace_report.to_table(f"{args.name}: per-stage latency")
    print(trace_table.render())
    checks, violations = trace_report.check_identity()
    if violations:
        print(f"trace identity FAILED ({checks} checks):", file=sys.stderr)
        for message in violations:
            print(f"  - {message}", file=sys.stderr)
    else:
        print(
            f"trace identity ok: stage deltas sum to end-to-end copy latency "
            f"({checks} checks)",
            file=sys.stderr,
        )
    if report is not None:
        print(report.render(), file=sys.stderr)
    if args.export:
        export_table(trace_table, args.export)
        print(f"\nwritten to {args.export}")
    if violations:
        return 1
    return _audit_exit_code(report)


def cmd_audit(args: argparse.Namespace) -> int:
    jobs = None if args.jobs == 0 else args.jobs
    try:
        _, report = _run_panel(
            args.name, jobs, None, True, frame_trains=not args.no_train,
            express=not args.no_express,
        )
    except KeyError:
        print(f"unknown panel {args.name!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    stats = figures_base.STATS
    print(f"{args.name}: {stats.experiments_run} experiments audited",
          file=sys.stderr)
    print(report.render())
    return _audit_exit_code(report)


def cmd_bench(args: argparse.Namespace) -> int:
    import time

    from . import bench

    names: List[str] = []
    if args.figures and args.figures != "none":
        registry = _panel_registry()
        names = [name.strip() for name in args.figures.split(",") if name.strip()]
        unknown = [name for name in names if name not in registry]
        if unknown:
            print(f"unknown panels {unknown}; try `python -m repro list`",
                  file=sys.stderr)
            return 2

    print("engine micro-benchmarks...", file=sys.stderr)
    engine = bench.engine_metrics(repeat=args.repeat)

    def _time_panel(name: str, frame_trains: bool, express: bool) -> dict:
        """Best-of-N wall time plus engine event counts for one panel.

        The workload is deterministic, so the event counters are identical
        across repeats; the last repeat's counts serve for all. Bench
        always simulates cold (no result cache), so cache counters are
        meaningless here and deliberately not recorded.
        """
        best_wall = float("inf")
        for _ in range(args.repeat):
            figures_base.STATS.reset()
            # repro-lint: allow[det-wallclock] bench measures host wall time
            start = time.perf_counter()
            _run_panel(name, jobs=1, cache=None, audit=False,
                       frame_trains=frame_trains, express=express)
            wall = time.perf_counter() - start  # repro-lint: allow[det-wallclock] bench measures host wall time
            if wall < best_wall:
                best_wall = wall
        stats = figures_base.STATS
        return {
            "wall_seconds": best_wall,
            "experiments_run": stats.experiments_run,
            "events_fired": stats.events_fired,
            "events_cancelled": stats.events_cancelled,
            "express_fired": stats.express_fired,
        }

    figures = {}
    for name in names:
        print(f"timing {name}...", file=sys.stderr)
        row = _time_panel(name, frame_trains=True, express=True)
        print(f"timing {name} (--no-train --no-express legacy)...",
              file=sys.stderr)
        legacy = _time_panel(name, frame_trains=False, express=False)
        row["legacy"] = {
            "wall_seconds": legacy["wall_seconds"],
            "events_fired": legacy["events_fired"],
            "events_cancelled": legacy["events_cancelled"],
        }
        if legacy["events_fired"]:
            row["events_reduction"] = (
                1.0 - row["events_fired"] / legacy["events_fired"]
            )
        figures[name] = row

    doc = bench.snapshot(figures, engine)
    path = bench.write_snapshot(doc, args.out)
    print(f"snapshot written to {path}")
    print(
        f"engine: schedule_run {engine['schedule_run_events_per_sec']:,.0f} ev/s, "
        f"cancel_churn {engine['cancel_churn_events_per_sec']:,.0f} ev/s "
        f"(normalized {engine['schedule_run_normalized']:.3f} / "
        f"{engine['cancel_churn_normalized']:.3f})"
    )
    for name, row in figures.items():
        line = (f"{name}: {row['wall_seconds']:.3f}s wall, "
                f"{row['experiments_run']} experiments, "
                f"{row['events_fired']:,} events "
                f"(+{row['express_fired']:,} express)")
        if "events_reduction" in row:
            line += (f" ({row['events_reduction']:.0%} fewer than legacy's "
                     f"{row['legacy']['events_fired']:,} in "
                     f"{row['legacy']['wall_seconds']:.3f}s)")
        print(line)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import lint as lint_mod

    baseline_path = Path(args.baseline) if args.baseline else None
    report = lint_mod.run_lint(baseline_path=baseline_path)
    if args.write_baseline:
        path = lint_mod.update_baseline(report, path=baseline_path)
        print(f"wrote {len(report.findings)} finding(s) to {path}")
        return 0
    if args.json:
        print(lint_mod.render_json(report))
    else:
        print(lint_mod.render_text(report, verbose=args.verbose))
    return report.exit_code


def cmd_list(_: argparse.Namespace) -> int:
    for name in sorted(_panel_registry()):
        print(name)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "figure": cmd_figure,
        "trace": cmd_trace,
        "audit": cmd_audit,
        "bench": cmd_bench,
        "lint": cmd_lint,
        "list": cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
