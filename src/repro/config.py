"""Experiment configuration.

``ExperimentConfig`` fully describes one run: the traffic pattern and workload,
which stack optimizations are enabled (the paper's incremental columns), host
hardware parameters, TCP parameters, and link/switch behaviour.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field

from . import constants
from .units import kb, msec


class TrafficPattern(enum.Enum):
    """The five standard traffic patterns of Fig 2, plus the paper's §3.7 mixes."""

    SINGLE = "single"            # one sender core -> one receiver core
    ONE_TO_ONE = "one-to-one"    # flow i: sender core i -> receiver core i
    INCAST = "incast"            # every sender core -> one receiver core
    OUTCAST = "outcast"          # one sender core -> every receiver core
    ALL_TO_ALL = "all-to-all"    # x sender cores x x receiver cores
    RPC_INCAST = "rpc-incast"    # N ping-pong RPC clients -> one server app (Fig 10)
    MIXED = "mixed"              # 1 long flow + N short RPC flows on one core (Fig 11)


class SteeringMode(enum.Enum):
    """Receiver-side flow steering techniques (paper Table 2)."""

    RSS = "rss"    # NIC hashes 4-tuple to pick the IRQ core
    RPS = "rps"    # software hash-based steering
    RFS = "rfs"    # software steering to the application's core
    ARFS = "arfs"  # NIC steers IRQ to the application's core


class CongestionControl(enum.Enum):
    """Congestion control algorithms studied in §3.10."""

    CUBIC = "cubic"
    RENO = "reno"
    DCTCP = "dctcp"
    BBR = "bbr"


class NumaPolicy(enum.Enum):
    """Where application threads are placed relative to the NIC."""

    NIC_LOCAL_FIRST = "nic-local-first"  # fill NIC-local NUMA node, then spill
    NIC_REMOTE = "nic-remote"            # force apps onto a NIC-remote node (Fig 4, 10c)


@dataclass
class OptimizationConfig:
    """The incrementally-enabled optimizations of Fig 3a.

    The paper's four columns are: *No Opt.* (GSO disabled too, footnote 5),
    *+TSO/GRO*, *+Jumbo*, *+aRFS*.
    """

    tso_gro: bool = True   # NIC TSO on Tx, software GRO on Rx
    jumbo: bool = True     # 9000B MTU instead of 1500B
    arfs: bool = True      # NIC steers IRQs to the application core
    lro: bool = False      # NIC-side receive merging instead of GRO (footnote 3)

    @classmethod
    def none(cls) -> "OptimizationConfig":
        return cls(tso_gro=False, jumbo=False, arfs=False)

    @classmethod
    def tso_gro_only(cls) -> "OptimizationConfig":
        return cls(tso_gro=True, jumbo=False, arfs=False)

    @classmethod
    def tso_gro_jumbo(cls) -> "OptimizationConfig":
        return cls(tso_gro=True, jumbo=True, arfs=False)

    @classmethod
    def all(cls) -> "OptimizationConfig":
        return cls(tso_gro=True, jumbo=True, arfs=True)

    @classmethod
    def incremental_ladder(cls) -> "list[tuple[str, OptimizationConfig]]":
        """The paper's incremental columns, in order."""
        return [
            ("No Opt.", cls.none()),
            ("+TSO/GRO", cls.tso_gro_only()),
            ("+Jumbo", cls.tso_gro_jumbo()),
            ("+aRFS", cls.all()),
        ]

    @property
    def mtu(self) -> int:
        return constants.JUMBO_MTU if self.jumbo else constants.DEFAULT_MTU


@dataclass
class NicConfig:
    """NIC parameters (Mellanox ConnectX-5-like)."""

    num_queues: int = constants.DEFAULT_NIC_NUM_QUEUES
    rx_descriptors: int = constants.DEFAULT_NIC_RX_DESCRIPTORS
    tx_descriptors: int = constants.DEFAULT_NIC_TX_DESCRIPTORS
    arfs_table_capacity: int = constants.ARFS_TABLE_CAPACITY


@dataclass
class HostConfig:
    """Host hardware parameters (paper §2.2 testbed)."""

    numa_nodes: int = constants.NUM_NUMA_NODES
    cores_per_node: int = constants.CORES_PER_NUMA_NODE
    cpu_freq_hz: float = constants.CPU_FREQ_HZ
    nic_numa_node: int = constants.NIC_NUMA_NODE
    l3_cache_bytes: int = constants.L3_CACHE_BYTES
    dca_fraction: float = constants.DCA_FRACTION_OF_L3
    dca_enabled: bool = True      # DDIO on by default (§3.8)
    iommu_enabled: bool = False   # IOMMU off by default (§3.9)
    # How strongly large NIC-descriptor footprints dilute effective DCA
    # capacity (imperfect replacement / complex addressing, §3.1).
    dca_dilution_exponent: float = 0.25


@dataclass
class TcpConfig:
    """TCP parameters."""

    rx_buffer_bytes: int = constants.DEFAULT_TCP_RX_BUFFER_BYTES
    tx_buffer_bytes: int = constants.DEFAULT_TCP_TX_BUFFER_BYTES
    # The kernel autotunes the Rx buffer by default (DRS); §3.1's tuning
    # experiments (Fig 3e/3f) override it with a fixed size (footnote 6).
    autotune_rx_buffer: bool = True
    autotune_max_bytes: int = kb(4096)
    congestion_control: CongestionControl = CongestionControl.CUBIC
    init_cwnd_segments: int = constants.TCP_INIT_CWND_SEGMENTS
    delayed_ack_timeout_ns: int = constants.DELAYED_ACK_TIMEOUT_NS
    ack_every_n_segments: int = constants.ACK_EVERY_N_SEGMENTS


@dataclass
class LinkConfig:
    """Link and optional in-path switch (§3.6)."""

    bandwidth_bps: float = constants.LINK_BANDWIDTH_BPS
    propagation_ns: int = constants.LINK_PROPAGATION_NS
    loss_rate: float = 0.0          # random drop probability at the switch
    has_switch: bool = False        # §3.6 inserts a switch between the hosts
    ecn_threshold_bytes: int = 9000 * 65  # DCTCP marking threshold (~65 jumbo frames)


@dataclass
class WorkloadConfig:
    """Application workload parameters."""

    app_write_bytes: int = constants.DEFAULT_APP_WRITE_BYTES
    app_read_bytes: int = constants.DEFAULT_APP_READ_BYTES
    rpc_size_bytes: int = kb(4)       # request == response size (§3.7)
    num_rpc_flows: int = 0            # short flows mixed with long flows (Fig 11)
    include_long_flow: bool = True    # MIXED pattern: drop the long flow to
                                      # measure short flows in isolation (Fig 11)


@dataclass
class ExperimentConfig:
    """Everything needed to run one measurement."""

    pattern: TrafficPattern = TrafficPattern.SINGLE
    num_flows: int = 1            # meaning depends on pattern (see workloads.patterns)
    duration_ns: int = msec(20)
    warmup_ns: int = msec(8)
    seed: int = 1

    opts: OptimizationConfig = field(default_factory=OptimizationConfig.all)
    nic: NicConfig = field(default_factory=NicConfig)
    host: HostConfig = field(default_factory=HostConfig)
    tcp: TcpConfig = field(default_factory=TcpConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)

    numa_policy: NumaPolicy = NumaPolicy.NIC_LOCAL_FIRST
    # When aRFS is off the paper pins IRQs to a core on a *different* NUMA node
    # than the application for deterministic worst-case measurements (§3.1).
    worst_case_irq_mapping: bool = True
    steering: SteeringMode = SteeringMode.RSS  # used when aRFS is off
    cost_overrides: dict = field(default_factory=dict)

    # Simulator-implementation switch, not an experiment parameter: carry
    # wire batches as lazily-settled frame trains (fewer engine events) or
    # as the legacy per-batch event pipeline. Results are identical by
    # construction (enforced by the golden-digest gate and the train
    # equivalence property tests), so the flag is excluded from the
    # content-addressed cache key / canonical dict.
    frame_trains: bool = field(default=True, metadata={"cache_key": False})

    # Companion switch one level up: the steady-state express lane
    # (DESIGN.md §13) routes CPU job completions and chased timer deadlines
    # through the engine's off-wheel dispatch heap, fast-forwarding whole
    # ACK-clocked rounds of quiescent bulk flows. Byte-identical by
    # construction (same golden-digest + equivalence-test gates as
    # frame_trains), so it is likewise excluded from the cache key.
    # ``repro ... --no-express`` is the escape hatch.
    express: bool = field(default=True, metadata={"cache_key": False})

    # Opt-in per-stage latency tracing (DESIGN.md §12). Unlike frame_trains
    # this IS part of the cache key: traced results carry an extra payload
    # section, so they must not be served from (or poison) untraced cache
    # entries.
    trace: bool = False

    def replace(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with top-level fields overridden."""
        return dataclasses.replace(self, **kwargs)

    def to_canonical_dict(self) -> dict:
        """A canonical, JSON-stable view of every field (nested configs
        included), suitable for content-addressed hashing.

        Two configs that compare equal produce identical canonical dicts;
        changing *any* field (including ``cost_overrides`` entries and the
        seed) changes the output. Used by :mod:`repro.core.cache` to key the
        on-disk result cache.
        """
        return _canonicalize(self)

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent configurations."""
        if self.num_flows < 1:
            raise ValueError("num_flows must be >= 1")
        if self.duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        if self.warmup_ns < 0:
            raise ValueError("warmup_ns must be >= 0")
        total_cores = self.host.numa_nodes * self.host.cores_per_node
        if self.pattern in (
            TrafficPattern.ONE_TO_ONE,
            TrafficPattern.INCAST,
            TrafficPattern.OUTCAST,
            TrafficPattern.ALL_TO_ALL,
        ) and self.num_flows > total_cores:
            raise ValueError(
                f"{self.pattern.value} with {self.num_flows} flows exceeds "
                f"{total_cores} cores"
            )
        if not 0.0 <= self.link.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.link.loss_rate > 0 and not self.link.has_switch:
            raise ValueError("packet loss requires has_switch=True (drops happen there)")


#: ``ExperimentConfig`` fields deliberately excluded from the
#: content-addressed cache key. Declared here (not just via per-field
#: ``metadata``) so the exclusion list is a single reviewable contract;
#: ``repro lint`` (the cache-key checker) enforces that this set and the
#: ``cache_key: False`` field markers stay in two-way sync and that
#: :func:`_canonicalize` actually consults it. Only simulator-implementation
#: switches whose output equivalence is gated elsewhere (golden digests +
#: equivalence property tests) belong here.
CACHE_KEY_EXCLUDED = frozenset({"frame_trains", "express"})


def _canonicalize(value: object) -> object:
    """Recursively convert config values into JSON-stable primitives.

    Dataclasses become field-name dicts, enums their values, and dict keys are
    stringified and sorted so ``json.dumps(..., sort_keys=True)`` over the
    output is a stable canonical encoding.

    Fields are dropped from the output iff their definition carries
    ``metadata={"cache_key": False}`` *and* (for ``ExperimentConfig``) their
    name appears in :data:`CACHE_KEY_EXCLUDED` — the two declarations are
    kept in sync by ``repro lint``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        excluded = (
            CACHE_KEY_EXCLUDED if isinstance(value, ExperimentConfig) else frozenset()
        )
        return {
            f.name: _canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.metadata.get("cache_key", True) and f.name not in excluded
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {
            str(key): _canonicalize(val)
            for key, val in sorted(value.items(), key=lambda item: str(item[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_canonicalize(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize config value of type {type(value)!r}")
