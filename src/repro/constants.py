"""Testbed constants mirroring the paper's experimental setup (§2.2).

The paper's servers: 4-socket NUMA Intel Xeon Gold 6128 @ 3.4GHz, 6 cores per
socket, 32KB/1MB/20MB L1/L2/L3, 256GB RAM, 100Gbps Mellanox ConnectX-5 Ex NIC
attached to one socket, Ubuntu 16.04 with kernel 5.4.43, DDIO on,
hyperthreading and IOMMU off by default.
"""

from __future__ import annotations

from .units import kb, mb, msec, usec

# --- CPU / topology -----------------------------------------------------------

CPU_FREQ_HZ = 3.4e9
NUM_NUMA_NODES = 4
CORES_PER_NUMA_NODE = 6
NIC_NUMA_NODE = 0

L1_CACHE_BYTES = kb(32)
L2_CACHE_BYTES = mb(1)
L3_CACHE_BYTES = mb(20)

# DDIO can only use ~18% (~3MB) of L3 in the paper's setup (§3.1, footnote 7).
DCA_FRACTION_OF_L3 = 0.18
DCA_CACHE_BYTES = int(L3_CACHE_BYTES * DCA_FRACTION_OF_L3)

CACHE_LINE_BYTES = 64
PAGE_BYTES = 4096

# --- link ----------------------------------------------------------------------

LINK_BANDWIDTH_BPS = 100e9
# One-way propagation on a directly-connected pair (no switch): sub-us.
LINK_PROPAGATION_NS = usec(1)
SWITCH_FORWARD_NS = usec(1)

# --- NIC ------------------------------------------------------------------------

DEFAULT_MTU = 1500
JUMBO_MTU = 9000
MAX_GSO_SIZE = 64 * 1024  # 64KB skbs with TSO/GSO/GRO
DEFAULT_NIC_RX_DESCRIPTORS = 1024
DEFAULT_NIC_TX_DESCRIPTORS = 1024
DEFAULT_NIC_NUM_QUEUES = 24
# aRFS steering-table capacity: large but finite (the paper could not install
# 576 entries for 24x24 all-to-all, §3.5).
ARFS_TABLE_CAPACITY = 512
ETHERNET_HEADER_BYTES = 18
IP_HEADER_BYTES = 20
TCP_HEADER_BYTES = 20
FRAME_OVERHEAD_BYTES = ETHERNET_HEADER_BYTES + IP_HEADER_BYTES + TCP_HEADER_BYTES

# --- NAPI (footnote 2) -----------------------------------------------------------

NAPI_BUDGET_FRAMES = 300
NAPI_BUDGET_TIMEOUT_NS = msec(2)

# Adaptive interrupt moderation (Mellanox adaptive-rx): under steady traffic
# the IRQ waits for a few frames or a short timer; after idle it fires
# immediately for latency.
IRQ_COALESCE_NS = usec(16)
IRQ_COALESCE_FRAMES = 16
IRQ_IDLE_RESET_NS = usec(100)

# --- TCP ---------------------------------------------------------------------------

DEFAULT_TCP_RX_BUFFER_BYTES = kb(3200)
DEFAULT_TCP_TX_BUFFER_BYTES = kb(3200)
TCP_INIT_CWND_SEGMENTS = 10
TCP_MIN_RTO_NS = msec(1)
DELAYED_ACK_TIMEOUT_NS = usec(200)
# Linux acks at least every 2 received segments (RFC 1122 / quickack).
ACK_EVERY_N_SEGMENTS = 2

# --- kernel memory ----------------------------------------------------------------

# Per-CPU pageset ("pcp") capacity, in pages, and refill batch size.
PAGESET_CAPACITY_PAGES = 512
PAGESET_BATCH_PAGES = 64

# --- applications -----------------------------------------------------------------

DEFAULT_APP_WRITE_BYTES = 128 * 1024  # iperf default-ish write size
DEFAULT_APP_READ_BYTES = 128 * 1024
