"""The paper's primary contribution: CPU profiling harness, experiment runner,
metrics and reports for host network stack overheads."""

from .taxonomy import Category, categorize, FUNCTION_CATEGORY
from .profiler import CpuProfiler
from .metrics import SideMetrics, LatencyStats
from .results import ExperimentResult, BreakdownTable
from .experiment import Experiment
from .cache import CACHE_SCHEMA_VERSION, ResultCache, config_cache_key
from .runner import RunnerStats, run_many

__all__ = [
    "Category",
    "categorize",
    "FUNCTION_CATEGORY",
    "CpuProfiler",
    "SideMetrics",
    "LatencyStats",
    "ExperimentResult",
    "BreakdownTable",
    "Experiment",
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "config_cache_key",
    "RunnerStats",
    "run_many",
]
