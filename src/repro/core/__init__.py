"""The paper's primary contribution: CPU profiling harness, experiment runner,
metrics and reports for host network stack overheads."""

from .taxonomy import Category, categorize, FUNCTION_CATEGORY
from .profiler import CpuProfiler
from .metrics import SideMetrics, LatencyStats
from .results import ExperimentResult, BreakdownTable
from .experiment import Experiment

__all__ = [
    "Category",
    "categorize",
    "FUNCTION_CATEGORY",
    "CpuProfiler",
    "SideMetrics",
    "LatencyStats",
    "ExperimentResult",
    "BreakdownTable",
    "Experiment",
]
