"""Conservation-invariant auditor for the simulator's cycle/byte accounting.

Every claim this reproduction makes is an accounting claim: the Table-1 CPU
breakdowns are meaningful only if every simulated cycle is charged exactly
once, and throughput numbers only if every byte is counted exactly once. This
module converts those implicit identities into executable checks, run at
experiment teardown (opt-in via ``Experiment(config, audit=True)`` or the
``--audit`` CLI flag):

**Byte conservation** — per flow and per host, in TCP sequence space:

* transmit half: ``app_bytes_written == unsent_bytes + snd_nxt`` (every byte
  accepted from the application is either still buffered or was pushed into
  the sequence stream exactly once);
* receive half: ``app_bytes_read + socket unread + in-limbo == rcv_nxt``
  (every in-order byte is either already copied to userspace, waiting on the
  socket queue, or committed-but-not-yet-enqueued while its softirq CPU job
  drains);
* stream: ``writer's app bytes == reader's app bytes + unread + in-limbo +
  in-flight-or-dropped (snd_nxt - rcv_nxt) + unsent``, plus the ordering
  invariants ``snd_una <= rcv_nxt <= snd_nxt``.

**Wire conservation** — per link direction, ``frames_sent == dropped +
in-flight + delivered`` (same for wire bytes), the NIC Tx counter matches the
link's, and every delivered frame is either accepted by the peer NIC or
counted as a descriptor drop.

**Cycle conservation** — per core, cycles recorded by :class:`CpuProfiler`
equal the core's accounted busy cycles (jobs + context switches + inline
wakeup charges); per host, the profiler total equals the sum over cores;
every charged operation maps to a Table-1 category; and the category
breakdown sums to 100% of charged cycles (within 1e-6).

**Event-queue hygiene** — ``Engine.pending_events()`` is never negative and
the engine's lazy-cancellation counter matches an exact recount of cancelled
events still in the heap.

**Metrics self-consistency** — per host, the per-flow delivered-bytes map
sums to the host's delivered-bytes counter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from .taxonomy import Category, categorize

if TYPE_CHECKING:  # pragma: no cover
    from .experiment import Experiment

#: Relative tolerance for floating-point cycle sums (order-of-summation only).
CYCLE_REL_TOL = 1e-9
#: Absolute tolerance for the Table-1 breakdown summing to 1.0.
BREAKDOWN_ABS_TOL = 1e-6


class AuditError(AssertionError):
    """Raised in strict mode when an accounting invariant is violated."""


@dataclass
class AuditViolation:
    """One broken invariant, with enough context to localize the bug."""

    invariant: str   # e.g. "byte.tx_half", "cycle.core", "engine.cancelled"
    where: str       # e.g. "flow 3 @ sender", "core ('receiver', 2)"
    expected: float
    actual: float
    detail: str = ""

    def render(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return (
            f"{self.invariant} @ {self.where}: "
            f"expected {self.expected!r}, got {self.actual!r}{extra}"
        )

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "where": self.where,
            "expected": self.expected,
            "actual": self.actual,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditViolation":
        return cls(
            invariant=payload["invariant"],
            where=payload["where"],
            expected=payload["expected"],
            actual=payload["actual"],
            detail=payload.get("detail", ""),
        )


@dataclass
class AuditReport:
    """Outcome of one conservation audit: every check run, every violation."""

    checks_run: int = 0
    violations: List[AuditViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        if self.ok:
            return f"audit ok: {self.checks_run} conservation checks passed"
        lines = [
            f"audit FAILED: {len(self.violations)} violation(s) "
            f"in {self.checks_run} checks"
        ]
        lines.extend(f"  - {violation.render()}" for violation in self.violations)
        return "\n".join(lines)

    def raise_if_violations(self) -> None:
        if not self.ok:
            raise AuditError(self.render())

    def to_dict(self) -> dict:
        return {
            "checks_run": self.checks_run,
            "ok": self.ok,
            "violations": [violation.to_dict() for violation in self.violations],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditReport":
        return cls(
            checks_run=payload["checks_run"],
            violations=[
                AuditViolation.from_dict(entry) for entry in payload["violations"]
            ],
        )


class ConservationAuditor:
    """Runs every conservation check against a finished :class:`Experiment`."""

    def __init__(self, experiment: "Experiment") -> None:
        self.experiment = experiment
        self.report = AuditReport()

    # --- check helpers ----------------------------------------------------------

    def _check_exact(
        self, invariant: str, where: str, expected: float, actual: float,
        detail: str = "",
    ) -> None:
        self.report.checks_run += 1
        if expected != actual:
            self.report.violations.append(
                AuditViolation(invariant, where, expected, actual, detail)
            )

    def _check_close(
        self, invariant: str, where: str, expected: float, actual: float,
        detail: str = "", rel: float = CYCLE_REL_TOL, abs_tol: float = 1e-6,
    ) -> None:
        self.report.checks_run += 1
        if not math.isclose(expected, actual, rel_tol=rel, abs_tol=abs_tol):
            self.report.violations.append(
                AuditViolation(invariant, where, expected, actual, detail)
            )

    def _check_true(
        self, invariant: str, where: str, condition: bool, detail: str = "",
        expected: float = 1.0, actual: float = 0.0,
    ) -> None:
        self.report.checks_run += 1
        if not condition:
            self.report.violations.append(
                AuditViolation(invariant, where, expected, actual, detail)
            )

    # --- entry point ----------------------------------------------------------

    def audit(self) -> AuditReport:
        """Run all checks; returns the (reusable) report."""
        # Flush the frame-train pipelines first so wire counters reflect
        # every drain and delivery due by now (idempotent: the experiment
        # already settles at its run boundaries).
        for pipeline in getattr(self.experiment, "pipelines", ()):
            pipeline.settle_final(self.experiment.engine.now)
        self._audit_bytes()
        self._audit_wire()
        self._audit_trains()
        self._audit_cycles()
        self._audit_engine()
        self._audit_metrics()
        self._audit_trace()
        return self.report

    # --- byte conservation ------------------------------------------------------

    def _audit_bytes(self) -> None:
        exp = self.experiment
        for host in (exp.sender, exp.receiver):
            for flow_id, ep in host.endpoints.items():
                where = f"flow {flow_id} @ {host.name}"
                self._check_exact(
                    "byte.tx_half", where,
                    ep.app_bytes_written, ep.unsent_bytes + ep.snd_nxt,
                    "app bytes written != send buffer + bytes pushed to stream",
                )
                self._check_exact(
                    "byte.rx_half", where,
                    ep.rcv_nxt,
                    ep.app_bytes_read + ep.socket.unread_bytes + ep.rx_limbo_bytes,
                    "in-order bytes != read + socket queue + in-limbo",
                )
                self._check_true(
                    "byte.rx_limbo_nonnegative", where,
                    ep.rx_limbo_bytes >= 0,
                    f"rx_limbo_bytes={ep.rx_limbo_bytes}",
                )

        # Stream-level conservation between the paired endpoints of each flow.
        for flow_id, snd in exp.sender.endpoints.items():
            rcv = exp.receiver.endpoints.get(flow_id)
            if rcv is None:
                continue
            for tx, rx in ((snd, rcv), (rcv, snd)):
                where = f"flow {flow_id} {tx.host.name}->{rx.host.name}"
                self._check_true(
                    "byte.sequence_order", where,
                    tx.snd_una <= rx.rcv_nxt <= tx.snd_nxt,
                    f"snd_una={tx.snd_una} rcv_nxt={rx.rcv_nxt} "
                    f"snd_nxt={tx.snd_nxt}",
                )
                inflight_or_dropped = tx.snd_nxt - rx.rcv_nxt
                self._check_exact(
                    "byte.stream", where,
                    tx.app_bytes_written,
                    rx.app_bytes_read + rx.socket.unread_bytes
                    + rx.rx_limbo_bytes + inflight_or_dropped + tx.unsent_bytes,
                    "written != delivered + queued + in-limbo + in-flight/"
                    "dropped + unsent",
                )

        # Per-host aggregates of the same identities.
        for host in (exp.sender, exp.receiver):
            eps = host.endpoints.values()
            self._check_exact(
                "byte.host_tx", host.name,
                sum(ep.app_bytes_written for ep in eps),
                sum(ep.unsent_bytes + ep.snd_nxt for ep in eps),
            )
            self._check_exact(
                "byte.host_rx", host.name,
                sum(ep.rcv_nxt for ep in eps),
                sum(
                    ep.app_bytes_read + ep.socket.unread_bytes + ep.rx_limbo_bytes
                    for ep in eps
                ),
            )

    # --- wire conservation --------------------------------------------------------

    def _audit_wire(self) -> None:
        exp = self.experiment
        pairs = (
            (exp.sender.nic, exp.link_to_receiver, exp.receiver.nic),
            (exp.receiver.nic, exp.link_to_sender, exp.sender.nic),
        )
        for tx_nic, link, rx_nic in pairs:
            where = link.name
            self._check_exact(
                "wire.nic_tx", where, tx_nic.tx_frames, link.frames_sent,
                "NIC Tx frame count != link frame count",
            )
            self._check_exact(
                "wire.frames", where,
                link.frames_sent,
                link.frames_dropped + link.frames_in_flight
                + link.frames_delivered,
                "sent != dropped + in-flight + delivered",
            )
            self._check_exact(
                "wire.bytes", where,
                link.bytes_sent,
                link.bytes_dropped + link.bytes_in_flight + link.bytes_delivered,
                "wire bytes sent != dropped + in-flight + delivered",
            )
            self._check_exact(
                "wire.nic_rx", where,
                link.frames_delivered,
                rx_nic.rx_frames + rx_nic.total_rx_drops(),
                "delivered frames != NIC accepted + descriptor drops",
            )
            self._check_exact(
                "wire.nic_rx_bytes", where,
                link.bytes_delivered,
                rx_nic.rx_bytes + rx_nic.total_rx_drop_bytes(),
                "delivered wire bytes != NIC accepted + descriptor-drop bytes",
            )

    # --- frame-train pipeline conservation -------------------------------------------

    def _audit_trains(self) -> None:
        """The in-flight side of the wire identities, train-resolved.

        A train of N frames must account as N frames: the link's in-flight
        counters have to equal the frame/byte totals of the trains still
        queued in the pipeline (mid-train switch drops were counted at the
        drain, so they never appear here), and any pending drain must lie in
        the future — a past-due drain would mean settlement was skipped.
        """
        exp = self.experiment
        now = exp.engine.now
        for pipeline in getattr(exp, "pipelines", ()):
            where = pipeline.link.name
            self._check_exact(
                "train.inflight_frames", where,
                pipeline.link.frames_in_flight,
                sum(len(train.frames) for train in pipeline.inflight),
                "link in-flight frames != frames aboard queued trains",
            )
            self._check_exact(
                "train.inflight_bytes", where,
                pipeline.link.bytes_in_flight,
                sum(train.wire_bytes for train in pipeline.inflight),
                "link in-flight bytes != bytes aboard queued trains",
            )
            self._check_true(
                "train.arrivals_future", where,
                all(train.arrival_ns > now for train in pipeline.inflight),
                f"settled past-due train left queued at t={now}",
            )
            self._check_true(
                "train.drain_future", where,
                pipeline.drain_due is None or pipeline.drain_due > now,
                f"drain_due={pipeline.drain_due} not after t={now}",
            )

    # --- cycle conservation -----------------------------------------------------------

    def _audit_cycles(self) -> None:
        exp = self.experiment
        profiler = exp.profiler
        for host in (exp.sender, exp.receiver):
            host_busy = 0.0
            for core in host.topology.cores:
                host_busy += core.busy_cycles
                self._check_close(
                    "cycle.core", f"core {core.key}",
                    core.busy_cycles, profiler.core_cycles(core.key),
                    "core busy cycles != profiler cycles for this core",
                )
            total = profiler.total_cycles(host.name)
            self._check_close(
                "cycle.host", host.name, host_busy, total,
                "sum of core busy cycles != profiler host total",
            )

            by_op = profiler.by_operation(host.name)
            unknown = [op for op in by_op if not self._classifiable(op)]
            self._check_true(
                "cycle.taxonomy_total", host.name,
                not unknown,
                f"unclassified operations: {unknown}",
                actual=float(len(unknown)),
            )
            by_cat: Dict[Category, float] = {}
            for op, cyc in by_op.items():
                if self._classifiable(op):
                    cat = categorize(op)
                    by_cat[cat] = by_cat.get(cat, 0.0) + cyc
            self._check_close(
                "cycle.category_total", host.name,
                sum(by_op.values()), sum(by_cat.values()),
                "cycles lost crossing op -> category aggregation",
            )
            if total > 0 and not unknown:
                # category_fractions itself raises on unclassifiable ops, so
                # this check only runs once the taxonomy check passed.
                fractions = profiler.category_fractions(host.name)
                self._check_close(
                    "cycle.breakdown_sum", host.name,
                    1.0, sum(fractions.values()),
                    "Table-1 breakdown does not sum to 100% of charged cycles",
                    rel=0.0, abs_tol=BREAKDOWN_ABS_TOL,
                )

    @staticmethod
    def _classifiable(op: str) -> bool:
        try:
            categorize(op)
        except KeyError:
            return False
        return True

    # --- event-queue hygiene -------------------------------------------------------------

    def _audit_engine(self) -> None:
        counts = self.experiment.engine.audit_counts()
        self._check_true(
            "engine.pending_nonnegative", "engine",
            counts["pending"] >= 0,
            f"pending_events()={counts['pending']}",
            actual=float(counts["pending"]),
        )
        self._check_exact(
            "engine.cancelled", "engine",
            counts["cancelled_recount"], counts["cancelled_tracked"],
            "lazy cancellation counter drifted from an exact heap recount",
        )
        self._check_exact(
            "engine.pending", "engine",
            counts["queued"] - counts["cancelled_recount"]
            + counts["express_pending"],
            counts["pending"],
            "pending_events() disagrees with a live-event recount",
        )
        self._check_exact(
            "engine.express_lane", "engine",
            counts["express_registered"],
            counts["express_fired"] + counts["express_materialized"]
            + counts["express_pending"],
            "express entries registered != fired + materialized + queued",
        )

    # --- metrics self-consistency --------------------------------------------------------

    def _audit_metrics(self) -> None:
        metrics = self.experiment.metrics
        for host in (self.experiment.sender, self.experiment.receiver):
            per_flow = metrics.per_flow_delivered(host.name)
            self._check_exact(
                "metrics.per_flow_sum", host.name,
                metrics.side(host.name).delivered_bytes,
                sum(per_flow.values()),
                "per-flow delivered map does not sum to the host counter",
            )

    # --- trace consistency ---------------------------------------------------------------

    def _audit_trace(self) -> None:
        """Traced runs only: the per-stage receive deltas must telescope to
        the end-to-end copy latency, and the trace's internal e2e stream must
        agree sample-exactly with the reservoir-backed copy-latency metric."""
        hub = getattr(self.experiment, "trace", None)
        if hub is None:
            return
        report = hub.report()
        checks, violations = report.check_identity()
        # _check_true re-counts each violated check, so only the passing
        # ones are added here.
        self.report.checks_run += checks - len(violations)
        for message in violations:
            self._check_true("trace.stage_sum", message.split(":")[0], False,
                             message)
        metrics = self.experiment.metrics
        for host_name, stages in sorted(report.hosts.items()):
            e2e = stages.get("e2e")
            if e2e is None:
                continue
            side = metrics.side(host_name)
            self._check_exact(
                "trace.e2e_count", host_name,
                len(side.latency_samples) + side.latency_dropped, e2e.count,
                "traced e2e sample count != copy-latency observations",
            )
            self._check_exact(
                "trace.e2e_total", host_name,
                side.latency_total_ns, e2e.total_ns,
                "traced e2e total != copy-latency total nanoseconds",
            )


def audit_experiment(
    experiment: "Experiment", strict: bool = False
) -> AuditReport:
    """Audit a finished experiment; raise :class:`AuditError` when ``strict``."""
    report = ConservationAuditor(experiment).audit()
    if strict:
        report.raise_if_violations()
    return report


def merge_reports(reports: List[Optional[AuditReport]]) -> AuditReport:
    """Combine per-experiment reports into one (``None`` entries are skipped)."""
    merged = AuditReport()
    for report in reports:
        if report is None:
            continue
        merged.checks_run += report.checks_run
        merged.violations.extend(report.violations)
    return merged
