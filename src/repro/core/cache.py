"""Persistent, content-addressed cache of experiment results.

Experiments are deterministic functions of their :class:`ExperimentConfig`
(all dataclass fields, ``cost_overrides`` included, plus the seed), so a
result can be stored on disk under a stable content hash of the config and
replayed instead of re-simulated. Regenerating an unchanged figure then costs
a handful of small JSON reads instead of seconds of DES time.

Layout: ``<cache_dir>/v<schema>/<key[:2]>/<key>.json``. Each entry stores the
canonical config alongside the :func:`result_to_dict` payload, so entries are
self-describing and auditable. Bumping :data:`CACHE_SCHEMA_VERSION` (done
whenever the simulator's behaviour or the result encoding changes
incompatibly) orphans every old entry without touching them on disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Optional

from ..config import CACHE_KEY_EXCLUDED, ExperimentConfig
from .export import result_from_dict, result_to_dict
from .results import ExperimentResult

__all__ = [
    "CACHE_KEY_EXCLUDED",
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "config_cache_key",
    "default_cache_dir",
]

#: Bump whenever simulator behaviour or the result encoding changes in a way
#: that makes previously cached results stale.
#: v2: per-tag throughput is single-sided (receiver host), latency payloads
#: carry a ``dropped`` reservoir count, and results may embed audit reports.
#: v3: latency ``count`` means total observations with ``retained`` explicit,
#: reservoir RNG streams are per-host, configs grow a ``trace`` key field,
#: and traced results embed per-stage trace reports.
CACHE_SCHEMA_VERSION = 3

#: Orphaned write-then-rename temp files older than this are swept. Long
#: enough that no live writer (a single experiment runs in seconds) can be
#: mid-rename; short enough that a crashed worker's litter goes quickly.
STALE_TMP_SECONDS = 3600.0


def config_cache_key(
    config: ExperimentConfig, schema_version: int = CACHE_SCHEMA_VERSION
) -> str:
    """Stable SHA-256 content hash of a config under a cache schema version."""
    document = json.dumps(
        {"schema_version": schema_version, "config": config.to_canonical_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-hostnet``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    return str(Path.home() / ".cache" / "repro-hostnet")


class ResultCache:
    """On-disk result store keyed by config content hash.

    ``get``/``put`` are the whole interface the runner needs; hit/miss
    counters let callers (and tests) observe cache effectiveness.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        schema_version: int = CACHE_SCHEMA_VERSION,
    ) -> None:
        self.root = Path(cache_dir if cache_dir is not None else default_cache_dir())
        self.schema_version = schema_version
        self.hits = 0
        self.misses = 0

    def key(self, config: ExperimentConfig) -> str:
        return config_cache_key(config, self.schema_version)

    def path_for(self, key: str) -> Path:
        return self.root / f"v{self.schema_version}" / key[:2] / f"{key}.json"

    def get(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        """The cached result for ``config``, or ``None`` on a miss.

        Unreadable or corrupt entries (interrupted writes, foreign files) are
        treated as misses rather than errors — the runner just re-simulates.
        """
        path = self.path_for(self.key(config))
        try:
            payload = json.loads(path.read_text())
            result = result_from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, config: ExperimentConfig, result: ExperimentResult) -> Path:
        """Store ``result`` under ``config``'s key; returns the entry path."""
        key = self.key(config)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Opportunistically reclaim temp files orphaned by writers that died
        # between write_text and os.replace (cheap: one shard directory).
        self._sweep_stale_tmp(path.parent)
        document = json.dumps(
            {
                "key": key,
                "schema_version": self.schema_version,
                "config": config.to_canonical_dict(),
                "result": result_to_dict(result),
            },
            sort_keys=True,
        )
        # Write-then-rename so readers never observe a half-written entry.
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(document)
        os.replace(tmp, path)
        return path

    def _sweep_stale_tmp(self, directory: Path, max_age_s: float = STALE_TMP_SECONDS) -> int:
        """Delete orphaned ``*.tmp.<pid>`` files in ``directory``.

        Only files older than ``max_age_s`` go, so a concurrent writer's
        in-flight temp file is never yanked out from under its rename.
        """
        removed = 0
        # File mtimes are wall-clock, so the staleness comparison must be
        # too; this never reaches simulated results.
        now = time.time()  # repro-lint: allow[det-wallclock] mtime comparison for GC only
        try:
            candidates = sorted(directory.glob("*.tmp.*"))
        except OSError:
            return 0
        for tmp in candidates:
            try:
                if now - tmp.stat().st_mtime >= max_age_s:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue  # already gone, or contended: next sweep gets it
        return removed

    def clear(self) -> int:
        """Delete every entry of this cache's schema version (and any
        orphaned temp files, whatever their age); returns the entry count."""
        removed = 0
        version_root = self.root / f"v{self.schema_version}"
        if not version_root.exists():
            return 0
        for entry in sorted(version_root.rglob("*.json")):
            entry.unlink()
            removed += 1
        for tmp in sorted(version_root.rglob("*.tmp.*")):
            tmp.unlink()
        return removed

    def __len__(self) -> int:
        version_root = self.root / f"v{self.schema_version}"
        if not version_root.exists():
            return 0
        # repro-lint: allow[det-fs-order] counting entries is order-insensitive
        return sum(1 for _ in version_root.rglob("*.json"))
