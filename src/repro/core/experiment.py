"""Experiment runner: build two hosts, wire the link, run, measure.

Mirrors the paper's methodology (§2.2): two directly-connected servers (an
optional switch appears only for the §3.6 loss experiments), warmup to steady
state, then measure throughput, per-host CPU utilization, a Table-1 CPU
breakdown per side, cache miss rates, and stack latency.
"""

from __future__ import annotations

from typing import Dict, List

from ..config import ExperimentConfig, NumaPolicy, TrafficPattern
from ..costs.calibration import default_cost_model
from ..kernel.host import Host
from ..kernel.sched import AppThread
from ..sim.engine import Engine
from ..sim.rng import RngStreams
from ..units import throughput_gbps
from ..workloads.apps import (
    rpc_client,
    rpc_server,
    streaming_receiver,
    streaming_sender,
)
from ..workloads.patterns import build_flow_specs
from .metrics import MetricsHub
from .profiler import CpuProfiler
from .results import BreakdownTable, ExperimentResult

#: Stagger between thread start times, to avoid a synchronized t=0 burst.
THREAD_START_STAGGER_NS = 2_000


class Experiment:
    """One configured measurement run.

    With ``audit=True`` a :class:`~repro.core.audit.ConservationAuditor` runs
    at teardown and its report is attached to the result (see
    ``ExperimentResult.audit_report``).
    """

    def __init__(self, config: ExperimentConfig, audit: bool = False) -> None:
        config.validate()
        self.config = config
        self.audit_enabled = audit
        self.engine = Engine()
        # Opt producers (CPU cores, chased TCP timers) into the off-wheel
        # express lane before any host machinery is built, so everything
        # constructed below sees the final setting.
        self.engine.express_enabled = config.express
        self.rngs = RngStreams(config.seed)
        self.profiler = CpuProfiler()
        self.metrics = MetricsHub()
        costs = default_cost_model()
        if config.cost_overrides:
            costs = costs.replace(**config.cost_overrides)
        costs.validate()
        self.costs = costs

        from ..trace import TraceHub

        self.trace = TraceHub() if config.trace else None
        self.sender = Host(
            self.engine, "sender", config, costs, self.profiler, self.metrics,
            self.rngs, trace=self.trace,
        )
        self.receiver = Host(
            self.engine, "receiver", config, costs, self.profiler, self.metrics,
            self.rngs, trace=self.trace,
        )
        self._wire_links()
        self.threads: List[AppThread] = []
        self._build_workload()

    # --- construction ---------------------------------------------------------

    def _wire_links(self) -> None:
        from ..hardware.link import Link

        link_cfg = self.config.link
        common = dict(
            bandwidth_bps=link_cfg.bandwidth_bps,
            propagation_ns=link_cfg.propagation_ns,
            loss_rate=link_cfg.loss_rate,
            has_switch=link_cfg.has_switch,
            switch_delay_ns=1_000 if link_cfg.has_switch else 0,
            ecn_threshold_bytes=link_cfg.ecn_threshold_bytes,
        )
        to_receiver = Link(
            self.engine, "snd->rcv", rng=self.rngs.stream("loss-fwd"), **common
        )
        to_sender = Link(
            self.engine, "rcv->snd", rng=self.rngs.stream("loss-rev"), **common
        )
        self.sender.nic.attach_tx(to_receiver, self.receiver.nic.handle_rx)
        self.receiver.nic.attach_tx(to_sender, self.sender.nic.handle_rx)
        # A link's tx_wire stage is charged to the *transmitting* host (the
        # wire stage lands on the receiving NIC's trace at Rx ingest).
        to_receiver.trace = self.sender.trace
        to_sender.trace = self.receiver.trace
        self.link_to_receiver = to_receiver
        self.link_to_sender = to_sender
        self.pipelines = []
        if self.config.frame_trains:
            from ..hardware.train import TrainPipeline

            self.pipelines = [
                TrainPipeline(
                    self.engine, self.sender.nic, to_receiver, self.receiver.nic
                ),
                TrainPipeline(
                    self.engine, self.receiver.nic, to_sender, self.sender.nic
                ),
            ]
            self.pipelines[0].peer = self.pipelines[1]
            self.pipelines[1].peer = self.pipelines[0]
            # Job submission and completion are the only ways core state
            # interacts with the rest of the host: hooking each core to the
            # pipeline delivering *into* its host lets deferred wire
            # deliveries replay just in time, at their original virtual
            # times, before any core state they depend on can change.
            for host, pipeline in (
                (self.receiver, self.pipelines[0]),
                (self.sender, self.pipelines[1]),
            ):
                for core in host.topology.cores:
                    core._rx_settle = pipeline

    def _placement_order(self, host: Host) -> list:
        if self.config.numa_policy is NumaPolicy.NIC_REMOTE and host is self.receiver:
            return host.topology.cores_nic_remote_first()
        return host.topology.cores_nic_local_first()

    def _build_workload(self) -> None:
        specs = build_flow_specs(self.config)
        workload = self.config.workload
        sender_order = self._placement_order(self.sender)
        receiver_order = self._placement_order(self.receiver)

        shared_server_endpoints = []
        shared_server_core = None
        start_ns = 0

        for spec in specs:
            snd_core = sender_order[spec.sender_rank]
            rcv_core = receiver_order[spec.receiver_rank]
            ep_snd = self.sender.add_endpoint(spec.flow_id, snd_core, spec.tag)
            ep_rcv = self.receiver.add_endpoint(spec.flow_id, rcv_core, spec.tag)
            ep_snd.attach_peer(ep_rcv)
            ep_rcv.attach_peer(ep_snd)

            if spec.kind == "stream":
                self._spawn(
                    f"iperf-snd-{spec.flow_id}",
                    self.sender,
                    snd_core,
                    streaming_sender(ep_snd, workload.app_write_bytes),
                    start_ns,
                )
                self._spawn(
                    f"iperf-rcv-{spec.flow_id}",
                    self.receiver,
                    rcv_core,
                    streaming_receiver(ep_rcv, workload.app_read_bytes),
                    start_ns,
                )
            else:
                self._spawn(
                    f"rpc-client-{spec.flow_id}",
                    self.sender,
                    snd_core,
                    rpc_client(ep_snd, workload.rpc_size_bytes),
                    start_ns,
                )
                if spec.shared_server_thread:
                    shared_server_endpoints.append(ep_rcv)
                    shared_server_core = rcv_core
                else:
                    self._spawn(
                        f"rpc-server-{spec.flow_id}",
                        self.receiver,
                        rcv_core,
                        rpc_server([ep_rcv], workload.rpc_size_bytes),
                        start_ns,
                    )
            start_ns += THREAD_START_STAGGER_NS

        if shared_server_endpoints:
            self._spawn(
                "rpc-server",
                self.receiver,
                shared_server_core,
                rpc_server(shared_server_endpoints, workload.rpc_size_bytes),
                0,
            )

    def _spawn(self, name: str, host: Host, core, body_factory, start_ns: int) -> None:
        thread = AppThread(name, host, core, body_factory)
        self.threads.append(thread)
        self.engine.schedule_at(start_ns, thread.start)

    # --- running ---------------------------------------------------------------------

    def run(self) -> ExperimentResult:
        """Warm up, measure, and assemble the result."""
        cfg = self.config
        self.engine.run(until=cfg.warmup_ns)
        # Flush the virtual wire before snapshotting counters (and before the
        # resets: settlement may start jobs whose warmup charges must be
        # wiped, exactly as their event-path counterparts were).
        for pipeline in self.pipelines:
            pipeline.settle_final(cfg.warmup_ns)
            pipeline.rearm()
        # Steady state reached: discard warmup measurements. Core busy-cycle
        # counters reset in the same instant as the profiler so the two stay
        # comparable (both record charges at job start).
        self.profiler.reset()
        self.sender.reset_cycle_accounting()
        self.receiver.reset_cycle_accounting()
        self.metrics.reset()
        if self.trace is not None:
            self.trace.reset()
        snapshot = self._counter_snapshot()

        end_ns = cfg.warmup_ns + cfg.duration_ns
        self.engine.run(until=end_ns)
        for pipeline in self.pipelines:
            pipeline.settle_final(end_ns)
        result = self._collect(cfg.duration_ns, snapshot)
        if self.audit_enabled:
            from .audit import audit_experiment

            result.audit_report = audit_experiment(self)
        return result

    def _counter_snapshot(self) -> Dict[str, int]:
        return {
            "retransmits": self._sum_endpoint("retransmits"),
            "timeouts": self._sum_endpoint("timeouts"),
            "nic_rx_drops": self.receiver.nic.total_rx_drops()
            + self.sender.nic.total_rx_drops(),
            "wire_drops": self.link_to_receiver.frames_dropped
            + self.link_to_sender.frames_dropped,
        }

    def _sum_endpoint(self, attr: str) -> int:
        total = 0
        for host in (self.sender, self.receiver):
            total += sum(getattr(ep, attr) for ep in host.endpoints.values())
        return total

    def _collect(self, duration_ns: int, snapshot: Dict[str, int]) -> ExperimentResult:
        delivered = self.metrics.total_delivered_bytes()
        total_gbps = throughput_gbps(delivered, duration_ns)
        duration_s = duration_ns / 1e9

        per_flow: Dict[int, float] = {}
        for host in (self.sender, self.receiver):
            for flow_id in host.endpoints:
                nbytes = self.metrics.flow_bytes(host.name, flow_id)
                if nbytes:
                    per_flow[flow_id] = per_flow.get(flow_id, 0.0) + throughput_gbps(
                        nbytes, duration_ns
                    )

        # Per-tag throughput counts each flow's forward direction exactly once:
        # the receiver host records stream payloads and RPC requests. Summing
        # both hosts would double-count request/response workloads (the client
        # side records the responses for the same flows).
        by_tag = {
            tag: nbytes * 8 / duration_s / 1e9
            for tag, nbytes in self.metrics.delivered_by_tag("receiver").items()
        }

        receiver_side = self.metrics.side("receiver")
        sender_side = self.metrics.side("sender")

        return ExperimentResult(
            config_summary=self._summary_string(),
            duration_ns=duration_ns,
            total_throughput_gbps=total_gbps,
            sender_utilization_cores=self.sender.utilization_cores(duration_ns),
            receiver_utilization_cores=self.receiver.utilization_cores(duration_ns),
            sender_breakdown=BreakdownTable(self.profiler.category_fractions("sender")),
            receiver_breakdown=BreakdownTable(
                self.profiler.category_fractions("receiver")
            ),
            receiver_cache_miss_rate=receiver_side.cache_miss_rate(),
            sender_cache_miss_rate=sender_side.sender_cache_miss_rate(),
            copy_latency=self.metrics.latency_stats("receiver"),
            rx_skb_sizes=dict(receiver_side.rx_skb_sizes),
            retransmits=self._sum_endpoint("retransmits") - snapshot["retransmits"],
            timeouts=self._sum_endpoint("timeouts") - snapshot["timeouts"],
            nic_rx_drops=(
                self.receiver.nic.total_rx_drops()
                + self.sender.nic.total_rx_drops()
                - snapshot["nic_rx_drops"]
            ),
            wire_drops=(
                self.link_to_receiver.frames_dropped
                + self.link_to_sender.frames_dropped
                - snapshot["wire_drops"]
            ),
            throughput_by_tag_gbps=by_tag,
            per_flow_gbps=per_flow,
            trace=self.trace.report() if self.trace is not None else None,
        )

    def _summary_string(self) -> str:
        cfg = self.config
        opts = []
        if cfg.opts.tso_gro:
            opts.append("tso/gro")
        if cfg.opts.jumbo:
            opts.append("jumbo")
        if cfg.opts.arfs:
            opts.append("arfs")
        if cfg.opts.lro:
            opts.append("lro")
        label = "+".join(opts) if opts else "no-opt"
        extra = ""
        if cfg.pattern is TrafficPattern.MIXED:
            extra = f"+{cfg.workload.num_rpc_flows}rpc"
        return f"{cfg.pattern.value} x{cfg.num_flows}{extra} [{label}]"
