"""Export experiment results and figure tables to JSON / CSV.

Lets downstream users archive runs and plot the regenerated figures with
their own tooling (the paper's artifact ships gnuplot scripts; we ship data).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Union

from ..trace import TraceReport
from .audit import AuditReport
from .metrics import LatencyStats
from .report import Table
from .results import BreakdownTable, ExperimentResult
from .taxonomy import Category


def result_to_dict(result: ExperimentResult) -> dict:
    """Flatten an :class:`ExperimentResult` into JSON-serializable primitives.

    The ``audit`` key is present only when the run carried a conservation
    audit, so unaudited payloads are unchanged by the auditor feature.
    """
    payload = {
        "config": result.config_summary,
        "duration_ns": result.duration_ns,
        "total_throughput_gbps": result.total_throughput_gbps,
        "throughput_per_core_gbps": result.throughput_per_core_gbps,
        "throughput_per_sender_core_gbps": result.throughput_per_sender_core_gbps,
        "throughput_per_receiver_core_gbps": result.throughput_per_receiver_core_gbps,
        "bottleneck_side": result.bottleneck_side,
        "sender_utilization_cores": result.sender_utilization_cores,
        "receiver_utilization_cores": result.receiver_utilization_cores,
        "sender_breakdown": {
            cat.value: result.sender_breakdown.fraction(cat) for cat in Category
        },
        "receiver_breakdown": {
            cat.value: result.receiver_breakdown.fraction(cat) for cat in Category
        },
        "receiver_cache_miss_rate": result.receiver_cache_miss_rate,
        "sender_cache_miss_rate": result.sender_cache_miss_rate,
        "copy_latency_ns": {
            "avg": result.copy_latency.avg_ns,
            "p50": result.copy_latency.p50_ns,
            "p99": result.copy_latency.p99_ns,
            "max": result.copy_latency.max_ns,
            "count": result.copy_latency.count,
            "dropped": result.copy_latency.dropped_samples,
            "retained": result.copy_latency.retained,
        },
        "rx_skb_sizes": {str(k): v for k, v in sorted(result.rx_skb_sizes.items())},
        "retransmits": result.retransmits,
        "timeouts": result.timeouts,
        "nic_rx_drops": result.nic_rx_drops,
        "wire_drops": result.wire_drops,
        "acks_received_sender_side": result.acks_received_sender_side,
        "throughput_by_tag_gbps": dict(result.throughput_by_tag_gbps),
        "per_flow_gbps": {str(k): v for k, v in sorted(result.per_flow_gbps.items())},
    }
    if result.audit_report is not None:
        payload["audit"] = result.audit_report.to_dict()
    if result.trace is not None:
        payload["trace"] = result.trace.to_dict()
    return payload


def result_from_dict(payload: dict) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`: rebuild an :class:`ExperimentResult`.

    Lossless: ``result_to_dict(result_from_dict(d)) == d`` for any dict
    produced by :func:`result_to_dict`. Derived quantities present in the
    payload (``bottleneck_side``, per-core throughputs) are ignored and
    recomputed from the stored fields. The result cache relies on this
    round-trip for its correctness invariant.
    """
    latency = payload["copy_latency_ns"]
    return ExperimentResult(
        config_summary=payload["config"],
        duration_ns=payload["duration_ns"],
        total_throughput_gbps=payload["total_throughput_gbps"],
        sender_utilization_cores=payload["sender_utilization_cores"],
        receiver_utilization_cores=payload["receiver_utilization_cores"],
        sender_breakdown=_breakdown_from_dict(payload["sender_breakdown"]),
        receiver_breakdown=_breakdown_from_dict(payload["receiver_breakdown"]),
        receiver_cache_miss_rate=payload["receiver_cache_miss_rate"],
        sender_cache_miss_rate=payload["sender_cache_miss_rate"],
        copy_latency=LatencyStats(
            count=latency["count"],
            avg_ns=latency["avg"],
            p50_ns=latency["p50"],
            p99_ns=latency["p99"],
            max_ns=latency["max"],
            dropped_samples=latency.get("dropped", 0),
            # Pre-v3 payloads stored the retained size as "count".
            retained=latency.get("retained", latency["count"]),
        ),
        rx_skb_sizes={int(size): count
                      for size, count in payload["rx_skb_sizes"].items()},
        retransmits=payload["retransmits"],
        timeouts=payload["timeouts"],
        nic_rx_drops=payload["nic_rx_drops"],
        wire_drops=payload["wire_drops"],
        acks_received_sender_side=payload.get("acks_received_sender_side", 0),
        throughput_by_tag_gbps=dict(payload["throughput_by_tag_gbps"]),
        per_flow_gbps={int(flow): gbps
                       for flow, gbps in payload["per_flow_gbps"].items()},
        audit_report=(
            AuditReport.from_dict(payload["audit"]) if "audit" in payload else None
        ),
        trace=(
            TraceReport.from_dict(payload["trace"]) if "trace" in payload else None
        ),
    )


def _breakdown_from_dict(fractions: dict) -> BreakdownTable:
    return BreakdownTable(
        {Category(name): fraction for name, fraction in fractions.items()}
    )


def result_to_json(result: ExperimentResult, indent: int = 2) -> str:
    """Serialize one result as a JSON document."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def result_from_json(document: str) -> ExperimentResult:
    """Inverse of :func:`result_to_json`."""
    return result_from_dict(json.loads(document))


def table_to_csv(table: Table) -> str:
    """Serialize a figure :class:`Table` as CSV (header = column names)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow(row)
    return buffer.getvalue()


def table_to_json(table: Table, indent: int = 2) -> str:
    """Serialize a figure :class:`Table` as JSON records."""
    records = [dict(zip(table.columns, row)) for row in table.rows]
    return json.dumps({"title": table.title, "rows": records}, indent=indent)


def write(path: str, content: str) -> None:
    """Write exported content to ``path``."""
    with open(path, "w") as handle:
        handle.write(content)


def export_result(result: ExperimentResult, path: str) -> None:
    """Export a result to ``path`` (.json or .csv inferred from suffix)."""
    if path.endswith(".json"):
        write(path, result_to_json(result))
        return
    raise ValueError(f"unsupported export format for {path!r} (use .json)")


def export_table(table: Table, path: str) -> None:
    """Export a figure table to ``path`` (.json or .csv by suffix)."""
    if path.endswith(".csv"):
        write(path, table_to_csv(table))
    elif path.endswith(".json"):
        write(path, table_to_json(table))
    else:
        raise ValueError(f"unsupported export format for {path!r} (use .csv/.json)")


Exportable = Union[ExperimentResult, Table]
