"""Measurement collection: throughput, copy hit/miss, latency, skb sizes.

A single :class:`MetricsHub` is shared by both hosts of an experiment; the
experiment resets it at the end of warmup so only steady-state behaviour is
reported (the paper's methodology, §2.2).
"""

from __future__ import annotations

import math
import random
import zlib
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Cap on stored latency samples per host (runs are short; this is generous).
MAX_LATENCY_SAMPLES = 500_000

#: Fixed base seed for the latency reservoirs: sampling past the cap must be
#: deterministic so repeated runs of the same config report identical stats.
_RESERVOIR_SEED = 0x5EED


def _reservoir_seed(host: str) -> int:
    """Per-host reservoir seed: the base seed keyed by a *stable* hash of the
    host name (crc32, not Python's ``hash()``, which varies per process), so
    each host draws from its own RNG stream and its retained sample set is
    invariant to how the two hosts' recordings interleave."""
    return _RESERVOIR_SEED ^ zlib.crc32(host.encode("utf-8"))


@dataclass
class LatencyStats:
    """Summary of a latency sample set, in nanoseconds.

    ``count`` is the total number of observations recorded. ``retained`` is
    how many the hub stored verbatim (at most the reservoir cap) and
    ``dropped_samples`` counts recordings beyond it — ``count == retained +
    dropped_samples`` always. Overflow recordings are not silently discarded:
    past the cap the hub switches to deterministic seeded reservoir sampling,
    so the retained set stays a uniform sample of *all* recordings and the
    percentiles remain unbiased.
    """

    count: int
    avg_ns: float
    p50_ns: float
    p99_ns: float
    max_ns: float
    dropped_samples: int = 0
    retained: int = 0

    @classmethod
    def from_samples(
        cls, samples: List[int], dropped_samples: int = 0
    ) -> "LatencyStats":
        if not samples:
            if dropped_samples:
                # Reservoir sampling keeps the stored set non-empty whenever
                # anything was recorded; dropped observations with nothing
                # retained would silently zero avg/percentiles.
                raise ValueError(
                    f"{dropped_samples} dropped latency samples but no "
                    "retained samples to summarize"
                )
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0, 0)
        ordered = sorted(samples)
        n = len(ordered)

        def pct(p: float) -> float:
            index = min(n - 1, max(0, math.ceil(p * n) - 1))
            return float(ordered[index])

        return cls(
            count=n + dropped_samples,
            avg_ns=sum(ordered) / n,
            p50_ns=pct(0.50),
            p99_ns=pct(0.99),
            max_ns=float(ordered[-1]),
            dropped_samples=dropped_samples,
            retained=n,
        )


@dataclass
class SideMetrics:
    """Per-host counters.

    Each side owns its latency reservoir RNG (seeded from the host name):
    a hub-wide RNG would make one host's retained sample set depend on how
    the *other* host's recordings interleave with its own.
    """

    host: str = ""
    delivered_bytes: int = 0
    copy_hit_bytes: int = 0
    copy_miss_bytes: int = 0
    sender_copy_hit_bytes: int = 0
    sender_copy_miss_bytes: int = 0
    latency_samples: List[int] = field(default_factory=list)
    latency_dropped: int = 0
    latency_total_ns: int = 0
    rx_skb_sizes: Counter = field(default_factory=Counter)

    def __post_init__(self) -> None:
        self.latency_rng = random.Random(_reservoir_seed(self.host))

    def cache_miss_rate(self) -> float:
        total = self.copy_hit_bytes + self.copy_miss_bytes
        return self.copy_miss_bytes / total if total else 0.0

    def sender_cache_miss_rate(self) -> float:
        total = self.sender_copy_hit_bytes + self.sender_copy_miss_bytes
        return self.sender_copy_miss_bytes / total if total else 0.0


class MetricsHub:
    """Shared metric sink for one experiment."""

    def __init__(self) -> None:
        self._sides: Dict[str, SideMetrics] = {}
        self._per_flow_bytes: Dict[Tuple[str, int], int] = defaultdict(int)
        self._flow_tags: Dict[int, str] = {}

    def reset(self) -> None:
        """Discard all measurements (end of warmup). Flow tags persist.

        Sides are recreated lazily with freshly seeded reservoir RNGs, so
        post-warmup sampling is independent of warmup length.
        """
        self._sides.clear()
        self._per_flow_bytes.clear()

    # --- registration ------------------------------------------------------------

    def register_flow(self, flow_id: int, tag: str) -> None:
        self._flow_tags.setdefault(flow_id, tag)

    # --- recording -----------------------------------------------------------------

    def side(self, host: str) -> SideMetrics:
        side = self._sides.get(host)
        if side is None:
            side = self._sides[host] = SideMetrics(host)
        return side

    def record_delivered(self, host: str, flow_id: int, nbytes: int) -> None:
        self.side(host).delivered_bytes += nbytes
        self._per_flow_bytes[(host, flow_id)] += nbytes

    def record_receiver_copy(self, host: str, hit: int, miss: int) -> None:
        side = self.side(host)
        side.copy_hit_bytes += hit
        side.copy_miss_bytes += miss

    def record_sender_copy(self, host: str, hit: int, miss: int) -> None:
        side = self.side(host)
        side.sender_copy_hit_bytes += hit
        side.sender_copy_miss_bytes += miss

    def record_copy_latency(self, host: str, latency_ns: int) -> None:
        """Record one stack-latency sample.

        Below the cap, samples are stored verbatim. Past it, Vitter's
        algorithm R keeps the stored set a uniform random sample of everything
        seen (seeded, hence deterministic) instead of silently truncating —
        which would bias p99/max toward early steady state.
        """
        side = self.side(host)
        side.latency_total_ns += latency_ns
        samples = side.latency_samples
        if len(samples) < MAX_LATENCY_SAMPLES:
            samples.append(latency_ns)
            return
        side.latency_dropped += 1
        seen = MAX_LATENCY_SAMPLES + side.latency_dropped
        slot = side.latency_rng.randrange(seen)
        if slot < MAX_LATENCY_SAMPLES:
            samples[slot] = latency_ns

    def record_rx_skb(self, host: str, payload_bytes: int) -> None:
        self.side(host).rx_skb_sizes[payload_bytes] += 1

    # --- queries ----------------------------------------------------------------------

    def total_delivered_bytes(self) -> int:
        return sum(side.delivered_bytes for side in self._sides.values())

    def delivered_by_tag(self, host: Optional[str] = None) -> Dict[str, int]:
        """Delivered bytes per flow tag.

        With ``host`` given, only that host's deliveries are counted. Summing
        over both hosts (``host=None``) double-counts request/response
        workloads where *each* side records deliveries for the same flow, so
        per-tag throughput should always be taken from one side.
        """
        out: Dict[str, int] = defaultdict(int)
        for (side_host, flow_id), nbytes in self._per_flow_bytes.items():
            if host is not None and side_host != host:
                continue
            out[self._flow_tags.get(flow_id, "untagged")] += nbytes
        return dict(out)

    def per_flow_delivered(self, host: str) -> Dict[int, int]:
        """Delivered bytes per flow on ``host`` (auditor cross-check)."""
        return {
            flow_id: nbytes
            for (side_host, flow_id), nbytes in self._per_flow_bytes.items()
            if side_host == host
        }

    def flow_bytes(self, host: str, flow_id: int) -> int:
        return self._per_flow_bytes.get((host, flow_id), 0)

    def latency_stats(self, host: str) -> LatencyStats:
        side = self.side(host)
        return LatencyStats.from_samples(side.latency_samples, side.latency_dropped)
