"""Per-core, per-operation CPU cycle accounting.

This plays the role of ``perf`` in the paper's methodology (§2.2): every cycle
a simulated core burns is attributed to a kernel operation, which maps to a
Table-1 category. Unlike sampling-based profiling, attribution here is exact.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, Iterable, Tuple

from .taxonomy import Category, categorize

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.cpu import Core


class CpuProfiler:
    """Collects cycles charged by cores, keyed by (core, operation).

    Supports ``reset()`` so experiments can discard warmup cycles, mirroring
    how the paper measures steady state.
    """

    def __init__(self) -> None:
        # {core_key: {op: cycles}}
        self._cycles: Dict[Tuple[str, int], Dict[str, float]] = defaultdict(
            lambda: defaultdict(float)
        )

    def charge(self, core: "Core", op: str, cycles: float) -> None:
        """Attribute ``cycles`` of work on ``core`` to kernel operation ``op``."""
        if cycles < 0:
            raise ValueError(f"negative cycle charge: {cycles} for {op}")
        if cycles:
            self._cycles[core.key][op] += cycles

    def charge_items(self, core: "Core", items) -> float:
        """Charge a batch of ``(op, cycles)`` items; return their plain sum.

        Equivalent to calling :meth:`charge` per item (same order, same
        accumulation), with the per-core dict lookup hoisted out of the loop.
        The dict entry is created lazily so a batch of all-zero charges does
        not mark the core busy (matching :meth:`charge`).
        """
        total = 0.0
        ops = self._cycles.get(core.key)
        for op, cycles in items:
            if cycles:
                if cycles < 0:
                    raise ValueError(f"negative cycle charge: {cycles} for {op}")
                if ops is None:
                    ops = self._cycles[core.key]
                ops[op] += cycles
            total += cycles
        return total

    def reset(self) -> None:
        """Discard all recorded cycles (used at the end of warmup)."""
        self._cycles.clear()

    # --- queries ---------------------------------------------------------------

    def core_cycles(self, core_key: Tuple[str, int]) -> float:
        """Total busy cycles recorded for one core."""
        return sum(self._cycles.get(core_key, {}).values())

    def total_cycles(self, host: str) -> float:
        """Total busy cycles across all cores of ``host``."""
        return sum(
            sum(ops.values()) for key, ops in self._cycles.items() if key[0] == host
        )

    def busy_core_keys(self, host: str) -> Iterable[Tuple[str, int]]:
        """Core keys of ``host`` that recorded any cycles."""
        return [key for key in self._cycles if key[0] == host]

    def by_operation(self, host: str) -> Dict[str, float]:
        """Cycles per kernel operation, aggregated over all cores of ``host``."""
        out: Dict[str, float] = defaultdict(float)
        for key, ops in self._cycles.items():
            if key[0] != host:
                continue
            for op, cyc in ops.items():
                out[op] += cyc
        return dict(out)

    def by_category(self, host: str) -> Dict[Category, float]:
        """Cycles per Table-1 category, aggregated over all cores of ``host``."""
        out: Dict[Category, float] = defaultdict(float)
        for op, cyc in self.by_operation(host).items():
            out[categorize(op)] += cyc
        return dict(out)

    def category_fractions(self, host: str) -> Dict[Category, float]:
        """Fraction of busy cycles per category for ``host`` (sums to 1.0).

        This is the quantity plotted in the paper's CPU-breakdown figures
        (e.g., Fig 3c/3d).
        """
        by_cat = self.by_category(host)
        total = sum(by_cat.values())
        if total <= 0:
            return {cat: 0.0 for cat in Category}
        return {cat: by_cat.get(cat, 0.0) / total for cat in Category}
