"""Plain-text rendering of experiment results as paper-style tables.

Every figure generator returns a :class:`Series` or :class:`Table`; these
helpers print them in aligned columns so benchmark output can be eyeballed
against the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from .results import BreakdownTable
from .taxonomy import Category


@dataclass
class Table:
    """A titled table of rows."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> List[object]:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Aligned plain-text rendering."""
        cells = [self.columns] + [
            [_format_cell(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.columns))
        ]
        lines = [self.title, "-" * len(self.title)]
        header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def breakdown_columns() -> List[str]:
    """Column labels for a per-category breakdown row."""
    return [category.label for category in Category]


def breakdown_cells(breakdown: BreakdownTable) -> List[str]:
    """Fractions of one breakdown formatted as table cells."""
    return [f"{breakdown.fraction(category):.3f}" for category in Category]


def render_breakdown_table(
    title: str,
    labeled: Sequence[tuple],
) -> Table:
    """Build a Table from ``(label, BreakdownTable)`` pairs (Fig 3c/3d style)."""
    table = Table(title, ["config"] + breakdown_columns())
    for label, breakdown in labeled:
        table.add_row(label, *breakdown_cells(breakdown))
    return table
