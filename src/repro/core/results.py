"""Experiment results: the quantities the paper's figures plot."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..trace import TraceReport
from .audit import AuditReport
from .metrics import LatencyStats
from .taxonomy import Category


@dataclass
class BreakdownTable:
    """A CPU-cycle breakdown by Table-1 category (fractions sum to ~1)."""

    fractions: Dict[Category, float]

    def fraction(self, category: Category) -> float:
        return self.fractions.get(category, 0.0)

    def top(self) -> Tuple[Category, float]:
        """The dominant category."""
        return max(self.fractions.items(), key=lambda item: item[1])

    def as_rows(self) -> List[Tuple[str, float]]:
        return [(cat.label, self.fractions.get(cat, 0.0)) for cat in Category]

    def __getitem__(self, category: Category) -> float:
        return self.fraction(category)


@dataclass
class ExperimentResult:
    """Everything measured in one run."""

    config_summary: str
    duration_ns: int

    total_throughput_gbps: float
    sender_utilization_cores: float
    receiver_utilization_cores: float

    sender_breakdown: BreakdownTable
    receiver_breakdown: BreakdownTable

    receiver_cache_miss_rate: float
    sender_cache_miss_rate: float

    copy_latency: LatencyStats
    rx_skb_sizes: Dict[int, int] = field(default_factory=dict)

    retransmits: int = 0
    timeouts: int = 0
    nic_rx_drops: int = 0
    wire_drops: int = 0
    acks_received_sender_side: int = 0
    throughput_by_tag_gbps: Dict[str, float] = field(default_factory=dict)
    per_flow_gbps: Dict[int, float] = field(default_factory=dict)

    #: Conservation-audit outcome; only populated when the experiment ran
    #: with auditing enabled (``Experiment(config, audit=True)`` / ``--audit``).
    audit_report: Optional[AuditReport] = None

    #: Per-stage latency breakdown; only populated when the experiment ran
    #: with tracing enabled (``config.trace`` / ``repro trace <panel>``).
    trace: Optional[TraceReport] = None

    # --- derived metrics (paper's headline quantities) ---------------------------

    @property
    def bottleneck_side(self) -> str:
        """The side whose CPU limits throughput (§2.2: higher utilization)."""
        if self.receiver_utilization_cores >= self.sender_utilization_cores:
            return "receiver"
        return "sender"

    @property
    def bottleneck_utilization_cores(self) -> float:
        return max(self.sender_utilization_cores, self.receiver_utilization_cores)

    @property
    def throughput_per_core_gbps(self) -> float:
        """Total throughput / CPU utilization at the bottleneck side."""
        util = self.bottleneck_utilization_cores
        return self.total_throughput_gbps / util if util > 0 else 0.0

    @property
    def throughput_per_sender_core_gbps(self) -> float:
        """Fig 7's metric: throughput per unit of *sender* CPU."""
        util = self.sender_utilization_cores
        return self.total_throughput_gbps / util if util > 0 else 0.0

    @property
    def throughput_per_receiver_core_gbps(self) -> float:
        util = self.receiver_utilization_cores
        return self.total_throughput_gbps / util if util > 0 else 0.0

    def skb_size_cdf(self) -> List[Tuple[int, float]]:
        """CDF of post-GRO skb sizes at the receiver (Fig 8c)."""
        total = sum(self.rx_skb_sizes.values())
        if not total:
            return []
        out: List[Tuple[int, float]] = []
        acc = 0
        for size in sorted(self.rx_skb_sizes):
            acc += self.rx_skb_sizes[size]
            out.append((size, acc / total))
        return out

    def mean_rx_skb_bytes(self) -> float:
        total = sum(self.rx_skb_sizes.values())
        if not total:
            return 0.0
        return sum(size * count for size, count in self.rx_skb_sizes.items()) / total

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        top_rx, frac_rx = self.receiver_breakdown.top()
        return (
            f"{self.config_summary}: {self.total_throughput_gbps:.1f}Gbps total, "
            f"{self.throughput_per_core_gbps:.1f}Gbps/core "
            f"(bottleneck={self.bottleneck_side}, "
            f"snd={self.sender_utilization_cores:.2f} cores, "
            f"rcv={self.receiver_utilization_cores:.2f} cores), "
            f"rcv miss={self.receiver_cache_miss_rate:.0%}, "
            f"top rcv category={top_rx.label} ({frac_rx:.0%})"
        )
