"""Parallel experiment runner with optional persistent result caching.

Every experiment is an independent, deterministic function of its config, so
a batch of configs can fan out across a process pool with no coordination:
``run_many([c1, c2, ...], jobs=8)`` returns results in input order, identical
(via :func:`result_to_dict`) to running each config sequentially in-process.

Workers ship results back as :func:`result_to_dict` payloads and the parent
rebuilds them with :func:`result_from_dict` — the same lossless round-trip
the on-disk cache uses — so in-process, worker-process, and cache-served
results are byte-identical by construction.
"""

from __future__ import annotations

import gc
import os
from dataclasses import dataclass
from functools import partial
from typing import Iterable, List, Optional

from ..config import ExperimentConfig
from .cache import ResultCache
from .experiment import Experiment
from .export import result_from_dict, result_to_dict
from .results import ExperimentResult


@dataclass
class RunnerStats:
    """Observable counters for one or more :func:`run_many` calls."""

    experiments_run: int = 0   # actual Experiment(...).run() invocations
    cache_hits: int = 0
    cache_misses: int = 0
    #: Engine events fired / cancelled, summed over every experiment actually
    #: simulated (cache hits contribute nothing — no engine ran). The bench
    #: harness reads these to track the frame-train event-count savings.
    events_fired: int = 0
    events_cancelled: int = 0
    #: Express-lane dispatches (off-wheel), same summation rules.
    express_fired: int = 0

    def reset(self) -> None:
        self.experiments_run = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.events_fired = 0
        self.events_cancelled = 0
        self.express_fired = 0


#: Payload side-channel key carrying per-run engine statistics from workers.
#: Popped before the result round-trip, never persisted to the cache.
_ENGINE_STATS_KEY = "_engine_stats"


def _execute(config: ExperimentConfig, audit: bool = False) -> dict:
    """Worker entry point: simulate one config, return its flat payload.

    Module-level (hence picklable) and dict-valued so the pool never has to
    pickle live simulator objects back to the parent. Audit reports travel
    inside the payload (see ``result_to_dict``), so audited runs work across
    the process boundary too.
    """
    # The simulator allocates millions of short-lived tracked objects (frames,
    # records, jobs, charge batches) and keeps no cyclic garbage on the hot
    # path, so the generational collector only costs wall time here: pause it
    # for the duration of the run. Refcounting still reclaims everything hot;
    # the (acyclic-but-tracked) experiment graph dies when the payload is
    # extracted and the collector resumes for everything outside the run.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        experiment = Experiment(config, audit=audit)
        payload = result_to_dict(experiment.run())
    finally:
        if gc_was_enabled:
            gc.enable()
    payload[_ENGINE_STATS_KEY] = {
        "events_fired": experiment.engine.events_fired,
        "events_cancelled": experiment.engine.events_cancelled,
        "express_fired": experiment.engine.express_fired,
    }
    return payload


def resolve_jobs(jobs: Optional[int]) -> int:
    """``None`` means one worker per CPU; otherwise ``jobs`` must be >= 1."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def run_many(
    configs: Iterable[ExperimentConfig],
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    stats: Optional[RunnerStats] = None,
    audit: bool = False,
) -> List[ExperimentResult]:
    """Run every config, in input order, fanning cache misses out to workers.

    ``jobs=1`` runs in-process (no pool spawn cost); ``jobs=N`` uses up to N
    worker processes; ``jobs=None`` uses one per CPU. With a ``cache``, hits
    skip simulation entirely and fresh results are persisted for next time.

    ``audit=True`` runs every experiment with the conservation auditor and
    disables the cache for the batch — cached entries were produced by
    *earlier* runs, so serving one would report stale (or absent) audits
    instead of checking the current code.
    """
    configs = list(configs)
    jobs = resolve_jobs(jobs)
    stats = stats if stats is not None else RunnerStats()
    if audit:
        cache = None

    results: List[Optional[ExperimentResult]] = [None] * len(configs)
    miss_indices: List[int] = []
    if cache is not None:
        for index, config in enumerate(configs):
            cached = cache.get(config)
            if cached is not None:
                results[index] = cached
                stats.cache_hits += 1
            else:
                miss_indices.append(index)
                stats.cache_misses += 1
    else:
        miss_indices = list(range(len(configs)))

    miss_configs = [configs[index] for index in miss_indices]
    execute = partial(_execute, audit=audit)
    if len(miss_configs) > 1 and jobs > 1:
        # imported here so single-job runs skip the multiprocessing machinery
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(miss_configs))) as pool:
            payloads = list(pool.map(execute, miss_configs))
    else:
        payloads = [execute(config) for config in miss_configs]
    stats.experiments_run += len(miss_configs)

    for index, payload in zip(miss_indices, payloads):
        engine_stats = payload.pop(_ENGINE_STATS_KEY, None)
        if engine_stats is not None:
            stats.events_fired += engine_stats["events_fired"]
            stats.events_cancelled += engine_stats["events_cancelled"]
            stats.express_fired += engine_stats.get("express_fired", 0)
        result = result_from_dict(payload)
        if cache is not None:
            cache.put(configs[index], result)
        results[index] = result
    return results  # type: ignore[return-value]  # every slot is filled above
