"""Parameter sweeps: run a family of configurations and collect results.

Built on :func:`repro.core.runner.run_many`, so every sweep transparently
parallelizes across worker processes (``jobs``) and can be served from the
persistent result cache (``cache``) without the call sites changing shape.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..config import ExperimentConfig
from .cache import ResultCache
from .results import ExperimentResult
from .runner import RunnerStats, run_many

ConfigFactory = Callable[[object], ExperimentConfig]


def run_sweep(
    values: Iterable[object],
    make_config: ConfigFactory,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    stats: Optional[RunnerStats] = None,
) -> List[Tuple[object, ExperimentResult]]:
    """Run ``make_config(v)`` for every sweep value and collect results."""
    values = list(values)
    results = run_many(
        [make_config(value) for value in values], jobs=jobs, cache=cache, stats=stats
    )
    return list(zip(values, results))


def run_labeled(
    configs: Iterable[Tuple[str, ExperimentConfig]],
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    stats: Optional[RunnerStats] = None,
) -> Dict[str, ExperimentResult]:
    """Run a list of ``(label, config)`` pairs (e.g. the Fig-3a ladder)."""
    pairs = list(configs)
    results = run_many(
        [config for _, config in pairs], jobs=jobs, cache=cache, stats=stats
    )
    return {label: result for (label, _), result in zip(pairs, results)}
