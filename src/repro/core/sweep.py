"""Parameter sweeps: run a family of configurations and collect results."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from ..config import ExperimentConfig
from .experiment import Experiment
from .results import ExperimentResult

ConfigFactory = Callable[[object], ExperimentConfig]


def run_sweep(
    values: Iterable[object],
    make_config: ConfigFactory,
) -> List[Tuple[object, ExperimentResult]]:
    """Run ``make_config(v)`` for every sweep value and collect results."""
    out: List[Tuple[object, ExperimentResult]] = []
    for value in values:
        config = make_config(value)
        out.append((value, Experiment(config).run()))
    return out


def run_labeled(
    configs: Iterable[Tuple[str, ExperimentConfig]],
) -> Dict[str, ExperimentResult]:
    """Run a list of ``(label, config)`` pairs (e.g. the Fig-3a ladder)."""
    return {label: Experiment(config).run() for label, config in configs}
