"""CPU usage taxonomy (paper Table 1).

The paper samples CPU cycles with ``perf``, takes the top functions covering
~95% of utilization, and classifies them into 8 categories by inspecting
kernel source. The simulator inverts this: every cycle is charged against a
named kernel *operation* (chosen to match real kernel symbols), and each
operation maps to exactly one Table-1 category.
"""

from __future__ import annotations

import enum
from typing import Dict


class Category(enum.Enum):
    """The 8 CPU-usage categories of paper Table 1."""

    DATA_COPY = "data_copy"      # user<->kernel payload copies
    TCPIP = "tcpip"              # TCP/IP protocol processing
    NETDEV = "netdev"            # netdevice subsystem + NIC driver (NAPI, GSO/GRO, qdisc)
    SKB_MGMT = "skb_mgmt"        # building/splitting/releasing skbs
    MEMORY = "memory"            # skb de-/allocation, page de-/allocation
    LOCK = "lock"                # lock-related operations (spin locks, socket lock)
    SCHED = "sched"              # scheduling / context switching among threads
    ETC = "etc"                  # everything else (IRQ handling, syscall entry, ...)

    @property
    def label(self) -> str:
        """Human-readable label used in reports (matches the paper's plots)."""
        return _LABELS[self]


_LABELS = {
    Category.DATA_COPY: "data copy",
    Category.TCPIP: "tcp/ip",
    Category.NETDEV: "netdev subsystem",
    Category.SKB_MGMT: "skb mgmt",
    Category.MEMORY: "memory alloc/dealloc",
    Category.LOCK: "lock/unlock",
    Category.SCHED: "scheduling",
    Category.ETC: "etc",
}


#: Map of simulated kernel operations (named after the Linux symbols a real
#: ``perf`` profile of this path would show) to Table-1 categories.
FUNCTION_CATEGORY: Dict[str, Category] = {
    # --- data copy -----------------------------------------------------------
    "copy_user_enhanced_fast_string": Category.DATA_COPY,
    "copy_from_user": Category.DATA_COPY,
    "copy_to_user": Category.DATA_COPY,
    "skb_copy_datagram_iter": Category.DATA_COPY,
    # --- TCP/IP protocol processing -------------------------------------------
    "tcp_sendmsg_locked": Category.TCPIP,
    "tcp_write_xmit": Category.TCPIP,
    "tcp_rcv_established": Category.TCPIP,
    "tcp_ack": Category.TCPIP,
    "tcp_send_ack": Category.TCPIP,
    "tcp_data_queue_ofo": Category.TCPIP,
    "tcp_retransmit_skb": Category.TCPIP,
    "tcp_clean_rtx_queue": Category.TCPIP,
    "ip_queue_xmit": Category.TCPIP,
    "ip_rcv": Category.TCPIP,
    # --- netdevice subsystem / driver -----------------------------------------
    "napi_poll": Category.NETDEV,
    "mlx5e_poll_rx_cq": Category.NETDEV,
    "mlx5e_xmit": Category.NETDEV,
    "dev_gro_receive": Category.NETDEV,
    "napi_gro_flush": Category.NETDEV,
    "gso_segment": Category.NETDEV,
    "__qdisc_run": Category.NETDEV,
    "dev_queue_xmit": Category.NETDEV,
    "net_rx_action": Category.NETDEV,
    # --- skb management --------------------------------------------------------
    "__skb_clone": Category.SKB_MGMT,
    "skb_segment": Category.SKB_MGMT,
    "skb_release_data": Category.SKB_MGMT,
    "__build_skb": Category.SKB_MGMT,
    "skb_put": Category.SKB_MGMT,
    # --- memory ------------------------------------------------------------------
    "kmem_cache_alloc_node": Category.MEMORY,
    "kmem_cache_free": Category.MEMORY,
    "__alloc_pages_nodemask": Category.MEMORY,
    "free_pcppages_bulk": Category.MEMORY,
    "page_pool_alloc_pages": Category.MEMORY,
    "page_frag_free": Category.MEMORY,
    "iommu_map_page": Category.MEMORY,
    "iommu_unmap_page": Category.MEMORY,
    # --- locks --------------------------------------------------------------------
    "_raw_spin_lock": Category.LOCK,
    "_raw_spin_lock_bh": Category.LOCK,
    "lock_sock": Category.LOCK,
    "release_sock": Category.LOCK,
    # --- scheduling ------------------------------------------------------------------
    "__schedule": Category.SCHED,
    "try_to_wake_up": Category.SCHED,
    "pick_next_task_fair": Category.SCHED,
    "dequeue_task_fair": Category.SCHED,
    "hrtimer_wakeup": Category.SCHED,
    # --- everything else ----------------------------------------------------------------
    "handle_irq_event": Category.ETC,
    "do_syscall_64": Category.ETC,
    "ktime_get": Category.ETC,
    "csum_partial": Category.ETC,
}


def categorize(op: str) -> Category:
    """Return the Table-1 category for a simulated kernel operation.

    Raises ``KeyError`` for unknown operations — every cycle the simulator
    charges must be classifiable, exactly like the paper's methodology.
    """
    try:
        return FUNCTION_CATEGORY[op]
    except KeyError:
        raise KeyError(f"unclassified kernel operation: {op!r}") from None
