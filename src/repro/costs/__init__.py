"""CPU-cycle cost model and its calibration against the paper's numbers."""

from .model import CostModel
from .calibration import default_cost_model

__all__ = ["CostModel", "default_cost_model"]
