"""Derivation of the default cost-model constants from the paper's numbers.

The paper's testbed runs 3.4GHz cores. Anchor points used for calibration:

* **All-opt single long flow (Fig 3a/3d):** one fully-busy receiver core
  sustains ~42Gbps, i.e. ~0.65 cycles/byte end-to-end on the receiver, with
  data copy ~49% of cycles at a ~49% L3 miss rate (Fig 3e). Hence receiver
  copy ≈ 0.32 cyc/B at 49% misses ⇒ ``copy_per_byte_l3_hit`` ≈ 0.12 and
  ``copy_per_byte_l3_miss`` ≈ 0.50 (0.12·0.51 + 0.50·0.49 ≈ 0.31).
* **Outcast sender (Fig 7a):** a single sender core sustains ~89Gbps
  (~0.31 cyc/B) with a warm cache and copy ~40% of cycles ⇒ warm-cache copy
  ≈ 0.12 cyc/B, consistent with the receiver-side hit cost.
* **NIC-remote NUMA (Fig 4):** ~20% throughput-per-core drop when every copy
  byte misses L3 *and* crosses the interconnect ⇒
  ``copy_per_byte_remote_numa_extra`` ≈ 0.22 on top of the miss cost.
* **No-opt configuration (Fig 3a):** with 1500B skbs and no aggregation the
  stack delivers only ~6-10Gbps-per-core, dominated by TCP/IP — per-skb
  protocol costs (~1-2k cycles/skb across tcp+ip layers) reproduce this.
* **IOMMU (Fig 12):** enabling IOMMU costs two extra per-page operations
  (map + unmap) and drags memory management to ~30% of receiver cycles,
  giving map/unmap ≈ 650/750 cycles per 4KB page.
* **Scheduling (Fig 5c):** Linux context switch + wakeup ≈ 1-2µs at 3.4GHz ⇒
  ``context_switch_cycles`` ≈ 2200, ``wakeup_cycles`` ≈ 1400.

These constants are *inputs* to the simulator; every figure-level trend has to
emerge from mechanism frequency (how many skbs, how many misses, how many
wakeups), which is what the integration tests assert.
"""

from __future__ import annotations

from .model import CostModel


def default_cost_model() -> CostModel:
    """The calibrated default cost model (see module docstring)."""
    model = CostModel()
    model.validate()
    return model


def zero_copy_cost_model() -> CostModel:
    """A what-if cost model for the zero-copy future the paper's §4 sketches.

    Models ``MSG_ZEROCOPY``/TCP-``mmap``-style stacks: payload copies are free
    (pinning and page-table costs folded into a small per-call overhead).
    Used by the ablation benchmarks.
    """
    return default_cost_model().replace(
        copy_per_byte_l3_hit=0.0,
        copy_per_byte_l3_miss=0.0,
        copy_per_byte_remote_numa_extra=0.0,
        copy_per_call=900.0,  # pin/unpin + vm bookkeeping per call
    )
