"""Per-operation CPU cycle costs.

Every constant is a *cost of one mechanism execution* (one skb through the TCP
layer, one page allocation, one context switch, ...). All of the paper's
trends must come from how often the mechanisms run and in which cache/NUMA
state — not from per-scenario tweaks. See ``calibration.py`` for how default
values are derived from the paper's own measurements.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass
class CostModel:
    """Cycle costs for each simulated kernel operation (3.4GHz core)."""

    # --- data copy (cycles per byte) --------------------------------------------
    copy_per_byte_l3_hit: float = 0.12
    copy_per_byte_l3_miss: float = 0.42
    copy_per_byte_remote_numa_extra: float = 0.10
    copy_per_call: float = 300.0

    # --- syscall / misc ------------------------------------------------------------
    syscall_cycles: float = 500.0
    irq_cycles: float = 700.0
    csum_per_byte: float = 0.0  # checksum offloaded to NIC by default

    # --- skb management ---------------------------------------------------------------
    skb_alloc_cycles: float = 380.0      # kmem_cache_alloc_node (memory)
    skb_free_cycles: float = 230.0       # kmem_cache_free (memory)
    skb_build_cycles: float = 180.0      # __build_skb (skb mgmt)
    skb_put_cycles: float = 60.0         # per-frag attach (skb mgmt)
    skb_release_cycles: float = 150.0    # skb_release_data (skb mgmt)
    skb_segment_per_seg: float = 160.0   # software GSO split (skb mgmt)
    skb_clone_cycles: float = 180.0      # retransmit clone (skb mgmt)

    # --- TCP/IP processing ---------------------------------------------------------------
    tcp_sendmsg_per_skb: float = 650.0
    tcp_write_xmit_per_skb: float = 450.0
    ip_tx_per_skb: float = 280.0
    tcp_rcv_per_skb: float = 850.0
    ip_rx_per_skb: float = 250.0
    tcp_ack_tx_cycles: float = 550.0     # build + send one ACK
    tcp_ack_rx_cycles: float = 600.0     # process one incoming ACK
    tcp_dupack_rx_extra: float = 250.0   # SACK/dupack bookkeeping on top
    tcp_ofo_queue_cycles: float = 800.0  # out-of-order segment queuing
    tcp_retransmit_cycles: float = 900.0
    tcp_clean_rtx_per_skb: float = 120.0  # freeing acked skbs off the rtx queue

    # --- netdevice subsystem / driver ----------------------------------------------------
    napi_poll_overhead: float = 800.0    # per softirq poll invocation
    driver_rx_per_frame: float = 200.0   # mlx5e_poll_rx_cq per completion
    gro_receive_per_frame: float = 340.0 # merge attempt per frame
    gro_flush_per_skb: float = 160.0
    gso_segment_per_frame: float = 90.0  # software segmentation, per produced seg
    qdisc_per_skb: float = 340.0
    driver_tx_per_skb: float = 300.0
    driver_tx_per_frame: float = 25.0    # descriptor writes when NIC lacks TSO
    lro_nic_assist_per_frame: float = 0.0  # NIC-side merge burns no host cycles
    rps_backlog_enqueue_cycles: float = 250.0  # software-steering IPI + backlog

    # --- memory management ------------------------------------------------------------------
    page_alloc_pcp_cycles: float = 80.0       # from per-core pageset
    page_alloc_global_cycles: float = 180.0   # per page via zone free list...
    page_alloc_global_batch_cycles: float = 800.0  # ...plus per rmqueue_bulk refill
    page_free_local_cycles: float = 75.0
    page_free_remote_cycles: float = 180.0    # freeing to remote NUMA node
    page_free_global_cycles: float = 140.0    # per page flushed on pcp overflow...
    page_free_global_batch_cycles: float = 800.0   # ...plus per free_pcppages_bulk call
    iommu_map_per_page: float = 330.0
    iommu_unmap_per_page: float = 370.0

    # --- locks ----------------------------------------------------------------------------------
    sock_lock_uncontended: float = 90.0
    sock_lock_contended: float = 900.0

    # --- scheduling --------------------------------------------------------------------------------
    context_switch_cycles: float = 2200.0
    wakeup_cycles: float = 1400.0
    pacer_timer_cycles: float = 1100.0   # BBR/fq pacing hrtimer fire + requeue

    def replace(self, **kwargs: float) -> "CostModel":
        """Return a copy with some constants overridden."""
        return dataclasses.replace(self, **kwargs)

    def validate(self) -> None:
        """Sanity-check that all costs are non-negative."""
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise ValueError(f"cost {field.name} must be >= 0, got {value}")
