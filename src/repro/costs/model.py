"""Per-operation CPU cycle costs.

Every constant is a *cost of one mechanism execution* (one skb through the TCP
layer, one page allocation, one context switch, ...). All of the paper's
trends must come from how often the mechanisms run and in which cache/NUMA
state — not from per-scenario tweaks. See ``calibration.py`` for how default
values are derived from the paper's own measurements.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Tuple


@dataclass
class CostModel:
    """Cycle costs for each simulated kernel operation (3.4GHz core)."""

    # --- data copy (cycles per byte) --------------------------------------------
    copy_per_byte_l3_hit: float = 0.12
    copy_per_byte_l3_miss: float = 0.42
    copy_per_byte_remote_numa_extra: float = 0.10
    copy_per_call: float = 300.0

    # --- syscall / misc ------------------------------------------------------------
    syscall_cycles: float = 500.0
    irq_cycles: float = 700.0
    csum_per_byte: float = 0.0  # checksum offloaded to NIC by default

    # --- skb management ---------------------------------------------------------------
    skb_alloc_cycles: float = 380.0      # kmem_cache_alloc_node (memory)
    skb_free_cycles: float = 230.0       # kmem_cache_free (memory)
    skb_build_cycles: float = 180.0      # __build_skb (skb mgmt)
    skb_put_cycles: float = 60.0         # per-frag attach (skb mgmt)
    skb_release_cycles: float = 150.0    # skb_release_data (skb mgmt)
    skb_segment_per_seg: float = 160.0   # software GSO split (skb mgmt)
    skb_clone_cycles: float = 180.0      # retransmit clone (skb mgmt)

    # --- TCP/IP processing ---------------------------------------------------------------
    tcp_sendmsg_per_skb: float = 650.0
    tcp_write_xmit_per_skb: float = 450.0
    ip_tx_per_skb: float = 280.0
    tcp_rcv_per_skb: float = 850.0
    ip_rx_per_skb: float = 250.0
    tcp_ack_tx_cycles: float = 550.0     # build + send one ACK
    tcp_ack_rx_cycles: float = 600.0     # process one incoming ACK
    tcp_dupack_rx_extra: float = 250.0   # SACK/dupack bookkeeping on top
    tcp_ofo_queue_cycles: float = 800.0  # out-of-order segment queuing
    tcp_retransmit_cycles: float = 900.0
    tcp_clean_rtx_per_skb: float = 120.0  # freeing acked skbs off the rtx queue

    # --- netdevice subsystem / driver ----------------------------------------------------
    napi_poll_overhead: float = 800.0    # per softirq poll invocation
    driver_rx_per_frame: float = 200.0   # mlx5e_poll_rx_cq per completion
    gro_receive_per_frame: float = 340.0 # merge attempt per frame
    gro_flush_per_skb: float = 160.0
    gso_segment_per_frame: float = 90.0  # software segmentation, per produced seg
    qdisc_per_skb: float = 340.0
    driver_tx_per_skb: float = 300.0
    driver_tx_per_frame: float = 25.0    # descriptor writes when NIC lacks TSO
    lro_nic_assist_per_frame: float = 0.0  # NIC-side merge burns no host cycles
    rps_backlog_enqueue_cycles: float = 250.0  # software-steering IPI + backlog

    # --- memory management ------------------------------------------------------------------
    page_alloc_pcp_cycles: float = 80.0       # from per-core pageset
    page_alloc_global_cycles: float = 180.0   # per page via zone free list...
    page_alloc_global_batch_cycles: float = 800.0  # ...plus per rmqueue_bulk refill
    page_free_local_cycles: float = 75.0
    page_free_remote_cycles: float = 180.0    # freeing to remote NUMA node
    page_free_global_cycles: float = 140.0    # per page flushed on pcp overflow...
    page_free_global_batch_cycles: float = 800.0   # ...plus per free_pcppages_bulk call
    iommu_map_per_page: float = 330.0
    iommu_unmap_per_page: float = 370.0

    # --- locks ----------------------------------------------------------------------------------
    sock_lock_uncontended: float = 90.0
    sock_lock_contended: float = 900.0

    # --- scheduling --------------------------------------------------------------------------------
    context_switch_cycles: float = 2200.0
    wakeup_cycles: float = 1400.0
    pacer_timer_cycles: float = 1100.0   # BBR/fq pacing hrtimer fire + requeue

    def replace(self, **kwargs: float) -> "CostModel":
        """Return a copy with some constants overridden."""
        return dataclasses.replace(self, **kwargs)

    def validate(self) -> None:
        """Sanity-check that all costs are non-negative."""
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise ValueError(f"cost {field.name} must be >= 0, got {value}")

    def tables(self) -> "CostTables":
        """Precomputed charge tables for this model (built once, cached).

        The cache lives outside the dataclass fields, so ``replace()`` and
        ``validate()`` are unaffected and a modified copy gets fresh tables.
        """
        tables = self.__dict__.get("_tables")
        if tables is None:
            tables = self.__dict__["_tables"] = CostTables(self)
        return tables


#: A reusable batch of charge items: ``(op, cycles)`` pairs.
ChargeTuple = Tuple[Tuple[str, float], ...]


class CostTables:
    """Memoized per-(operation, batch-size) charge-item tuples.

    The hot producers (TCP endpoint, GRO, NAPI, NIC) previously rebuilt the
    same small ``(op, cycles)`` lists — recomputing the same float products —
    for every skb. These tables compute each distinct batch exactly once and
    hand out shared immutable tuples. Every cached value is produced by the
    *same arithmetic expression on the same inputs* as the inline code it
    replaces, so charges are bit-identical and the golden digests hold.

    Callers must only ``extend``/iterate the returned tuples, never mutate.
    """

    def __init__(self, costs: CostModel) -> None:
        self.costs = costs
        # --- fixed singletons / pairs (receive path) ----------------------
        self.rx_skb_prefix: ChargeTuple = (
            ("ip_rcv", costs.ip_rx_per_skb),
            ("tcp_rcv_established", costs.tcp_rcv_per_skb),
        )
        self.ack_tx_pair: ChargeTuple = (
            ("tcp_send_ack", costs.tcp_ack_tx_cycles),
            ("dev_queue_xmit", costs.qdisc_per_skb * 0.3),
        )
        self.ack_rx_item = ("tcp_ack", costs.tcp_ack_rx_cycles)
        self.dupack_extra_item = ("tcp_ack", costs.tcp_dupack_rx_extra)
        self.ofo_queue_item = ("tcp_data_queue_ofo", costs.tcp_ofo_queue_cycles)
        self.skb_free_pair: ChargeTuple = (
            ("skb_release_data", costs.skb_release_cycles),
            ("kmem_cache_free", costs.skb_free_cycles),
        )
        self.skb_free_item = ("kmem_cache_free", costs.skb_free_cycles)
        self.syscall_item = ("do_syscall_64", costs.syscall_cycles)
        # --- GRO ----------------------------------------------------------
        self.gro_receive_item = ("dev_gro_receive", costs.gro_receive_per_frame)
        self.gro_merge_pair: ChargeTuple = (
            ("kmem_cache_free", costs.skb_free_cycles),
            ("skb_put", costs.skb_put_cycles),
        )
        # --- memo dictionaries (keyed by batch size) ----------------------
        self._segmentation: dict = {}
        self._tx_tail: dict = {}
        self._clean_rtx: dict = {}
        self._gro_flush: dict = {}
        self._napi_head: dict = {}
        self._sendmsg_skbs: dict = {}
        self._copy_per_byte: dict = {}

    def segmentation(self, payload_bytes: int, mss: int, tso: bool):
        """Memoized :func:`repro.kernel.gso.segmentation_charges`."""
        key = (payload_bytes, mss, tso)
        entry = self._segmentation.get(key)
        if entry is None:
            from ..kernel.gso import segmentation_charges

            items, nframes = segmentation_charges(payload_bytes, mss, tso, self.costs)
            entry = self._segmentation[key] = (tuple(items), nframes)
        return entry

    def tx_tail(self, nskbs: int) -> ChargeTuple:
        """Per-burst transmit charges below TCP (one entry per layer)."""
        entry = self._tx_tail.get(nskbs)
        if entry is None:
            costs = self.costs
            entry = self._tx_tail[nskbs] = (
                ("tcp_write_xmit", costs.tcp_write_xmit_per_skb * nskbs),
                ("ip_queue_xmit", costs.ip_tx_per_skb * nskbs),
                ("__qdisc_run", costs.qdisc_per_skb * nskbs),
                ("mlx5e_xmit", costs.driver_tx_per_skb * nskbs),
            )
        return entry

    def clean_rtx(self, nskbs: int) -> ChargeTuple:
        """Freeing ``nskbs`` acked skbs off the retransmit queue."""
        entry = self._clean_rtx.get(nskbs)
        if entry is None:
            costs = self.costs
            entry = self._clean_rtx[nskbs] = (
                ("tcp_clean_rtx_queue", costs.tcp_clean_rtx_per_skb * nskbs),
                ("skb_release_data", costs.skb_release_cycles * nskbs),
                ("kmem_cache_free", costs.skb_free_cycles * nskbs),
            )
        return entry

    def gro_flush(self, nskbs: int) -> Tuple[str, float]:
        """Flushing ``nskbs`` held skbs up the stack."""
        entry = self._gro_flush.get(nskbs)
        if entry is None:
            entry = self._gro_flush[nskbs] = (
                "napi_gro_flush",
                self.costs.gro_flush_per_skb * nskbs,
            )
        return entry

    def napi_head(self, nframes: int, nrecords: int) -> ChargeTuple:
        """Fixed head of a NAPI poll job: poll + driver + skb allocation."""
        key = (nframes, nrecords)
        entry = self._napi_head.get(key)
        if entry is None:
            costs = self.costs
            entry = self._napi_head[key] = (
                ("napi_poll", costs.napi_poll_overhead),
                ("mlx5e_poll_rx_cq", costs.driver_rx_per_frame * nframes),
                ("kmem_cache_alloc_node", costs.skb_alloc_cycles * nrecords),
                ("__build_skb", costs.skb_build_cycles * nrecords),
            )
        return entry

    def sendmsg_skbs(self, nskbs: int) -> ChargeTuple:
        """Per-sendmsg skb allocation + TCP bookkeeping for ``nskbs`` skbs."""
        entry = self._sendmsg_skbs.get(nskbs)
        if entry is None:
            costs = self.costs
            entry = self._sendmsg_skbs[nskbs] = (
                ("kmem_cache_alloc_node", costs.skb_alloc_cycles * nskbs),
                ("__build_skb", costs.skb_build_cycles * nskbs),
                ("tcp_sendmsg_locked", costs.tcp_sendmsg_per_skb * nskbs),
            )
        return entry

    def copy_per_byte(self, miss_fraction: float) -> float:
        """L3 hit/miss blended copy cost, memoized by miss fraction.

        Steady-state traffic sees a handful of distinct fractions (mostly
        0.0 and 1.0), so the dict stays tiny while skipping two multiplies
        and an add per copy.
        """
        per_byte = self._copy_per_byte.get(miss_fraction)
        if per_byte is None:
            costs = self.costs
            per_byte = self._copy_per_byte[miss_fraction] = (
                costs.copy_per_byte_l3_hit * (1 - miss_fraction)
                + costs.copy_per_byte_l3_miss * miss_fraction
            )
        return per_byte
