"""Generators reproducing every table and figure of the paper's evaluation.

Each ``figN`` module exposes functions named after the paper's panels
(``fig3a()``, ``fig3b()``, ...) returning :class:`repro.core.report.Table`
objects whose rows are the same series the paper plots. ``benchmarks/`` runs
one pytest-benchmark per panel, and EXPERIMENTS.md records paper-vs-measured.
"""

from . import fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13
from . import tables

ALL_FIGURES = {
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "tables": tables,
}

__all__ = ["ALL_FIGURES"] + list(ALL_FIGURES)
