"""Shared plumbing for the figure generators.

Simulated durations are short (milliseconds) because steady-state rates
converge quickly; warmups are sized per scenario so receive-buffer autotuning
and queue fill transients complete before measurement (incast with many
autotuned flows needs the longest warmup).

All figure experiments flow through :func:`run_all`, which hands the batch to
:func:`repro.core.runner.run_many`. The module-level runtime (set by
``repro figure --jobs/--cache-dir`` via :func:`configure`) decides how many
worker processes to use and whether results come from / go to the persistent
result cache; the default (one process, no cache) matches the historical
sequential behaviour exactly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..config import ExperimentConfig, TrafficPattern
from ..core.cache import ResultCache
from ..core.results import ExperimentResult
from ..core.runner import RunnerStats, run_many
from ..units import msec

#: Measurement window used by all figures.
DURATION_NS = msec(8)

#: Warmup per traffic pattern (queue-fill transients differ).
WARMUP_NS = {
    TrafficPattern.SINGLE: msec(10),
    TrafficPattern.ONE_TO_ONE: msec(12),
    TrafficPattern.INCAST: msec(40),
    TrafficPattern.OUTCAST: msec(12),
    TrafficPattern.ALL_TO_ALL: msec(12),
    TrafficPattern.RPC_INCAST: msec(12),
    TrafficPattern.MIXED: msec(12),
}

#: Process-pool width for figure batches (1 = in-process, None = per-CPU).
_JOBS: Optional[int] = 1
#: Shared result cache, or None to always simulate.
_CACHE: Optional[ResultCache] = None
#: Run every experiment with the conservation auditor (disables the cache).
_AUDIT: bool = False
#: Wire simulation mode: frame-train fast path (default) or legacy per-event
#: replay (``repro ... --no-train``). Results are byte-identical either way;
#: the flag exists as an escape hatch and for the bench cross-check.
_FRAME_TRAINS: bool = True
#: Steady-state express lane (``repro ... --no-express`` disables). Like
#: ``_FRAME_TRAINS``: byte-identical either way, escape hatch + bench knob.
_EXPRESS: bool = True
#: Run every experiment with per-stage latency tracing (``repro trace``).
#: Part of the config (and hence the cache key), unlike ``_FRAME_TRAINS``.
_TRACE: bool = False
#: Counters accumulated across every figure run since the last reset.
STATS = RunnerStats()
#: Audit reports collected from audited figure runs since the last configure.
AUDIT_REPORTS: List = []
#: Trace reports collected from traced figure runs since the last configure.
TRACE_REPORTS: List = []


def configure(
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    audit: bool = False,
    frame_trains: bool = True,
    trace: bool = False,
    express: bool = True,
) -> None:
    """Set the runner used by every subsequent figure generation."""
    global _JOBS, _CACHE, _AUDIT, _FRAME_TRAINS, _TRACE, _EXPRESS
    _JOBS = jobs
    _CACHE = cache
    _AUDIT = audit
    _FRAME_TRAINS = frame_trains
    _TRACE = trace
    _EXPRESS = express
    AUDIT_REPORTS.clear()
    TRACE_REPORTS.clear()


def runtime() -> tuple:
    """The currently configured ``(jobs, cache, audit)`` triple."""
    return _JOBS, _CACHE, _AUDIT


def prepare(
    config: ExperimentConfig, warmup_ns: Optional[int] = None
) -> ExperimentConfig:
    """Apply the figure-standard duration/warmup (and wire mode) to
    ``config``."""
    if warmup_ns is None:
        warmup_ns = WARMUP_NS[config.pattern]
    return config.replace(
        duration_ns=DURATION_NS, warmup_ns=warmup_ns,
        frame_trains=_FRAME_TRAINS, trace=_TRACE, express=_EXPRESS,
    )


def run_all(
    configs: Iterable[ExperimentConfig], warmup_ns: Optional[int] = None
) -> List[ExperimentResult]:
    """Run a figure's whole batch of configs with figure-standard windows.

    Results come back in input order; independent configs fan out across the
    configured worker pool and are served from the result cache when warm.
    """
    prepared = [prepare(config, warmup_ns) for config in configs]
    results = run_many(prepared, jobs=_JOBS, cache=_CACHE, stats=STATS, audit=_AUDIT)
    if _AUDIT:
        AUDIT_REPORTS.extend(
            result.audit_report for result in results
            if result.audit_report is not None
        )
    if _TRACE:
        TRACE_REPORTS.extend(
            result.trace for result in results if result.trace is not None
        )
    return results


def run(config: ExperimentConfig, warmup_ns: Optional[int] = None) -> ExperimentResult:
    """Run one config with figure-standard duration/warmup."""
    return run_all([config], warmup_ns=warmup_ns)[0]


def pct(fraction: float) -> str:
    return f"{100 * fraction:.0f}%"
