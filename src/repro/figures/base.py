"""Shared plumbing for the figure generators.

Simulated durations are short (milliseconds) because steady-state rates
converge quickly; warmups are sized per scenario so receive-buffer autotuning
and queue fill transients complete before measurement (incast with many
autotuned flows needs the longest warmup).
"""

from __future__ import annotations

from typing import Optional

from ..config import ExperimentConfig, TrafficPattern
from ..core.experiment import Experiment
from ..core.results import ExperimentResult
from ..units import msec

#: Measurement window used by all figures.
DURATION_NS = msec(8)

#: Warmup per traffic pattern (queue-fill transients differ).
WARMUP_NS = {
    TrafficPattern.SINGLE: msec(10),
    TrafficPattern.ONE_TO_ONE: msec(12),
    TrafficPattern.INCAST: msec(40),
    TrafficPattern.OUTCAST: msec(12),
    TrafficPattern.ALL_TO_ALL: msec(12),
    TrafficPattern.RPC_INCAST: msec(12),
    TrafficPattern.MIXED: msec(12),
}


def run(config: ExperimentConfig, warmup_ns: Optional[int] = None) -> ExperimentResult:
    """Run ``config`` with figure-standard duration/warmup."""
    if warmup_ns is None:
        warmup_ns = WARMUP_NS[config.pattern]
    return Experiment(
        config.replace(duration_ns=DURATION_NS, warmup_ns=warmup_ns)
    ).run()


def pct(fraction: float) -> str:
    return f"{100 * fraction:.0f}%"
