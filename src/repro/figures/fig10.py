"""Fig 10: short-flow RPC workloads, 16:1 incast, 4KB..64KB messages (§3.7).

Sixteen ping-pong clients drive one server application thread; the server
core is the bottleneck, so the metric divides by *server-side* utilization.
For tiny RPCs data copy stops being the dominant CPU consumer and DCA/NUMA
placement stops mattering (panel c).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import (
    ExperimentConfig,
    NumaPolicy,
    OptimizationConfig,
    TrafficPattern,
    WorkloadConfig,
)
from ..core.report import Table, render_breakdown_table
from ..core.results import ExperimentResult
from ..units import kb
from .base import pct, run_all

RPC_SIZES_KB = (4, 16, 32, 64)
NUM_CLIENTS = 16


def _config(
    size_kb: int,
    opts: OptimizationConfig = None,
    numa: NumaPolicy = NumaPolicy.NIC_LOCAL_FIRST,
) -> ExperimentConfig:
    return ExperimentConfig(
        pattern=TrafficPattern.RPC_INCAST,
        num_flows=NUM_CLIENTS,
        opts=opts or OptimizationConfig.all(),
        workload=WorkloadConfig(rpc_size_bytes=kb(size_kb)),
        numa_policy=numa,
    )


def _all_opt_results(sizes=RPC_SIZES_KB) -> List[Tuple[int, ExperimentResult]]:
    results = run_all([_config(s) for s in sizes])
    return list(zip(sizes, results))


def fig10a(sizes: Tuple[int, ...] = RPC_SIZES_KB) -> Table:
    """Throughput-per-server-core per optimization column and RPC size."""
    table = Table(
        "Fig 10a: 16:1 RPC throughput-per-server-core (Gbps) vs RPC size",
        ["rpc_size_kb", "config", "thpt_per_server_core_gbps", "total_thpt_gbps"],
    )
    cells = [
        (size, label, _config(size, opts))
        for size in sizes
        for label, opts in OptimizationConfig.incremental_ladder()
    ]
    results = run_all([config for _, _, config in cells])
    for (size, label, _), result in zip(cells, results):
        table.add_row(
            size,
            label,
            result.throughput_per_receiver_core_gbps,
            result.total_throughput_gbps,
        )
    return table


def fig10b(results: List[Tuple[int, ExperimentResult]] = None) -> Table:
    """Server-side CPU breakdown vs RPC size (all optimizations on)."""
    results = results or _all_opt_results()
    return render_breakdown_table(
        "Fig 10b: RPC server CPU breakdown vs RPC size",
        [(f"{size}KB", r.receiver_breakdown) for size, r in results],
    )


def fig10c(size_kb: int = 4) -> Table:
    """NIC-local vs NIC-remote server placement for small RPCs."""
    table = Table(
        "Fig 10c: 4KB RPCs, server on NIC-local vs NIC-remote NUMA node",
        ["placement", "thpt_per_server_core_gbps", "server_miss_rate"],
    )
    placements = (
        ("NIC-local NUMA", NumaPolicy.NIC_LOCAL_FIRST),
        ("NIC-remote NUMA", NumaPolicy.NIC_REMOTE),
    )
    results = run_all([_config(size_kb, numa=numa) for _, numa in placements])
    for (label, _), result in zip(placements, results):
        table.add_row(
            label,
            result.throughput_per_receiver_core_gbps,
            pct(result.receiver_cache_miss_rate),
        )
    return table


def generate_all() -> Dict[str, Table]:
    shared = _all_opt_results()
    return {"fig10a": fig10a(), "fig10b": fig10b(shared), "fig10c": fig10c()}


if __name__ == "__main__":  # pragma: no cover
    for table in generate_all().values():
        print(table.render())
        print()
