"""Fig 11: mixing one long flow with N short RPC flows on a single core (§3.7).

Both the long flow's and the short flows' throughput collapse when mixed on
the same core, relative to running each in isolation — the paper's argument
for application-aware core scheduling.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import ExperimentConfig, TrafficPattern, WorkloadConfig
from ..core.report import Table, render_breakdown_table
from ..core.results import ExperimentResult
from .base import run_all

SHORT_FLOW_COUNTS = (0, 1, 4, 16)


def _config(num_short: int, include_long: bool = True) -> ExperimentConfig:
    return ExperimentConfig(
        pattern=TrafficPattern.MIXED,
        workload=WorkloadConfig(
            num_rpc_flows=num_short, include_long_flow=include_long
        ),
    )


def _results(counts=SHORT_FLOW_COUNTS) -> List[Tuple[int, ExperimentResult]]:
    results = run_all([_config(n) for n in counts])
    return list(zip(counts, results))


def fig11a(results: List[Tuple[int, ExperimentResult]] = None) -> Table:
    results = results or _results()
    table = Table(
        "Fig 11a: long flow mixed with N short flows on one core (Gbps)",
        ["short_flows", "thpt_per_core_gbps", "long_gbps", "short_gbps"],
    )
    for n, result in results:
        tags = result.throughput_by_tag_gbps
        table.add_row(
            n,
            result.throughput_per_core_gbps,
            tags.get("long", 0.0),
            tags.get("short", 0.0),
        )
    return table


def fig11b(results: List[Tuple[int, ExperimentResult]] = None) -> Table:
    results = results or _results()
    return render_breakdown_table(
        "Fig 11b: server CPU breakdown vs colocated short flows",
        [(f"{n} short flows", r.receiver_breakdown) for n, r in results],
    )


def isolation_comparison(num_short: int = 16) -> Table:
    """The §3.7 headline: long/short throughput in isolation vs mixed."""
    long_alone, short_alone, mixed = run_all([
        _config(0),
        _config(num_short, include_long=False),
        _config(num_short),
    ])
    table = Table(
        "Fig 11 (text): isolation vs mixing on one core (Gbps)",
        ["workload", "long_gbps", "short_gbps"],
    )
    table.add_row(
        "isolated", long_alone.throughput_by_tag_gbps.get("long", 0.0),
        short_alone.throughput_by_tag_gbps.get("short", 0.0),
    )
    table.add_row(
        f"mixed (1 long + {num_short} short)",
        mixed.throughput_by_tag_gbps.get("long", 0.0),
        mixed.throughput_by_tag_gbps.get("short", 0.0),
    )
    return table


def generate_all() -> Dict[str, Table]:
    shared = _results()
    return {
        "fig11a": fig11a(shared),
        "fig11b": fig11b(shared),
        "fig11_isolation": isolation_comparison(),
    }


if __name__ == "__main__":  # pragma: no cover
    for table in generate_all().values():
        print(table.render())
        print()
