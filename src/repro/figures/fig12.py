"""Fig 12: impact of DCA (DDIO) and the IOMMU on single-flow performance
(§3.8, §3.9).

Disabling DCA forces every receiver copy to miss L3; enabling the IOMMU adds
two per-page operations (map on allocation, unmap after DMA) that blow up the
memory-management share of CPU at both ends.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import ExperimentConfig, HostConfig, OptimizationConfig
from ..core.report import Table, render_breakdown_table
from ..core.results import ExperimentResult
from .base import pct, run_all

CONFIGS: List[Tuple[str, HostConfig]] = [
    ("Default", HostConfig()),
    ("DCA Disabled", HostConfig(dca_enabled=False)),
    ("IOMMU Enabled", HostConfig(iommu_enabled=True)),
]


def _results() -> List[Tuple[str, ExperimentResult]]:
    results = run_all([ExperimentConfig(host=host) for _, host in CONFIGS])
    return [(label, result) for (label, _), result in zip(CONFIGS, results)]


def fig12a() -> Table:
    """Throughput-per-core per optimization ladder for each host config."""
    table = Table(
        "Fig 12a: throughput-per-core (Gbps): default vs DCA off vs IOMMU on",
        ["host_config", "opt_config", "thpt_per_core_gbps", "receiver_miss_rate"],
    )
    cells = [
        (host_label, opt_label, ExperimentConfig(host=host, opts=opts))
        for host_label, host in CONFIGS
        for opt_label, opts in OptimizationConfig.incremental_ladder()
    ]
    results = run_all([config for _, _, config in cells])
    for (host_label, opt_label, _), result in zip(cells, results):
        table.add_row(
            host_label,
            opt_label,
            result.throughput_per_core_gbps,
            pct(result.receiver_cache_miss_rate),
        )
    return table


def fig12b(results: List[Tuple[str, ExperimentResult]] = None) -> Table:
    results = results or _results()
    return render_breakdown_table(
        "Fig 12b: sender CPU breakdown",
        [(label, r.sender_breakdown) for label, r in results],
    )


def fig12c(results: List[Tuple[str, ExperimentResult]] = None) -> Table:
    results = results or _results()
    return render_breakdown_table(
        "Fig 12c: receiver CPU breakdown",
        [(label, r.receiver_breakdown) for label, r in results],
    )


def generate_all() -> Dict[str, Table]:
    shared = _results()
    return {"fig12a": fig12a(), "fig12b": fig12b(shared), "fig12c": fig12c(shared)}


if __name__ == "__main__":  # pragma: no cover
    for table in generate_all().values():
        print(table.render())
        print()
