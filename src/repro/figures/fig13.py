"""Fig 13: impact of the congestion control protocol (§3.10).

CUBIC, BBR and DCTCP are all sender-driven, so the receiver — the actual
bottleneck — behaves identically and throughput-per-core barely moves. BBR's
signature is extra sender-side scheduling from fq pacing-timer wakeups.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import CongestionControl, ExperimentConfig, LinkConfig, TcpConfig
from ..core.report import Table, render_breakdown_table
from ..core.results import ExperimentResult
from .base import run_all

PROTOCOLS = (
    CongestionControl.CUBIC,
    CongestionControl.BBR,
    CongestionControl.DCTCP,
)


def _config(cc: CongestionControl) -> ExperimentConfig:
    link = LinkConfig()
    if cc is CongestionControl.DCTCP:
        # DCTCP needs an ECN-marking switch in the path.
        link = LinkConfig(has_switch=True)
    return ExperimentConfig(tcp=TcpConfig(congestion_control=cc), link=link)


def _results() -> List[Tuple[str, ExperimentResult]]:
    results = run_all([_config(cc) for cc in PROTOCOLS])
    return [(cc.value, result) for cc, result in zip(PROTOCOLS, results)]


def fig13a(results: List[Tuple[str, ExperimentResult]] = None) -> Table:
    results = results or _results()
    table = Table(
        "Fig 13a: throughput-per-core (Gbps) per congestion control",
        ["protocol", "thpt_per_core_gbps", "total_thpt_gbps"],
    )
    for label, result in results:
        table.add_row(
            label, result.throughput_per_core_gbps, result.total_throughput_gbps
        )
    return table


def fig13b(results: List[Tuple[str, ExperimentResult]] = None) -> Table:
    results = results or _results()
    return render_breakdown_table(
        "Fig 13b: sender CPU breakdown per congestion control",
        [(label, r.sender_breakdown) for label, r in results],
    )


def fig13c(results: List[Tuple[str, ExperimentResult]] = None) -> Table:
    results = results or _results()
    return render_breakdown_table(
        "Fig 13c: receiver CPU breakdown per congestion control",
        [(label, r.receiver_breakdown) for label, r in results],
    )


def generate_all() -> Dict[str, Table]:
    shared = _results()
    return {
        "fig13a": fig13a(shared),
        "fig13b": fig13b(shared),
        "fig13c": fig13c(shared),
    }


if __name__ == "__main__":  # pragma: no cover
    for table in generate_all().values():
        print(table.render())
        print()
