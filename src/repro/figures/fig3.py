"""Fig 3: Linux network stack performance for a single flow (§3.1).

Panels:
 a) throughput-per-core for each incremental optimization column,
 b) sender/receiver CPU utilization per column,
 c) sender CPU breakdown per column,
 d) receiver CPU breakdown per column,
 e) throughput & L3 miss rate vs NIC ring size x TCP Rx buffer size,
 f) NAPI-to-copy latency (avg/p99) vs TCP Rx buffer size.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import ExperimentConfig, NicConfig, OptimizationConfig, TcpConfig
from ..core.report import Table, render_breakdown_table
from ..core.results import ExperimentResult
from ..units import kb
from .base import pct, run_all

#: Fig 3e sweep axes (paper: ring 128..8192, buffers 3200KB/6400KB/Default).
RING_SIZES = (128, 256, 512, 1024, 2048, 4096, 8192)
RX_BUFFERS_KB = (3200, 6400)
#: Fig 3f sweep (paper: 100..12800 KB).
LATENCY_BUFFERS_KB = (100, 200, 400, 800, 1600, 3200, 6400, 12800)


def ladder_configs() -> List[Tuple[str, ExperimentConfig]]:
    """The Fig-3a incremental-optimization ladder as (label, config) pairs."""
    return [
        (label, ExperimentConfig(opts=opts))
        for label, opts in OptimizationConfig.incremental_ladder()
    ]


def _ladder_results() -> List[Tuple[str, ExperimentResult]]:
    ladder = ladder_configs()
    results = run_all([config for _, config in ladder])
    return [(label, result) for (label, _), result in zip(ladder, results)]


def fig3a(results: List[Tuple[str, ExperimentResult]] = None) -> Table:
    """Throughput-per-core per optimization column."""
    results = results or _ladder_results()
    table = Table(
        "Fig 3a: single flow throughput-per-core (Gbps) vs optimizations",
        ["config", "thpt_per_core_gbps", "total_thpt_gbps"],
    )
    for label, result in results:
        table.add_row(
            label, result.throughput_per_core_gbps, result.total_throughput_gbps
        )
    return table


def fig3b(results: List[Tuple[str, ExperimentResult]] = None) -> Table:
    """Sender and receiver CPU utilization (%) per optimization column."""
    results = results or _ladder_results()
    table = Table(
        "Fig 3b: single flow CPU utilization (%)",
        ["config", "sender_util_pct", "receiver_util_pct", "total_thpt_gbps"],
    )
    for label, result in results:
        table.add_row(
            label,
            100 * result.sender_utilization_cores,
            100 * result.receiver_utilization_cores,
            result.total_throughput_gbps,
        )
    return table


def fig3c(results: List[Tuple[str, ExperimentResult]] = None) -> Table:
    """Sender-side CPU breakdown per optimization column."""
    results = results or _ladder_results()
    return render_breakdown_table(
        "Fig 3c: sender CPU breakdown",
        [(label, result.sender_breakdown) for label, result in results],
    )


def fig3d(results: List[Tuple[str, ExperimentResult]] = None) -> Table:
    """Receiver-side CPU breakdown per optimization column."""
    results = results or _ladder_results()
    return render_breakdown_table(
        "Fig 3d: receiver CPU breakdown",
        [(label, result.receiver_breakdown) for label, result in results],
    )


def fig3e(
    ring_sizes: Tuple[int, ...] = RING_SIZES,
    buffers_kb: Tuple[int, ...] = RX_BUFFERS_KB,
) -> Table:
    """Throughput & cache miss rate vs ring size x Rx buffer (static buffers
    plus the autotuned "Default" series)."""
    table = Table(
        "Fig 3e: throughput (Gbps) and L3 miss rate vs NIC ring size and Rx buffer",
        ["ring_size", "rx_buffer", "thpt_gbps", "miss_rate"],
    )
    cells: List[Tuple[int, str, ExperimentConfig]] = []
    for ring in ring_sizes:
        for buffer_kb in buffers_kb:
            cells.append((
                ring,
                f"{buffer_kb}KB",
                ExperimentConfig(
                    nic=NicConfig(rx_descriptors=ring),
                    tcp=TcpConfig(
                        rx_buffer_bytes=kb(buffer_kb), autotune_rx_buffer=False
                    ),
                ),
            ))
        cells.append((ring, "Default", ExperimentConfig(nic=NicConfig(rx_descriptors=ring))))
    results = run_all([config for _, _, config in cells])
    for (ring, label, _), result in zip(cells, results):
        table.add_row(
            ring,
            label,
            result.total_throughput_gbps,
            pct(result.receiver_cache_miss_rate),
        )
    return table


def fig3f(buffers_kb: Tuple[int, ...] = LATENCY_BUFFERS_KB) -> Table:
    """NAPI-to-start-of-copy latency vs TCP Rx buffer size."""
    table = Table(
        "Fig 3f: stack latency from NAPI to data copy vs TCP Rx buffer size",
        ["rx_buffer_kb", "avg_latency_us", "p99_latency_us", "thpt_gbps"],
    )
    results = run_all([
        ExperimentConfig(
            tcp=TcpConfig(rx_buffer_bytes=kb(buffer_kb), autotune_rx_buffer=False)
        )
        for buffer_kb in buffers_kb
    ])
    for buffer_kb, result in zip(buffers_kb, results):
        table.add_row(
            buffer_kb,
            result.copy_latency.avg_ns / 1000,
            result.copy_latency.p99_ns / 1000,
            result.total_throughput_gbps,
        )
    return table


def generate_all() -> Dict[str, Table]:
    """All Fig-3 panels (sharing one ladder run for a/b/c/d)."""
    ladder = _ladder_results()
    return {
        "fig3a": fig3a(ladder),
        "fig3b": fig3b(ladder),
        "fig3c": fig3c(ladder),
        "fig3d": fig3d(ladder),
        "fig3e": fig3e(),
        "fig3f": fig3f(),
    }


if __name__ == "__main__":  # pragma: no cover
    for table in generate_all().values():
        print(table.render())
        print()
