"""Fig 4: single flow with the application on a NIC-remote NUMA node (§3.1).

DCA cannot push DMA'd frames into a remote node's L3, so every copy byte
misses; throughput-per-core drops ~20% relative to the NIC-local placement.
"""

from __future__ import annotations

from typing import Dict

from ..config import ExperimentConfig, NumaPolicy
from ..core.report import Table
from ..core.results import ExperimentResult
from .base import pct, run_all


def results() -> Dict[str, ExperimentResult]:
    local, remote = run_all([
        ExperimentConfig(),
        ExperimentConfig(numa_policy=NumaPolicy.NIC_REMOTE),
    ])
    return {"NIC-local NUMA": local, "NIC-remote NUMA": remote}


def fig4(data: Dict[str, ExperimentResult] = None) -> Table:
    data = data or results()
    table = Table(
        "Fig 4: single flow on NIC-local vs NIC-remote NUMA node",
        ["placement", "thpt_per_core_gbps", "receiver_miss_rate"],
    )
    for label, result in data.items():
        table.add_row(
            label, result.throughput_per_core_gbps, pct(result.receiver_cache_miss_rate)
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(fig4().render())
