"""Fig 5: one-to-one traffic pattern, 1..24 flows (§3.2).

The network saturates around 8 flows; throughput-per-core keeps dropping as
flows are added because every optimization loses effectiveness (aRFS cache
locality, GRO batching) and scheduling overheads rise while memory-management
overheads fall (pageset recycling).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import ExperimentConfig, OptimizationConfig, TrafficPattern
from ..core.report import Table, render_breakdown_table
from ..core.results import ExperimentResult
from .base import run_all

FLOW_COUNTS = (1, 8, 16, 24)


def _config(flows: int, opts: OptimizationConfig) -> ExperimentConfig:
    return ExperimentConfig(
        pattern=TrafficPattern.ONE_TO_ONE, num_flows=flows, opts=opts
    )


def _all_opt_results(flows=FLOW_COUNTS) -> List[Tuple[int, ExperimentResult]]:
    results = run_all([_config(n, OptimizationConfig.all()) for n in flows])
    return list(zip(flows, results))


def fig5a(flows: Tuple[int, ...] = FLOW_COUNTS) -> Table:
    """Throughput-per-core per optimization column and flow count."""
    table = Table(
        "Fig 5a: one-to-one throughput-per-core (Gbps)",
        ["flows", "config", "thpt_per_core_gbps", "total_thpt_gbps"],
    )
    cells = [
        (n, label, _config(n, opts))
        for n in flows
        for label, opts in OptimizationConfig.incremental_ladder()
    ]
    results = run_all([config for _, _, config in cells])
    for (n, label, _), result in zip(cells, results):
        table.add_row(
            n, label, result.throughput_per_core_gbps, result.total_throughput_gbps
        )
    return table


def fig5b(results: List[Tuple[int, ExperimentResult]] = None) -> Table:
    """Sender CPU breakdown vs number of flows (all optimizations on)."""
    results = results or _all_opt_results()
    return render_breakdown_table(
        "Fig 5b: one-to-one sender CPU breakdown",
        [(f"{n} flows", r.sender_breakdown) for n, r in results],
    )


def fig5c(results: List[Tuple[int, ExperimentResult]] = None) -> Table:
    """Receiver CPU breakdown vs number of flows (all optimizations on)."""
    results = results or _all_opt_results()
    return render_breakdown_table(
        "Fig 5c: one-to-one receiver CPU breakdown",
        [(f"{n} flows", r.receiver_breakdown) for n, r in results],
    )


def generate_all() -> Dict[str, Table]:
    shared = _all_opt_results()
    return {"fig5a": fig5a(), "fig5b": fig5b(shared), "fig5c": fig5c(shared)}


if __name__ == "__main__":  # pragma: no cover
    for table in generate_all().values():
        print(table.render())
        print()
