"""Fig 6: incast traffic pattern, 1..24 flows into one receiver core (§3.3).

Multiple flows share the receiver core's L3 slice, so per-byte copy costs
grow with the number of flows (cache miss rate climbs); the CPU breakdown
itself barely changes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import ExperimentConfig, OptimizationConfig, TrafficPattern
from ..core.report import Table, render_breakdown_table
from ..core.results import ExperimentResult
from .base import pct, run_all

FLOW_COUNTS = (1, 8, 16, 24)


def _config(flows: int, opts: OptimizationConfig = None) -> ExperimentConfig:
    return ExperimentConfig(
        pattern=TrafficPattern.INCAST,
        num_flows=flows,
        opts=opts or OptimizationConfig.all(),
    )


def _all_opt_results(flows=FLOW_COUNTS) -> List[Tuple[int, ExperimentResult]]:
    results = run_all([_config(n) for n in flows])
    return list(zip(flows, results))


def fig6a(flows: Tuple[int, ...] = FLOW_COUNTS) -> Table:
    """Throughput-per-core per optimization column and flow count."""
    table = Table(
        "Fig 6a: incast throughput-per-core (Gbps)",
        ["flows", "config", "thpt_per_core_gbps", "total_thpt_gbps"],
    )
    cells = [
        (n, label, _config(n, opts))
        for n in flows
        for label, opts in OptimizationConfig.incremental_ladder()
    ]
    results = run_all([config for _, _, config in cells])
    for (n, label, _), result in zip(cells, results):
        table.add_row(
            n, label, result.throughput_per_core_gbps, result.total_throughput_gbps
        )
    return table


def fig6b(results: List[Tuple[int, ExperimentResult]] = None) -> Table:
    """Receiver CPU breakdown vs flows (all optimizations on)."""
    results = results or _all_opt_results()
    return render_breakdown_table(
        "Fig 6b: incast receiver CPU breakdown",
        [(f"{n} flows", r.receiver_breakdown) for n, r in results],
    )


def fig6c(results: List[Tuple[int, ExperimentResult]] = None) -> Table:
    """Receiver L3 miss rate and throughput-per-core vs flows."""
    results = results or _all_opt_results()
    table = Table(
        "Fig 6c: incast receiver cache miss rate vs flows",
        ["flows", "thpt_per_core_gbps", "receiver_miss_rate"],
    )
    for n, result in results:
        table.add_row(
            n, result.throughput_per_core_gbps, pct(result.receiver_cache_miss_rate)
        )
    return table


def generate_all() -> Dict[str, Table]:
    shared = _all_opt_results()
    return {"fig6a": fig6a(), "fig6b": fig6b(shared), "fig6c": fig6c(shared)}


if __name__ == "__main__":  # pragma: no cover
    for table in generate_all().values():
        print(table.render())
        print()
