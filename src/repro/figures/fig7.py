"""Fig 7: outcast traffic pattern — one sender core, 1..24 receivers (§3.4).

The metric is throughput-per-*sender*-core: the sender-side pipeline is much
more CPU-efficient than the receiver's (TSO is free, the cache is warm),
peaking near ~89Gbps from a single core around 8 flows.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import ExperimentConfig, OptimizationConfig, TrafficPattern
from ..core.report import Table, render_breakdown_table
from ..core.results import ExperimentResult
from .base import pct, run_all

FLOW_COUNTS = (1, 8, 16, 24)


def _config(flows: int, opts: OptimizationConfig = None) -> ExperimentConfig:
    return ExperimentConfig(
        pattern=TrafficPattern.OUTCAST,
        num_flows=flows,
        opts=opts or OptimizationConfig.all(),
    )


def _all_opt_results(flows=FLOW_COUNTS) -> List[Tuple[int, ExperimentResult]]:
    results = run_all([_config(n) for n in flows])
    return list(zip(flows, results))


def fig7a(flows: Tuple[int, ...] = FLOW_COUNTS) -> Table:
    """Throughput-per-sender-core per optimization column and flow count."""
    table = Table(
        "Fig 7a: outcast throughput-per-sender-core (Gbps)",
        ["flows", "config", "thpt_per_sender_core_gbps", "total_thpt_gbps"],
    )
    cells = [
        (n, label, _config(n, opts))
        for n in flows
        for label, opts in OptimizationConfig.incremental_ladder()
    ]
    results = run_all([config for _, _, config in cells])
    for (n, label, _), result in zip(cells, results):
        table.add_row(
            n,
            label,
            result.throughput_per_sender_core_gbps,
            result.total_throughput_gbps,
        )
    return table


def fig7b(results: List[Tuple[int, ExperimentResult]] = None) -> Table:
    """Sender CPU breakdown vs flows (all optimizations on)."""
    results = results or _all_opt_results()
    return render_breakdown_table(
        "Fig 7b: outcast sender CPU breakdown",
        [(f"{n} flows", r.sender_breakdown) for n, r in results],
    )


def fig7c(results: List[Tuple[int, ExperimentResult]] = None) -> Table:
    """Sender/receiver utilization and sender-side cache miss rate vs flows."""
    results = results or _all_opt_results()
    table = Table(
        "Fig 7c: outcast CPU utilization (%) and sender cache miss rate",
        ["flows", "sender_util_pct", "receiver_util_pct", "sender_miss_rate"],
    )
    for n, result in results:
        table.add_row(
            n,
            100 * result.sender_utilization_cores,
            100 * result.receiver_utilization_cores,
            pct(result.sender_cache_miss_rate),
        )
    return table


def generate_all() -> Dict[str, Table]:
    shared = _all_opt_results()
    return {"fig7a": fig7a(), "fig7b": fig7b(shared), "fig7c": fig7c(shared)}


if __name__ == "__main__":  # pragma: no cover
    for table in generate_all().values():
        print(table.render())
        print()
