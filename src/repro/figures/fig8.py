"""Fig 8: all-to-all traffic pattern, x by x flows (§3.5).

With hundreds of flows, each flow's per-poll packet count collapses, GRO
loses its aggregation opportunities, post-GRO skbs shrink (panel c), and
per-byte packet processing overheads climb.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import ExperimentConfig, OptimizationConfig, TrafficPattern
from ..core.report import Table, render_breakdown_table
from ..core.results import ExperimentResult
from .base import run_all

SIDE_COUNTS = (1, 8, 16, 24)


def _config(side: int, opts: OptimizationConfig = None) -> ExperimentConfig:
    return ExperimentConfig(
        pattern=TrafficPattern.ALL_TO_ALL,
        num_flows=side,
        opts=opts or OptimizationConfig.all(),
    )


def _all_opt_results(sides=SIDE_COUNTS) -> List[Tuple[int, ExperimentResult]]:
    results = run_all([_config(x) for x in sides])
    return list(zip(sides, results))


def fig8a(sides: Tuple[int, ...] = SIDE_COUNTS) -> Table:
    """Throughput-per-core per optimization column and matrix side."""
    table = Table(
        "Fig 8a: all-to-all throughput-per-core (Gbps)",
        ["flows", "config", "thpt_per_core_gbps", "total_thpt_gbps"],
    )
    cells = [
        (x, label, _config(x, opts))
        for x in sides
        for label, opts in OptimizationConfig.incremental_ladder()
    ]
    results = run_all([config for _, _, config in cells])
    for (x, label, _), result in zip(cells, results):
        table.add_row(
            f"{x}x{x}",
            label,
            result.throughput_per_core_gbps,
            result.total_throughput_gbps,
        )
    return table


def fig8b(results: List[Tuple[int, ExperimentResult]] = None) -> Table:
    """Receiver CPU breakdown vs matrix side (all optimizations on)."""
    results = results or _all_opt_results()
    return render_breakdown_table(
        "Fig 8b: all-to-all receiver CPU breakdown",
        [(f"{x}x{x} flows", r.receiver_breakdown) for x, r in results],
    )


def fig8c(results: List[Tuple[int, ExperimentResult]] = None) -> Table:
    """Post-GRO skb size distribution (CDF summary) vs matrix side."""
    results = results or _all_opt_results()
    table = Table(
        "Fig 8c: post-GRO skb sizes at the receiver",
        ["flows", "mean_skb_kb", "p50_skb_kb", "frac_64kb_skbs"],
    )
    for x, result in results:
        cdf = result.skb_size_cdf()
        p50 = 0.0
        for size, cumulative in cdf:
            if cumulative >= 0.5:
                p50 = size / 1024
                break
        full = sum(
            count
            for size, count in result.rx_skb_sizes.items()
            if size >= 60 * 1024
        )
        total = sum(result.rx_skb_sizes.values())
        table.add_row(
            f"{x}x{x}",
            result.mean_rx_skb_bytes() / 1024,
            p50,
            full / total if total else 0.0,
        )
    return table


def generate_all() -> Dict[str, Table]:
    shared = _all_opt_results()
    return {"fig8a": fig8a(), "fig8b": fig8b(shared), "fig8c": fig8c(shared)}


if __name__ == "__main__":  # pragma: no cover
    for table in generate_all().values():
        print(table.render())
        print()
