"""Fig 9: impact of in-network congestion — random drops at a switch (§3.6).

A switch between the hosts drops frames uniformly at random. Losses trigger
duplicate-ACK/SACK processing and retransmissions, growing the TCP and
netdevice shares of CPU at both ends while total throughput falls.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import ExperimentConfig, LinkConfig
from ..core.report import Table, render_breakdown_table
from ..core.results import ExperimentResult
from .base import run_all

LOSS_RATES = (0.0, 1.5e-4, 1.5e-3, 1.5e-2)


def _config(loss: float) -> ExperimentConfig:
    return ExperimentConfig(link=LinkConfig(loss_rate=loss, has_switch=True))


def _results(rates=LOSS_RATES) -> List[Tuple[float, ExperimentResult]]:
    results = run_all([_config(p) for p in rates])
    return list(zip(rates, results))


def fig9a(results: List[Tuple[float, ExperimentResult]] = None) -> Table:
    results = results or _results()
    table = Table(
        "Fig 9a: throughput-per-core (Gbps) vs packet drop rate",
        ["loss_rate", "thpt_per_core_gbps", "total_thpt_gbps", "retransmits"],
    )
    for p, result in results:
        table.add_row(
            p,
            result.throughput_per_core_gbps,
            result.total_throughput_gbps,
            result.retransmits,
        )
    return table


def fig9b(results: List[Tuple[float, ExperimentResult]] = None) -> Table:
    results = results or _results()
    table = Table(
        "Fig 9b: CPU utilization (%) vs packet drop rate",
        ["loss_rate", "sender_util_pct", "receiver_util_pct"],
    )
    for p, result in results:
        table.add_row(
            p,
            100 * result.sender_utilization_cores,
            100 * result.receiver_utilization_cores,
        )
    return table


def fig9c(results: List[Tuple[float, ExperimentResult]] = None) -> Table:
    results = results or _results()
    return render_breakdown_table(
        "Fig 9c: sender CPU breakdown vs drop rate",
        [(f"loss={p}", r.sender_breakdown) for p, r in results],
    )


def fig9d(results: List[Tuple[float, ExperimentResult]] = None) -> Table:
    results = results or _results()
    return render_breakdown_table(
        "Fig 9d: receiver CPU breakdown vs drop rate",
        [(f"loss={p}", r.receiver_breakdown) for p, r in results],
    )


def generate_all() -> Dict[str, Table]:
    shared = _results()
    return {
        "fig9a": fig9a(shared),
        "fig9b": fig9b(shared),
        "fig9c": fig9c(shared),
        "fig9d": fig9d(shared),
    }


if __name__ == "__main__":  # pragma: no cover
    for table in generate_all().values():
        print(table.render())
        print()
