"""Paper Tables 1 and 2 rendered from the implementation itself."""

from __future__ import annotations

from ..config import SteeringMode
from ..core.report import Table
from ..core.taxonomy import FUNCTION_CATEGORY, Category

_CATEGORY_DESCRIPTIONS = {
    Category.DATA_COPY: "From user space to kernel space, and vice versa.",
    Category.TCPIP: "All the packet processing at TCP/IP layers.",
    Category.NETDEV: "Netdevice and NIC driver operations (NAPI, GSO/GRO, qdisc).",
    Category.SKB_MGMT: "Functions to build, split, and release skb.",
    Category.MEMORY: "skb de-/allocation and page de-/alloc related operations.",
    Category.LOCK: "Lock-related operations (e.g., spin locks).",
    Category.SCHED: "Scheduling/context-switching among threads.",
    Category.ETC: "All the remaining functions (e.g., IRQ handling).",
}

_STEERING_DESCRIPTIONS = {
    SteeringMode.RPS: "Use the 4-tuple hash for core selection.",
    SteeringMode.RFS: "Find the core that the application is running on.",
    SteeringMode.RSS: "Hardware version of RPS supported by NICs.",
    SteeringMode.ARFS: "Hardware version of RFS supported by NICs.",
}


def table1() -> Table:
    """CPU usage taxonomy, with the kernel symbols each category covers."""
    table = Table(
        "Table 1: CPU usage taxonomy",
        ["component", "description", "example_functions"],
    )
    for category in Category:
        functions = sorted(
            op for op, cat in FUNCTION_CATEGORY.items() if cat is category
        )
        table.add_row(
            category.label,
            _CATEGORY_DESCRIPTIONS[category],
            ", ".join(functions[:3]) + ("..." if len(functions) > 3 else ""),
        )
    return table


def table2() -> Table:
    """Receiver-side flow steering techniques."""
    table = Table(
        "Table 2: receiver-side flow steering techniques",
        ["mechanism", "description"],
    )
    for mode in (
        SteeringMode.RPS,
        SteeringMode.RFS,
        SteeringMode.RSS,
        SteeringMode.ARFS,
    ):
        table.add_row(mode.value.upper(), _STEERING_DESCRIPTIONS[mode])
    return table


if __name__ == "__main__":  # pragma: no cover
    print(table1().render())
    print()
    print(table2().render())
