"""Golden-digest plumbing: pin the simulator's observable behaviour.

Every figure generator is run against a recording stub of ``run_many`` to
harvest the exact experiment configs it would submit (the same trick the
strict-audit integration test uses), then each unique config is simulated
with shortened measurement windows and reduced to two stable strings:

* the persistent-cache key of the *original* (full-window) config, and
* a SHA-256 digest of the canonical ``result_to_dict`` payload of the
  shortened run.

Because experiments are deterministic functions of their configs, these
digests change **iff** the simulator's observable behaviour changes — which
is exactly the property the engine/hot-path rewrites must preserve. The
committed reference lives in ``tests/golden/figure_digests.json`` and is
regenerated (after an intentional behaviour change) with
``PYTHONPATH=src python tools/gen_golden_digests.py``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Tuple

from .config import ExperimentConfig
from .core.cache import CACHE_SCHEMA_VERSION, config_cache_key
from .core.experiment import Experiment
from .core.export import result_to_dict
from .units import msec

#: Shortened measurement windows for the digest sweep. Long enough that the
#: loss/retransmission configs exercise their recovery paths, short enough
#: that ~130 configs run in one test session.
GOLDEN_DURATION_NS = msec(2)
GOLDEN_WARMUP_NS = msec(3)


def harvest_figure_configs() -> List[ExperimentConfig]:
    """Every config any figure generator submits, in sorted-generator order,
    deduplicated (full-window form) by cache key."""
    from .figures import ALL_FIGURES
    from .figures import base as figures_base

    generators = {}
    for module in ALL_FIGURES.values():
        for name in dir(module):
            if name.startswith("fig") and callable(getattr(module, name)):
                generators[name] = getattr(module, name)

    captured: List[ExperimentConfig] = []
    stand_in = Experiment(
        ExperimentConfig(duration_ns=msec(1), warmup_ns=msec(1))
    ).run()

    def recording_run_many(configs, **kwargs):
        configs = list(configs)
        captured.extend(configs)
        return [stand_in] * len(configs)

    original = figures_base.run_many
    figures_base.run_many = recording_run_many
    try:
        for name in sorted(generators):
            generators[name]()
    finally:
        figures_base.run_many = original

    unique: Dict[str, ExperimentConfig] = {}
    for config in captured:
        unique.setdefault(config_cache_key(config), config)
    return list(unique.values())


def result_digest(result) -> str:
    """SHA-256 of the canonical JSON encoding of a result payload."""
    document = json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def digest_config(config: ExperimentConfig) -> Tuple[str, str]:
    """``(cache_key_of_full_config, digest_of_shortened_run)`` for one config."""
    key = config_cache_key(config)
    shortened = config.replace(
        duration_ns=GOLDEN_DURATION_NS, warmup_ns=GOLDEN_WARMUP_NS
    )
    digest = result_digest(Experiment(shortened).run())
    return key, digest


def compute_golden_document() -> dict:
    """The full golden document: one digest entry per unique figure config."""
    configs = harvest_figure_configs()
    digests = {}
    for config in configs:
        key, digest = digest_config(config)
        canonical = config.to_canonical_dict()
        digests[key] = {
            "summary": (
                f"{canonical.get('pattern', '?')} x{canonical.get('num_flows', '?')}"
                f" seed={canonical.get('seed', '?')}"
            ),
            "result_sha256": digest,
        }
    return {
        "cache_schema_version": CACHE_SCHEMA_VERSION,
        "duration_ns": GOLDEN_DURATION_NS,
        "warmup_ns": GOLDEN_WARMUP_NS,
        "digests": digests,
    }
