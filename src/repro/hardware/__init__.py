"""Host hardware substrate: topology, cores, caches, NIC, DMA, links."""

from .topology import Topology, NumaNode
from .cpu import Core, Job
from .cache import DcaRegion, L3CacheModel
from .link import Link, Frame
from .steering import SteeringEngine
from .nic import Nic, RxQueue

__all__ = [
    "Topology",
    "NumaNode",
    "Core",
    "Job",
    "DcaRegion",
    "L3CacheModel",
    "Link",
    "Frame",
    "SteeringEngine",
    "Nic",
    "RxQueue",
]
