"""L3 cache and Direct Cache Access (DDIO) model.

The paper's findings on caching (§3.1, Fig 3e/3f, Fig 4, Fig 6c):

* DDIO DMAs NIC frames straight into a small slice (~18%) of the NIC-local
  L3 cache. Data that the application copies out *before* subsequent DMAs
  overwrite it is an L3 hit; data evicted first is a miss.
* Large BDPs / Rx buffers keep more DMA'd-not-yet-copied bytes in flight than
  the DCA slice holds, so the oldest data is evicted before its copy — the
  origin of the surprising 49% single-flow miss rate.
* Many NIC Rx descriptors spread DMA writes across more addresses; imperfect
  replacement/complex addressing then wastes capacity even when in-flight
  data is small. Modeled as a dilution of effective capacity once the
  descriptor footprint exceeds the slice.

:class:`DcaRegion` implements the slice with *hazard-based random-victim*
eviction: DDIO is confined to ~2 ways of each set, sets fill unevenly, and a
write to a full set evicts its LRU way — so eviction pressure starts well
before the aggregate slice is full and grows with occupancy. Each DMA write
of ``b`` bytes therefore evicts ``b * occupancy / capacity`` bytes of
uniformly-chosen resident data (plus a hard-capacity backstop). This yields
the smooth survival curve ``hit ~ exp(-inflight / capacity)`` that the
paper's Fig 3e exhibits, instead of the all-or-nothing threshold a strict
FIFO model would produce (the application also consumes in FIFO order, so
strict FIFO would degenerate to 0% hits whenever in-flight bytes exceed
capacity).

Sender-side L3 warmth is modeled by :class:`L3CacheModel` as an occupancy
heuristic: the sender's working set (application write buffers) is tiny
relative to L3, so misses stay low but grow with the number of colocated
flows (Fig 7c).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple


class DcaRegion:
    """The DDIO-reachable slice of one NUMA node's L3 cache.

    Tracks residency of DMA'd-but-not-yet-copied regions (one region per
    received frame) with random-victim eviction on capacity overflow.
    """

    #: Effective-capacity multiplier for the eviction hazard: victims skew
    #: towards lines that were going to be replaced anyway, so survival is a
    #: bit better than raw capacity suggests. Calibrated so the paper's
    #: default single-flow configuration lands near its observed ~49% miss.
    HAZARD_SCALE = 1.3

    def __init__(
        self,
        node_id: int,
        capacity_bytes: int,
        dilution_exponent: float = 0.25,
        enabled: bool = True,
        rng: Optional[random.Random] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("DCA capacity must be positive")
        self.node_id = node_id
        self.capacity_bytes = capacity_bytes
        self.dilution_exponent = dilution_exponent
        self.enabled = enabled
        self.rng = rng if rng is not None else random.Random(0)
        self._descriptor_footprint = 0
        self._effective_capacity = capacity_bytes
        self._hazard_cap = capacity_bytes * self.HAZARD_SCALE
        self._resident: Dict[int, int] = {}
        self._keys: List[int] = []          # swap-remove list for O(1) random victim
        self._key_index: Dict[int, int] = {}
        self._occupancy = 0
        self._evict_debt = 0.0
        # statistics
        self.bytes_written = 0
        self.bytes_evicted = 0

    # --- configuration ----------------------------------------------------------

    def set_descriptor_footprint(self, footprint_bytes: int) -> None:
        """Total DMA-able memory across the NIC's posted Rx descriptors.

        Footprints beyond the slice capacity dilute effective capacity
        (imperfect replacement / complex cache addressing, §3.1).
        """
        self._descriptor_footprint = max(0, footprint_bytes)
        cap = self.capacity_bytes
        footprint = self._descriptor_footprint
        if footprint <= cap:
            eff = cap
        else:
            eff = max(1, int(cap * (cap / footprint) ** self.dilution_exponent))
        self._effective_capacity = eff
        self._hazard_cap = eff * self.HAZARD_SCALE

    @property
    def effective_capacity(self) -> int:
        """Usable bytes of the slice after descriptor-footprint dilution.

        Recomputed only when the descriptor footprint changes; ``dma_write``
        reads the cached value on every DMA.
        """
        return self._effective_capacity

    @property
    def occupancy(self) -> int:
        return self._occupancy

    # --- data path ------------------------------------------------------------------

    def _track(self, region_id: int) -> None:
        if region_id not in self._key_index:
            self._key_index[region_id] = len(self._keys)
            self._keys.append(region_id)

    def _untrack(self, region_id: int) -> None:
        index = self._key_index.pop(region_id, None)
        if index is None:
            return
        last = self._keys.pop()
        if last != region_id:
            self._keys[index] = last
            self._key_index[last] = index

    def _remove(self, region_id: int) -> int:
        nbytes = self._resident.pop(region_id, 0)
        if nbytes:
            self._occupancy -= nbytes
        self._untrack(region_id)
        return nbytes

    def dma_write(self, region_id: int, nbytes: int) -> None:
        """A NIC DMA of ``nbytes`` lands in the cache slice as ``region_id``.

        Evicts uniformly-random resident regions with a hazard proportional
        to occupancy (see module docstring), plus a hard-capacity backstop.
        """
        if not self.enabled or nbytes <= 0:
            return
        self.bytes_written += nbytes
        self._evict_debt += nbytes * (self._occupancy / self._hazard_cap)
        # Accumulate when a region grows (LRO appends to an existing region).
        resident = self._resident
        prev = resident.get(region_id)
        if prev is None:
            resident[region_id] = nbytes
            self._key_index[region_id] = len(self._keys)
            self._keys.append(region_id)
        else:
            resident[region_id] = prev + nbytes
        self._occupancy += nbytes
        keys = self._keys
        randrange = self.rng.randrange
        while self._evict_debt > 0 and len(keys) > 1:
            victim = keys[randrange(len(keys))]
            if victim == region_id:
                continue  # the incoming write itself stays resident
            evicted = self._remove(victim)
            self._evict_debt -= evicted
            self.bytes_evicted += evicted
        # Backstop: the slice can never physically hold more than capacity.
        cap = self._effective_capacity
        while self._occupancy > cap and len(keys) > 1:
            victim = keys[randrange(len(keys))]
            if victim == region_id:
                continue
            evicted = self._remove(victim)
            self.bytes_evicted += evicted

    def consume(self, region_id: int, nbytes: int) -> Tuple[int, int]:
        """The application copies ``region_id`` out of the cache.

        Returns ``(hit_bytes, miss_bytes)`` and removes the region.
        (``_remove``/``_untrack`` inlined: this runs once per DMA region.)
        """
        resident = self._resident.pop(region_id, 0)
        if resident:
            self._occupancy -= resident
        index = self._key_index.pop(region_id, None)
        if index is not None:
            keys = self._keys
            last = keys.pop()
            if last != region_id:
                keys[index] = last
                self._key_index[last] = index
        hit = resident if resident < nbytes else nbytes
        return hit, nbytes - hit

    def discard(self, region_id: int) -> None:
        """Drop a region without consuming it (e.g. the frame was dropped)."""
        self._remove(region_id)


class L3CacheModel:
    """Per-host cache bookkeeping: DCA slices per node + warm-set heuristics.

    ``register_working_set``/``unregister_working_set`` track the per-node
    application working sets (send buffers). ``sender_miss_rate`` converts
    occupancy pressure into an L3 miss probability for sender-side copies.
    """

    #: Miss floor even with a warm cache (cold lines, TLB, prefetch misses).
    SENDER_MISS_FLOOR = 0.04
    #: How strongly working-set pressure converts into misses.
    SENDER_PRESSURE_SLOPE = 0.5

    def __init__(
        self,
        num_nodes: int,
        l3_bytes: int,
        dca_capacity_bytes: int,
        nic_node: int,
        dca_enabled: bool,
        dilution_exponent: float,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.l3_bytes = l3_bytes
        self.nic_node = nic_node
        self.dca_enabled = dca_enabled
        # DDIO only reaches the NIC-local node's L3 (§3.1, Fig 4).
        self.dca = DcaRegion(
            nic_node, dca_capacity_bytes, dilution_exponent, enabled=dca_enabled, rng=rng
        )
        self._working_set: Dict[int, int] = {node: 0 for node in range(num_nodes)}

    def register_working_set(self, node: int, nbytes: int) -> None:
        self._working_set[node] += nbytes

    def unregister_working_set(self, node: int, nbytes: int) -> None:
        self._working_set[node] = max(0, self._working_set[node] - nbytes)

    def sender_miss_rate(self, node: int) -> float:
        """L3 miss probability for user->kernel copies on ``node``."""
        pressure = self._working_set.get(node, 0) / self.l3_bytes
        rate = self.SENDER_MISS_FLOOR + self.SENDER_PRESSURE_SLOPE * pressure
        return min(0.95, rate)
