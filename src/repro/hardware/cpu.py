"""CPU core model.

A :class:`Core` is a serially-shared resource: kernel and application work is
submitted as :class:`Job` objects (batches of cycle charges) that execute
non-preemptively, ordered by priority (softirq before application threads,
like ksoftirqd-less inline softirq processing in Linux) and FIFO within a
priority. Context switches between different execution contexts charge
scheduler cycles, which is how the paper's "scheduling" category fills up.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Hashable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..core.profiler import CpuProfiler
    from ..costs.model import CostModel
    from ..sim.engine import Engine

#: Priority for softirq (network processing) jobs: runs before app jobs.
PRIORITY_SOFTIRQ = 0
#: Priority for application thread jobs.
PRIORITY_APP = 1


class Job:
    """A batch of cycle charges executed atomically on one core."""

    __slots__ = ("context", "priority", "items", "on_done", "seq", "vt")

    def __init__(
        self,
        context: Hashable,
        items: Sequence[Tuple[str, float]],
        on_done: Optional[Callable[[], None]] = None,
        priority: int = PRIORITY_APP,
    ) -> None:
        self.context = context
        self.priority = priority
        # held by reference: callers hand over freshly-built batches and must
        # not mutate them after submission
        self.items = items
        self.on_done = on_done
        self.seq = 0  # assigned by the core for FIFO ordering
        # Virtual submission time. Normally the instant of ``submit``; the
        # frame-train fast path submits deferred work stamped with the instant
        # the legacy per-event path would have used, so FIFO order within a
        # priority stays identical to the per-event replay.
        self.vt = 0

    def total_cycles(self) -> float:
        return sum(cycles for _, cycles in self.items)

    def __lt__(self, other: "Job") -> bool:
        if self.priority != other.priority:
            return self.priority < other.priority
        if self.vt != other.vt:
            return self.vt < other.vt
        return self.seq < other.seq


class Core:
    """One CPU core: executes jobs serially and accounts every cycle."""

    def __init__(
        self,
        engine: "Engine",
        profiler: "CpuProfiler",
        costs: "CostModel",
        host_name: str,
        core_id: int,
        numa_node: int,
        freq_hz: float,
    ) -> None:
        self.engine = engine
        self.profiler = profiler
        self.costs = costs
        self.host_name = host_name
        self.core_id = core_id
        self.numa_node = numa_node
        self.freq_hz = freq_hz
        self.key = (host_name, core_id)

        self._queue: List[Job] = []
        self._running: Optional[Job] = None
        self._last_context: Optional[Hashable] = None
        self._seq = 0
        self.context_switches = 0
        #: Finish time of the running job (stale once idle — check ``busy``).
        #: The frame-train wake policy reads it to decide whether a punctual
        #: wire action is already covered by this core's next finish event.
        self.busy_until = 0
        #: Rx-side frame-train pipeline of this core's host, or None. When
        #: set, job submission and completion settle the wire first: both are
        #: the only ways core state interacts with the rest of the host, so
        #: settling here replays any deferred deliveries (with their original
        #: virtual times) before the core state they depend on can change.
        self._rx_settle = None
        #: Every cycle this core has accounted for (jobs, context switches,
        #: inline charges). Mirrors the profiler's per-core total by
        #: construction; the conservation auditor cross-checks the two.
        self.busy_cycles = 0.0

    # --- submission ----------------------------------------------------------

    def submit(self, job: Job, vt: Optional[int] = None) -> None:
        """Queue ``job``; starts immediately if the core is idle.

        ``vt`` stamps a virtual submission time (frame-train deferred work);
        plain submissions use the current instant. Deferred wire deliveries
        are settled first so they enter the queue ahead of this job, exactly
        as their per-event replay would have.
        """
        pipeline = self._rx_settle
        if pipeline is not None and (
            pipeline.inflight or pipeline.drain_due is not None
        ):
            engine = self.engine
            pipeline.settle(engine.now, cur_ins=engine.current_inserted_at)
        self._seq += 1
        job.seq = self._seq
        job.vt = self.engine.now if vt is None else vt
        heapq.heappush(self._queue, job)
        if self._running is None:
            self._start_next(job.vt)
        if pipeline is not None and pipeline.plan_core is self:
            # The wake plan assumed this core stayed untouched (idle-core
            # stand-in): re-plan with the core's new state.
            pipeline.rearm()

    def submit_work(
        self,
        context: Hashable,
        items: Sequence[Tuple[str, float]],
        on_done: Optional[Callable[[], None]] = None,
        priority: int = PRIORITY_APP,
        vt: Optional[int] = None,
    ) -> Job:
        """Convenience wrapper building and submitting a :class:`Job`."""
        job = Job(context, items, on_done, priority)
        self.submit(job, vt)
        return job

    # --- execution ---------------------------------------------------------------

    def _start_next(self, start_vt: Optional[int] = None) -> None:
        if not self._queue:
            return
        job = heapq.heappop(self._queue)
        self._running = job

        switch = 0.0
        if self._last_context is not None and job.context != self._last_context:
            # Switching between softirq and app contexts (or between threads)
            # costs scheduler work, charged to the SCHED category.
            switch = self.costs.context_switch_cycles
            self.profiler.charge(self, "__schedule", switch)
            self.context_switches += 1
        self._last_context = job.context

        cycles = self.profiler.charge_items(self, job.items) + switch
        self.busy_cycles += cycles

        duration_ns = max(1, int(cycles / self.freq_hz * 1e9))
        engine = self.engine
        now = engine.now
        start = now if start_vt is None else start_vt
        finish_t = start + duration_ns
        self.busy_until = finish_t
        if finish_t > now:
            # Completions are ideal express-lane cargo: the finish time and
            # ordering ticket are final at this instant and the event is
            # never cancelled. A quiescent ACK-clocked round is a chain of
            # these, so routing them off-wheel is what lets the engine
            # fast-forward whole rounds (DESIGN.md §13).
            if engine.express_enabled:
                engine.express_at(finish_t, self._finish, job)
            else:
                engine.schedule_at(finish_t, self._finish, job)
        elif self._rx_settle is not None:
            # Virtual start whose finish lands at this very instant (the
            # frame-train wake stands in for the finish event): the pipeline
            # runs it once every earlier delivery has been replayed. ``start``
            # rides along as the insertion stamp the legacy finish event
            # would have carried (finish events are scheduled when their job
            # starts) — the settle loop presents it as ``current_inserted_at``
            # so same-instant ordering decisions match the per-event path.
            self._rx_settle._pending_finishes.append((finish_t, self, job, start))
        else:  # pragma: no cover - virtual starts only exist with a pipeline
            self._finish(job)

    def _finish(self, job: Job) -> None:
        pipeline = self._rx_settle
        if pipeline is not None and (
            pipeline.inflight or pipeline.drain_due is not None
        ):
            # Deferred deliveries logically precede this completion: replay
            # them (virtual submissions land in the queue) before picking the
            # next job.
            engine = self.engine
            pipeline.settle(engine.now, cur_ins=engine.current_inserted_at)
        assert self._running is job
        self._running = None
        if job.on_done is not None:
            job.on_done()
        if self._running is None:
            self._start_next()

    # --- direct charges ------------------------------------------------------------

    def charge_inline(self, op: str, cycles: float) -> None:
        """Charge ``cycles`` to ``op`` without occupying core time.

        For instantaneous charges recorded outside a :class:`Job` (e.g. the
        ``try_to_wake_up`` cost on a waking core). Keeps ``busy_cycles`` in
        lock-step with the profiler so cycle conservation still balances.
        """
        self.profiler.charge(self, op, cycles)
        self.busy_cycles += cycles

    def reset_cycle_accounting(self) -> None:
        """Discard accumulated busy cycles (paired with ``CpuProfiler.reset``)."""
        self.busy_cycles = 0.0

    # --- queries -------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._running is not None

    def queue_depth(self) -> int:
        """Number of jobs waiting (not counting the running one)."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Core {self.host_name}/{self.core_id} node={self.numa_node}>"
