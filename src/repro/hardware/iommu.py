"""IOMMU model (§3.9).

With the IOMMU enabled, every page used for DMA must be inserted into the
device's page table before the NIC may touch it, and unmapped once DMA
completes. Both are per-page operations charged to the *memory* category,
which is exactly where the paper sees IOMMU overhead appear (Fig 12b/12c:
memory alloc/dealloc grows to ~30% of receiver cycles).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..costs.model import CostModel

_EMPTY: Tuple[Tuple[str, float], ...] = ()


class IommuModel:
    """Charges for IOMMU map/unmap operations; a no-op when disabled.

    Charge batches are memoized per page count and returned as shared
    immutable tuples — callers fold them into job item lists, never mutate.
    """

    def __init__(self, enabled: bool, costs: CostModel) -> None:
        self.enabled = enabled
        self.costs = costs
        self.pages_mapped = 0
        self.pages_unmapped = 0
        self._map_items: Dict[int, Tuple[Tuple[str, float], ...]] = {}
        self._unmap_items: Dict[int, Tuple[Tuple[str, float], ...]] = {}

    def map_charges(self, npages: int) -> Sequence[Tuple[str, float]]:
        """Charge items for mapping ``npages`` pages into the device domain."""
        if not self.enabled or npages <= 0:
            return _EMPTY
        self.pages_mapped += npages
        items = self._map_items.get(npages)
        if items is None:
            items = self._map_items[npages] = (
                ("iommu_map_page", self.costs.iommu_map_per_page * npages),
            )
        return items

    def unmap_charges(self, npages: int) -> Sequence[Tuple[str, float]]:
        """Charge items for unmapping ``npages`` pages after DMA completion."""
        if not self.enabled or npages <= 0:
            return _EMPTY
        self.pages_unmapped += npages
        items = self._unmap_items.get(npages)
        if items is None:
            items = self._unmap_items[npages] = (
                ("iommu_unmap_page", self.costs.iommu_unmap_per_page * npages),
            )
        return items
