"""Full-duplex 100Gbps link with optional in-path switch (§3.6).

One :class:`Link` instance models one direction. Frames are serialized at
link rate; when a switch is configured it forwards with a small delay and can
drop frames uniformly at random (the paper programs its switch to do exactly
this) and ECN-marks frames when the sender-side backlog exceeds a threshold
(used by DCTCP).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from ..sim.engine import Engine
from ..units import transmission_time_ns


class Frame:
    """One on-the-wire Ethernet frame (data segment or pure ACK)."""

    __slots__ = (
        "flow_id",
        "kind",
        "seq",
        "payload_bytes",
        "wire_bytes",
        "ack",
        "ecn_marked",
        "trace_ns",
    )

    KIND_DATA = "data"
    KIND_ACK = "ack"

    def __init__(
        self,
        flow_id: int,
        kind: str,
        seq: int,
        payload_bytes: int,
        wire_bytes: int,
        ack: Optional[object] = None,
    ) -> None:
        self.flow_id = flow_id
        self.kind = kind
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.wire_bytes = wire_bytes
        self.ack = ack
        self.ecn_marked = False
        # Tracing stamp slot, reused along the path: NIC doorbell time while
        # queued for serialization, wire-exit time while in flight. None on
        # untraced runs and on ACK frames.
        self.trace_ns = None

    @property
    def is_data(self) -> bool:
        return self.kind == Frame.KIND_DATA

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Frame flow={self.flow_id} {self.kind} seq={self.seq} "
            f"len={self.payload_bytes}>"
        )


class Link:
    """One direction of the host-to-host path."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        bandwidth_bps: float,
        propagation_ns: int,
        rng: random.Random,
        loss_rate: float = 0.0,
        has_switch: bool = False,
        switch_delay_ns: int = 0,
        ecn_threshold_bytes: int = 0,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.engine = engine
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.propagation_ns = propagation_ns
        self.rng = rng
        self.loss_rate = loss_rate
        self.has_switch = has_switch
        self.switch_delay_ns = switch_delay_ns
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self._free_at = 0
        #: Per-link serialization-delay memo {wire_bytes: ns}. The global
        #: memo in :mod:`repro.units` keys on (bytes, rate); with the rate
        #: fixed per link this drops the tuple build from the per-frame loop.
        self._tt_cache: dict = {}
        # SideTrace of the *transmitting* host (None unless tracing): the
        # tx_wire stage (doorbell -> last bit out) is charged to the sender.
        self.trace = None
        # statistics — together they satisfy the wire-conservation identity
        # ``sent == dropped + in_flight + delivered`` (frames and bytes),
        # checked by the conservation auditor.
        self.frames_sent = 0
        self.frames_dropped = 0
        self.frames_marked = 0
        self.bytes_sent = 0
        self.bytes_dropped = 0
        self.frames_in_flight = 0
        self.bytes_in_flight = 0
        self.frames_delivered = 0
        self.bytes_delivered = 0

    def backlog_bytes_at(self, vt: int) -> int:
        """Bytes queued for serialization as seen at virtual time ``vt``."""
        pending_ns = max(0, self._free_at - vt)
        return int(pending_ns * self.bandwidth_bps / 8e9)

    def backlog_bytes(self) -> int:
        """Bytes queued for serialization right now (virtual-output queue)."""
        return self.backlog_bytes_at(self.engine.now)

    def serialize_at(
        self, frames: Sequence[Frame], vt: int
    ) -> "tuple[List[Frame], int, int]":
        """Serialize ``frames`` starting no earlier than virtual time ``vt``.

        Returns ``(survivors, survivor_bytes, finish_t)`` where ``finish_t``
        is when the last frame leaves the wire. Updates the sent / dropped /
        marked counters and advances ``_free_at``, drawing switch loss and
        ECN decisions in frame order — but does *not* touch the in-flight
        counters or schedule delivery; the caller owns arrival. The legacy
        :meth:`transmit` and the frame-train pipeline (which replays deferred
        drains at their original virtual times) both funnel through here so
        the two paths consume the loss RNG stream identically.
        """
        t = max(vt, self._free_at)
        bandwidth = self.bandwidth_bps
        drop = self.has_switch and self.loss_rate > 0
        mark = self.has_switch and self.ecn_threshold_bytes > 0
        # Tracing stamps use the running per-frame finish time ``t``, never
        # ``engine.now``: the train pipeline replays deferred drains here
        # after the instant they model, and ``t`` is the virtual truth.
        trace = self.trace
        wire_record = trace.stage("tx_wire").record if trace is not None else None
        tt_cache = self._tt_cache
        tt_get = tt_cache.get
        if not drop and not mark and wire_record is None:
            # Fast path (lossless unswitched untraced link — the default
            # testbed): every frame survives and only the *final* clock
            # matters. Per-frame delays are integers, so summing them first
            # is bit-exact with the sequential accumulation below.
            bytes_sent = 0
            dt_sum = 0
            for frame in frames:
                wire_bytes = frame.wire_bytes
                dt = tt_get(wire_bytes)
                if dt is None:
                    dt = tt_cache[wire_bytes] = transmission_time_ns(
                        wire_bytes, bandwidth
                    )
                dt_sum += dt
                bytes_sent += wire_bytes
            t += dt_sum
            self.frames_sent += len(frames)
            self.bytes_sent += bytes_sent
            self._free_at = t
            return list(frames), bytes_sent, t
        delivered: List[Frame] = []
        append = delivered.append
        nsent = 0
        bytes_sent = 0
        delivered_bytes = 0
        for frame in frames:
            wire_bytes = frame.wire_bytes
            dt = tt_get(wire_bytes)
            if dt is None:
                dt = tt_cache[wire_bytes] = transmission_time_ns(
                    wire_bytes, bandwidth
                )
            t += dt
            nsent += 1
            bytes_sent += wire_bytes
            if drop and self.rng.random() < self.loss_rate:
                self.frames_dropped += 1
                self.bytes_dropped += wire_bytes
                continue
            if mark:
                # queue this frame observed = everything serialized ahead of it
                queued_bytes = int((t - vt) * bandwidth / 8e9)
                if queued_bytes > self.ecn_threshold_bytes:
                    frame.ecn_marked = True
                    self.frames_marked += 1
            if wire_record is not None and frame.trace_ns is not None:
                wire_record(t - frame.trace_ns)
                frame.trace_ns = t  # stamp wire exit for the Rx-side stage
            append(frame)
            delivered_bytes += wire_bytes
        self.frames_sent += nsent
        self.bytes_sent += bytes_sent
        self._free_at = t
        return delivered, delivered_bytes, t

    def arrival_time(self, finish_t: int) -> int:
        """Arrival time at the far end for a burst finishing at ``finish_t``."""
        arrival = finish_t + self.propagation_ns
        if self.has_switch:
            arrival += self.switch_delay_ns
        return arrival

    def transmit(self, frames: Sequence[Frame], deliver: Callable[[List[Frame]], None]) -> None:
        """Serialize ``frames`` and deliver survivors to the far end.

        The whole burst is delivered in one event at the time the *last* frame
        finishes serialization (plus propagation and switch forwarding); this
        batches what would otherwise be one event per MTU frame without
        changing steady-state rates.
        """
        if not frames:
            return
        delivered, delivered_bytes, t = self.serialize_at(frames, self.engine.now)
        if delivered:
            self.frames_in_flight += len(delivered)
            self.bytes_in_flight += delivered_bytes
            self.engine.schedule_at(
                self.arrival_time(t), self._deliver_batch, deliver, delivered, delivered_bytes
            )

    def _deliver_batch(
        self,
        deliver: Callable[[List[Frame]], None],
        frames: List[Frame],
        batch_bytes: int,
    ) -> None:
        # Count before handing off: the receiving NIC may mutate frames (LRO
        # grows wire_bytes of merged frames), so byte totals are only correct
        # when taken at arrival time.
        self.frames_in_flight -= len(frames)
        self.bytes_in_flight -= batch_bytes
        self.frames_delivered += len(frames)
        self.bytes_delivered += batch_bytes
        deliver(frames)
