"""NIC model: Rx queues with descriptors, DMA (with DDIO), TSO/LRO offloads.

The receive path follows §2.1: each Rx queue owns a pool of descriptors, each
backed by enough memory for one MTU-sized frame. Arriving frames consume a
descriptor and are DMA'd either to DRAM or — when DDIO applies (NIC-local
NUMA target) — into the DCA slice of the L3. The driver replenishes
descriptors during NAPI polling. When no descriptor is available the frame is
dropped at the NIC.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Sequence

from ..constants import MAX_GSO_SIZE, PAGE_BYTES
from ..units import transmission_time_ns
from .link import Frame

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Engine
    from .cache import DcaRegion
    from .cpu import Core
    from .link import Link
    from .steering import SteeringEngine


class RxFrameRecord:
    """A received frame sitting in an Rx queue awaiting NAPI processing."""

    __slots__ = ("frame", "region_id", "page_node", "pages", "arrival_ns", "nframes")

    def __init__(
        self,
        frame: Frame,
        region_id: int,
        page_node: int,
        pages: int,
        arrival_ns: int,
        nframes: int = 1,
    ) -> None:
        self.frame = frame
        self.region_id = region_id
        self.page_node = page_node
        self.pages = pages
        self.arrival_ns = arrival_ns
        self.nframes = nframes  # >1 when LRO merged several wire frames


class RxQueue:
    """One NIC Rx queue: descriptors, pending completions, bound IRQ core."""

    def __init__(self, nic: "Nic", queue_id: int, irq_core: "Core", descriptors: int) -> None:
        self.nic = nic
        self.queue_id = queue_id
        self.irq_core = irq_core
        self.page_node = irq_core.numa_node  # driver allocates DMA pages locally
        self.capacity = descriptors
        self.avail_descriptors = descriptors
        self.pending: Deque[RxFrameRecord] = deque()
        #: Wire frames represented by ``pending`` — sum of ``record.nframes``
        #: (maintained by ``_rx_ingest``/``_take_batch``) so a whole-queue
        #: NAPI take can skip the per-record drain loop.
        self.pending_frames = 0
        self.napi = None  # wired by the host (kernel.napi.NapiContext)
        self.dropped_no_descriptor = 0
        self.dropped_no_descriptor_bytes = 0
        self.active = False  # has this queue ever received traffic?

    def replenish(self, count: int) -> None:
        """Return ``count`` descriptors to the NIC (done during NAPI polling)."""
        self.avail_descriptors = min(self.capacity, self.avail_descriptors + count)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<RxQueue {self.queue_id} irq_core={self.irq_core.core_id} "
            f"avail={self.avail_descriptors}/{self.capacity}>"
        )


class Nic:
    """The host NIC."""

    def __init__(
        self,
        engine: "Engine",
        name: str,
        numa_node: int,
        mtu: int,
        tso: bool,
        lro: bool,
        rx_descriptors: int,
        steering: "SteeringEngine",
        dca: Optional["DcaRegion"],
    ) -> None:
        self.engine = engine
        self.name = name
        self.numa_node = numa_node
        self.mtu = mtu
        self.tso = tso
        self.lro = lro
        self.rx_descriptors = rx_descriptors
        self.steering = steering
        self.dca = dca
        self.queues: List[RxQueue] = []
        self.tx_link: Optional["Link"] = None
        self._deliver: Optional[Callable[[List[Frame]], None]] = None
        self._tx_flows: Dict[int, Deque[Frame]] = {}
        self._tx_drain_pending = False
        # Frame-train pipelines (hardware.train.TrainPipeline), wired by the
        # experiment when config.frame_trains is on; None selects the legacy
        # per-batch event path.
        self.tx_pipeline = None  # drains this NIC's _tx_flows
        self.rx_pipeline = None  # delivers into this NIC's Rx queues
        #: NAPI contexts on this NIC's queues currently *not* scheduled
        #: (maintained by NapiContext). The train wake policy's saturated-
        #: path early-out: zero idle contexts means no wake can be needed.
        self.idle_napis = 0
        # SideTrace of this NIC's host (None unless tracing), wired by Host.
        self.trace = None
        self._region_counter = 0
        # statistics
        self.rx_frames = 0
        self.tx_frames = 0
        self.rx_bytes = 0
        self.tx_bytes = 0

    # --- wiring ---------------------------------------------------------------

    def add_rx_queue(self, irq_core: "Core") -> RxQueue:
        """Create an Rx queue whose IRQs land on ``irq_core``."""
        queue = RxQueue(self, len(self.queues), irq_core, self.rx_descriptors)
        self.queues.append(queue)
        self.steering.register_queue(queue)
        self._update_dca_footprint()
        return queue

    def attach_tx(self, link: "Link", deliver: Callable[[List[Frame]], None]) -> None:
        """Wire the egress link and the peer's ingress handler."""
        self.tx_link = link
        self._deliver = deliver

    def _update_dca_footprint(self) -> None:
        """Descriptor footprint that dilutes DCA capacity (§3.1).

        Only *active* queues whose DMA target is the NIC-local node interact
        with the DCA slice: descriptors of idle rings are posted but never
        written, so they add no address diversity to DDIO's working set.
        """
        if self.dca is None:
            return
        local_desc = sum(
            q.capacity
            for q in self.queues
            if q.active and q.page_node == self.dca.node_id
        )
        self.dca.set_descriptor_footprint(local_desc * self.mtu)

    # --- transmit side ----------------------------------------------------------------

    #: Frames per wire batch (keeps event counts low without affecting rates).
    TX_BATCH_FRAMES = 64
    #: Frames pulled per flow per round-robin round (hardware queue quantum).
    TX_RR_QUANTUM_FRAMES = 2

    def transmit(self, frames: Sequence[Frame]) -> None:
        """Queue ``frames`` for transmission.

        The NIC schedules its send queues round-robin (one frame per flow
        per round), so frames from concurrently-active flows *interleave on
        the wire* — the reason receivers see few back-to-back frames per
        flow when many flows share a host, which in turn starves GRO of
        aggregation opportunities (§3.5).
        """
        if self.tx_link is None:
            raise RuntimeError("NIC has no Tx link attached")
        if self.trace is not None:
            # Doorbell stamp. ``transmit`` always runs inside the driver
            # job's completion (or a retransmit event), where ``engine.now``
            # matches the legacy event time in both wire modes.
            doorbell = self.engine.now
            kind_data = Frame.KIND_DATA
            for frame in frames:
                if frame.kind == kind_data:
                    frame.trace_ns = doorbell
        if self.tx_pipeline is not None:
            self.tx_pipeline.on_transmit(frames)
            return
        for frame in frames:
            queue = self._tx_flows.get(frame.flow_id)
            if queue is None:
                queue = self._tx_flows[frame.flow_id] = deque()
            queue.append(frame)
        if not self._tx_drain_pending:
            self._tx_drain_pending = True
            # Defer to the end of the current event so bursts queued by other
            # flows in the same instant join the round-robin interleave.
            self.engine.schedule(0, self._tx_drain)

    def _compose_tx_batch(self) -> List[Frame]:
        """Pop the next wire batch from the per-flow queues (round-robin)."""
        batch: List[Frame] = []
        if len(self._tx_flows) == 1:
            # Single active flow: round-robin degenerates to draining the one
            # queue in order, so skip the per-round key snapshots.
            (flow_id, queue), = self._tx_flows.items()
            take = min(self.TX_BATCH_FRAMES, len(queue))
            for _ in range(take):
                batch.append(queue.popleft())
            if not queue:
                del self._tx_flows[flow_id]
        while self._tx_flows and len(batch) < self.TX_BATCH_FRAMES:
            # one round: a small quantum of frames from every active flow
            for flow_id in list(self._tx_flows.keys()):
                queue = self._tx_flows[flow_id]
                for _ in range(self.TX_RR_QUANTUM_FRAMES):
                    batch.append(queue.popleft())
                    if not queue:
                        del self._tx_flows[flow_id]
                        break
                if len(batch) >= self.TX_BATCH_FRAMES:
                    break
        return batch

    def _peek_tx_batch(self) -> List[Frame]:
        """What :meth:`_compose_tx_batch` *would* pop, without mutating.

        Used by the frame-train pipeline to plan the next train's arrival
        time ahead of the drain actually settling; must mirror the compose
        logic exactly (fast path, round snapshots, per-flow exhaustion).
        """
        flows = self._tx_flows
        if not flows:
            return []
        batch: List[Frame] = []
        snapshot = {flow_id: list(queue) for flow_id, queue in flows.items()}
        taken = dict.fromkeys(snapshot, 0)
        alive = list(snapshot)
        limit = self.TX_BATCH_FRAMES
        if len(alive) == 1:
            flow_id = alive[0]
            frames = snapshot[flow_id]
            take = min(limit, len(frames))
            batch.extend(frames[:take])
            taken[flow_id] = take
            if take == len(frames):
                alive = []
        while alive and len(batch) < limit:
            for flow_id in list(alive):
                frames = snapshot[flow_id]
                for _ in range(self.TX_RR_QUANTUM_FRAMES):
                    batch.append(frames[taken[flow_id]])
                    taken[flow_id] += 1
                    if taken[flow_id] == len(frames):
                        alive.remove(flow_id)
                        break
                if len(batch) >= limit:
                    break
        return batch

    def _tx_drain(self) -> None:
        # Pace against the wire: keep at most ~2 batches serialized ahead so
        # frames from flows that become active meanwhile join the round-robin
        # interleave instead of queueing behind whole prior bursts.
        max_ahead = 2 * self.TX_BATCH_FRAMES * self.mtu
        backlog = self.tx_link.backlog_bytes()
        if backlog > max_ahead:
            delay = transmission_time_ns(backlog - max_ahead, self.tx_link.bandwidth_bps)
            self.engine.schedule(delay, self._tx_drain)
            return
        batch = self._compose_tx_batch()
        if not batch:
            self._tx_drain_pending = False
            return
        self.tx_frames += len(batch)
        batch_bytes = sum(f.wire_bytes for f in batch)
        self.tx_bytes += batch_bytes
        self.tx_link.transmit(batch, self._deliver)
        if self._tx_flows:
            # Pace the next batch at roughly the wire drain rate so flows
            # arriving meanwhile join the interleave.
            delay = transmission_time_ns(batch_bytes, self.tx_link.bandwidth_bps)
            self.engine.schedule(delay, self._tx_drain)
        else:
            self._tx_drain_pending = False

    # --- receive side -------------------------------------------------------------------

    def handle_rx(self, frames: List[Frame]) -> None:
        """Frames arriving from the wire: steer, DMA, and raise IRQs."""
        touched = self._rx_ingest(frames, self.engine.now)
        for queue in touched.values():
            if queue.napi is not None:
                queue.napi.notify()

    def _rx_ingest(self, frames: List[Frame], now: int) -> Dict[int, RxQueue]:
        """Steer and DMA ``frames`` that arrived at ``now``; return the
        touched queues (IRQ notification is the caller's job — the legacy
        path notifies at the arrival event, the frame-train pipeline when the
        train settles, stamping the original arrival time either way)."""
        touched: Dict[int, RxQueue] = {}
        queue_for = self.steering.queue_for
        lro = self.lro
        dca = self.dca
        trace = self.trace
        # ``now`` is the arrival virtual time handed in by the caller (the
        # train pipeline replays ingests late), never ``engine.now``.
        rx_wire_record = trace.stage("wire").record if trace is not None else None
        region_counter = self._region_counter
        rx_frames = 0
        rx_bytes = 0
        kind_data = Frame.KIND_DATA
        dca_write = dca.dma_write if dca is not None else None
        dca_node = dca.node_id if dca is not None else -1
        # Steering is fixed for the duration of one ingest (aRFS reprograms
        # between events, never mid-batch) and train batches are runs of
        # same-flow frames, so one (flow -> queue) memo elides most lookups.
        last_flow = -1
        last_queue = None
        for frame in frames:
            flow_id = frame.flow_id
            if flow_id == last_flow:
                queue = last_queue
            else:
                queue = queue_for(flow_id)
                last_flow = flow_id
                last_queue = queue
                if not queue.active:
                    queue.active = True
                    self._update_dca_footprint()
            if queue.avail_descriptors <= 0:
                queue.dropped_no_descriptor += 1
                queue.dropped_no_descriptor_bytes += frame.wire_bytes
                continue
            queue.avail_descriptors -= 1
            queue.pending_frames += 1
            rx_frames += 1
            rx_bytes += frame.wire_bytes
            is_data = frame.kind == kind_data
            if rx_wire_record is not None and frame.trace_ns is not None:
                rx_wire_record(now - frame.trace_ns)
                frame.trace_ns = None

            if lro and is_data and self._try_lro_merge(queue, frame):
                touched[queue.queue_id] = queue
                continue

            region_counter += 1
            region_id = region_counter
            payload = frame.payload_bytes
            pages = (payload + PAGE_BYTES - 1) // PAGE_BYTES if payload else 0
            if (
                dca_write is not None
                and is_data
                and payload
                and queue.page_node == dca_node
            ):
                # DDIO pushes the DMA into the NIC-local L3's DCA slice.
                dca_write(region_id, payload)
            # direct field assignment (bypassing __init__): per-frame hot path
            record = RxFrameRecord.__new__(RxFrameRecord)
            record.frame = frame
            record.region_id = region_id
            record.page_node = queue.page_node
            record.pages = pages
            record.arrival_ns = now
            record.nframes = 1
            queue.pending.append(record)
            touched[queue.queue_id] = queue
        self._region_counter = region_counter
        self.rx_frames += rx_frames
        self.rx_bytes += rx_bytes
        return touched

    def _try_lro_merge(self, queue: RxQueue, frame: Frame) -> bool:
        """NIC-side receive merge (LRO): extend the newest pending record when
        the frame continues the same flow in-sequence. Burns no host cycles
        (footnote 3: LRO beats GRO on CPU but is often unusable in practice).
        """
        if not queue.pending:
            return False
        tail = queue.pending[-1]
        prev = tail.frame
        if (
            prev.kind != Frame.KIND_DATA
            or prev.flow_id != frame.flow_id
            or prev.seq + prev.payload_bytes != frame.seq
            or prev.payload_bytes + frame.payload_bytes > MAX_GSO_SIZE
        ):
            return False
        prev.payload_bytes += frame.payload_bytes
        prev.wire_bytes += frame.wire_bytes
        tail.pages = (prev.payload_bytes + PAGE_BYTES - 1) // PAGE_BYTES
        tail.nframes += 1
        if self.dca is not None and queue.page_node == self.dca.node_id:
            self.dca.dma_write(tail.region_id, frame.payload_bytes)
        return True

    # --- queries ------------------------------------------------------------------------------

    def total_rx_drops(self) -> int:
        return sum(q.dropped_no_descriptor for q in self.queues)

    def total_rx_drop_bytes(self) -> int:
        return sum(q.dropped_no_descriptor_bytes for q in self.queues)
