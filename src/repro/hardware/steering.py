"""Receiver-side flow steering (paper Table 2).

The NIC picks the Rx queue (and hence the IRQ/softirq core) for each incoming
frame. Four mechanisms are modeled:

* **RSS** — hash of the flow 4-tuple selects a queue (hardware).
* **RPS** — software analogue of RSS (queue by hash; the later TCP processing
  stays on the hash-selected core).
* **RFS** — software steering towards the application's core.
* **aRFS** — the NIC itself steers towards the application's core, using a
  finite steering table; when the table is full, flows fall back to RSS
  (this is why the paper could not pin 576 all-to-all flows, §3.5).

Experiments may additionally pin flows explicitly (the paper's deterministic
worst-case IRQ mapping when aRFS is off).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List

from ..config import SteeringMode

if TYPE_CHECKING:  # pragma: no cover
    from .nic import RxQueue


class SteeringEngine:
    """Maps flows to NIC Rx queues."""

    def __init__(
        self,
        mode: SteeringMode,
        rng: random.Random,
        arfs_capacity: int,
    ) -> None:
        self.mode = mode
        self.rng = rng
        self.arfs_capacity = arfs_capacity
        self._queues: List["RxQueue"] = []
        self._arfs_table: Dict[int, "RxQueue"] = {}
        self._pinned: Dict[int, "RxQueue"] = {}
        self._hash_salt = rng.getrandbits(32)
        self.arfs_install_failures = 0
        # flow -> queue decisions, flushed whenever the inputs change
        self._decisions: Dict[int, "RxQueue"] = {}

    def register_queue(self, queue: "RxQueue") -> None:
        self._queues.append(queue)
        self._decisions.clear()

    # --- configuration ----------------------------------------------------------

    def install_arfs(self, flow_id: int, queue: "RxQueue") -> bool:
        """Install an aRFS steering entry; fails when the NIC table is full."""
        if flow_id in self._arfs_table:
            self._arfs_table[flow_id] = queue
            self._decisions.clear()
            return True
        if len(self._arfs_table) >= self.arfs_capacity:
            self.arfs_install_failures += 1
            return False
        self._arfs_table[flow_id] = queue
        self._decisions.clear()
        return True

    def pin_flow(self, flow_id: int, queue: "RxQueue") -> None:
        """Explicitly pin a flow's IRQs to one queue (ethtool-style)."""
        self._pinned[flow_id] = queue
        self._decisions.clear()

    # --- data path -----------------------------------------------------------------

    def queue_for(self, flow_id: int) -> "RxQueue":
        """Rx queue used for a frame of ``flow_id``."""
        queue = self._decisions.get(flow_id)
        if queue is not None:
            return queue
        if not self._queues:
            raise RuntimeError("no Rx queues registered")
        queue = self._arfs_table.get(flow_id)
        if queue is None:
            queue = self._pinned.get(flow_id)
        if queue is None:
            # RSS/RPS fallback: stable 4-tuple hash.
            index = hash((flow_id, self._hash_salt)) % len(self._queues)
            queue = self._queues[index]
        self._decisions[flow_id] = queue
        return queue
