"""NUMA topology of a host (paper §2.2: 4 sockets x 6 cores, NIC on socket 0)."""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from .cpu import Core


class NumaNode:
    """One NUMA node: a set of cores sharing an L3 cache and local DRAM."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.cores: List["Core"] = []

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NumaNode {self.node_id} cores={[c.core_id for c in self.cores]}>"


class Topology:
    """Core/NUMA layout of a host."""

    def __init__(self, num_nodes: int, cores_per_node: int, nic_node: int) -> None:
        if not 0 <= nic_node < num_nodes:
            raise ValueError(f"nic_node {nic_node} out of range for {num_nodes} nodes")
        self.num_nodes = num_nodes
        self.cores_per_node = cores_per_node
        self.nic_node_id = nic_node
        self.nodes = [NumaNode(i) for i in range(num_nodes)]
        self.cores: List["Core"] = []

    def register_core(self, core: "Core") -> None:
        """Attach a constructed core to its node. Called by the host builder."""
        self.nodes[core.numa_node].cores.append(core)
        self.cores.append(core)

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.cores_per_node

    def node_of_core(self, core_id: int) -> int:
        """NUMA node id of a core id (cores are numbered node-major)."""
        return core_id // self.cores_per_node

    def cores_nic_local_first(self) -> List["Core"]:
        """Cores ordered NIC-local node first, then remaining nodes in order.

        This is the fill order the paper uses when scaling the number of
        flows: the first 6 flows land on the NIC-local node, later ones spill
        to NIC-remote nodes (§3.2).
        """
        local = [c for c in self.cores if c.numa_node == self.nic_node_id]
        remote = [c for c in self.cores if c.numa_node != self.nic_node_id]
        return local + remote

    def cores_nic_remote_first(self) -> List["Core"]:
        """Cores ordered with NIC-remote nodes first (Fig 4 / Fig 10c placement)."""
        local = [c for c in self.cores if c.numa_node == self.nic_node_id]
        remote = [c for c in self.cores if c.numa_node != self.nic_node_id]
        return remote + local

    def remote_core_for(self, core: "Core") -> "Core":
        """A deterministic core on a *different* NUMA node than ``core``.

        Used for the paper's worst-case IRQ mapping when aRFS is disabled:
        IRQs are explicitly pinned to a core on a NUMA node different from the
        application core (§3.1).
        """
        for node in self.nodes:
            if node.node_id == core.numa_node:
                continue
            for candidate in node.cores:
                return candidate
        raise ValueError("topology has a single NUMA node; no remote core exists")
