"""Frame-train fast path: lazily-settled wire batches (DESIGN.md §11).

The legacy wire pipeline fires two engine events per Tx batch — the NIC's
``_tx_drain`` and the link's ``_deliver_batch`` — even though, in steady
state, nothing between those events can observe the wire. This module
replaces both with a *virtual* timeline per link direction: a pending drain
time and a FIFO of in-flight :class:`FrameTrain` objects, replayed
("settled") up to the current instant at exactly the points where per-frame
behaviour becomes observable:

* ``Nic.transmit`` (batch composition: new frames join the round-robin);
* the top of ``NapiContext._poll`` and the tail of its ``done()`` closure
  (descriptor consumption, pending-queue length, GRO interleave);
* DCA ``consume``/``discard`` (eviction hazard ordering vs DMA writes);
* run boundaries (warmup counter snapshot, final collection, the auditor).

Settlement replays the legacy code *at the original virtual times*: pacing
deferrals, batch composition, per-frame serialization with switch loss and
ECN draws (through :meth:`Link.serialize_at`, shared with the legacy path so
the RNG streams are consumed identically), descriptor consume and DMA on
ingest. Results are byte-identical by construction — enforced by the golden
figure digests and ``tests/property/test_train_equivalence.py``.

Timing correctness relies on one invariant: a train may settle *after* its
arrival time only when every NAPI context it would notify was busy
(``scheduled``) at arrival — then ``notify()`` is a no-op and the late
replay is indistinguishable from the punctual one. Whenever any target is
idle, the pipeline arms a single *wake* event at the exact arrival time of
the next train (a pure plan-ahead simulation of the next drain: deferral
chain, round-robin batch peek, per-frame serialization sum — drops never
change timing, so the plan is exact). Queues going idle re-arm the wake; in
saturated runs no wake is ever armed and the wire costs zero events.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Sequence, Tuple

from ..constants import IRQ_COALESCE_FRAMES, IRQ_COALESCE_NS, IRQ_IDLE_RESET_NS
from ..units import transmission_time_ns

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Engine
    from .link import Frame, Link
    from .nic import Nic


class FrameTrain:
    """Survivors of one serialized Tx batch, in flight towards the peer NIC."""

    __slots__ = ("frames", "wire_bytes", "arrival_ns", "drain_vt", "_flow_frames")

    def __init__(
        self, frames: List["Frame"], wire_bytes: int, arrival_ns: int, drain_vt: int
    ) -> None:
        self.frames = frames
        self.wire_bytes = wire_bytes
        self.arrival_ns = arrival_ns
        #: Virtual time of the drain that serialized this batch — the instant
        #: at which the legacy path would have *scheduled* the delivery
        #: event. Within an instant the engine fires events in scheduling
        #: order, so this timestamp decides whether the arrival precedes or
        #: follows another event at the same ``arrival_ns``.
        self.drain_vt = drain_vt
        self._flow_frames: Optional[dict] = None

    @property
    def flow_frames(self) -> dict:
        """Frames per flow, computed on first use (the wake policy regroups
        these per Rx queue on every re-plan; saturated runs never ask)."""
        counts = self._flow_frames
        if counts is None:
            counts = {}
            for frame in self.frames:
                fid = frame.flow_id
                counts[fid] = counts.get(fid, 0) + 1
            self._flow_frames = counts
        return counts

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FrameTrain n={len(self.frames)} bytes={self.wire_bytes} "
            f"arrival={self.arrival_ns}>"
        )


class TrainPipeline:
    """One link direction's virtual wire timeline (tx NIC → link → rx NIC)."""

    def __init__(self, engine: "Engine", tx_nic: "Nic", link: "Link", rx_nic: "Nic") -> None:
        self.engine = engine
        self.tx_nic = tx_nic
        self.link = link
        self.rx_nic = rx_nic
        #: Virtual time of the next pending Tx drain (legacy ``_tx_drain``
        #: event time), or ``None`` when no drain is armed.
        self.drain_due: Optional[int] = None
        #: Serialized-but-not-yet-ingested trains, FIFO by arrival time
        #: (arrivals are monotonic: serialization finish times never regress).
        self.inflight: Deque[FrameTrain] = deque()
        self._wake = None
        self._wake_time = -1
        self._settling = False
        #: Core whose idle state the current wake plan depends on (the wake
        #: stands in for the IRQ job's finish event); any submission to it
        #: re-plans. None when the plan has no such dependency.
        self.plan_core = None
        #: Virtually-started jobs whose finish is due at the current instant,
        #: as ``(finish_vt, core, job)``. The settle loop runs them in time
        #: order interleaved with deliveries (the wake stands in for the
        #: finish event the legacy path would have fired).
        self._pending_finishes: List[tuple] = []
        #: Lazy flow id → (RxQueue, NapiContext) cache. Steering decisions
        #: are static once a flow is registered (aRFS/pins happen at setup),
        #: so the wake policy's per-replan lookups reduce to one dict hit.
        self._flow_target: dict = {}
        #: Tx-side state version: bumped whenever the inputs of the next-
        #: arrival plan change (new frames queued, a drain consumed a batch).
        #: Memoizes ``_plan_first_arrival`` across the rearms in between.
        self._tx_version = 0
        self._plan_cache: Tuple[int, Optional[int], Optional[int], Optional[dict]] = (
            -1, None, None, None
        )
        #: The opposite-direction pipeline of the same experiment (set by the
        #: wiring code). Its wake commutes with ours — the two deliver onto
        #: different hosts — so a deferring wake ignores it when asking the
        #: engine whether the current instant still has events to run.
        self.peer: Optional["TrainPipeline"] = None
        tx_nic.tx_pipeline = self
        rx_nic.rx_pipeline = self

    # --- producer side --------------------------------------------------------

    def on_transmit(self, frames: Sequence["Frame"]) -> None:
        """``Nic.transmit`` entry for the train path.

        Settles strictly below the current instant *before* enqueueing, so a
        drain that was due earlier can never swallow frames it would not have
        seen; then the new frames join the per-flow queues and an immediate
        drain is armed (the legacy ``schedule(0, _tx_drain)`` end-of-instant
        deferral: due now, run after every transmit of this instant).
        """
        now = self.engine.now
        self.settle(now, cur_ins=self.engine.current_inserted_at)
        flows = self.tx_nic._tx_flows
        batch_frames = self.tx_nic.TX_BATCH_FRAMES
        bump = False
        # Bursts are runs of same-flow frames: memo the last (flow -> queue).
        last_flow = -1
        queue = None
        for frame in frames:
            flow_id = frame.flow_id
            if flow_id != last_flow:
                last_flow = flow_id
                queue = flows.get(flow_id)
                if queue is None:
                    queue = flows[flow_id] = deque()
            if len(queue) < batch_frames:
                # Appends beyond one full batch extend queue tails only: the
                # round-robin composition of the *next* batch — and with it
                # the arrival plan — cannot change.
                bump = True
            queue.append(frame)
        if bump:
            self._tx_version += 1
        if self.drain_due is None:
            self.drain_due = now
        if self.rx_nic.idle_napis or self._wake is not None:
            self.rearm()

    # --- settlement -----------------------------------------------------------

    def settle(
        self,
        bound: int,
        include_eq_arrivals: bool = False,
        include_eq_drains: bool = False,
        cur_ins: Optional[int] = None,
    ) -> None:
        """Replay drains and deliveries up to ``bound``.

        Arrivals strictly before ``bound`` always land. For an arrival
        exactly *at* the bound the legacy order within the instant decides:
        its delivery event was inserted at the drain time (``drain_vt``),
        same-timestamp events fire in insertion order, so with ``cur_ins``
        (the insertion time of the event currently executing) the arrival is
        replayed here iff the legacy event order ran it before the current
        event — ``drain_vt <= cur_ins`` (ties lean arrival-first: the drain
        typically ran inline before the observer was scheduled). The wake's
        end-of-instant pass and run boundaries set ``include_eq_arrivals``
        to sweep whatever remains. Ties between an arrival and a drain at
        the same instant deliver first — the legacy delivery event was
        scheduled before the drain that would fire alongside it.
        """
        if self._settling:
            return
        inflight = self.inflight
        if not self._pending_finishes:
            # Fast path: nothing can be strictly due, and the equal-bound
            # rules below only ever *add* work at exactly the bound.
            due = self.drain_due
            if (not inflight or bound < inflight[0].arrival_ns) and (
                due is None or bound < due
            ):
                return
        self._settling = True
        delivered = False
        try:
            pending = self._pending_finishes
            while True:
                if pending:
                    # A virtually-started job's finish is due: it precedes any
                    # strictly later delivery, and a same-instant delivery iff
                    # the legacy event order ran it first — the finish event
                    # was inserted at the job's start, the delivery event at
                    # its drain, and same-timestamp events fire in insertion
                    # order (ties lean finish-first, as before trains).
                    best = min(range(len(pending)), key=lambda i: pending[i][0])
                    finish_vt, core, job, start_vt = pending[best]
                    head = inflight[0] if inflight else None
                    if head is None or finish_vt < head.arrival_ns or (
                        finish_vt == head.arrival_ns
                        and start_vt <= head.drain_vt
                    ):
                        del pending[best]
                        # Present the insertion stamp the legacy finish event
                        # would have had (the job's start instant), not the
                        # wake's: settle hooks inside the finish chain decide
                        # same-instant arrival order against it.
                        engine = self.engine
                        prev_ins = engine.current_inserted_at
                        engine.current_inserted_at = start_vt
                        try:
                            core._finish(job)
                        finally:
                            engine.current_inserted_at = prev_ins
                        continue
                head = inflight[0] if inflight else None
                due = self.drain_due
                a_ok = head is not None and (
                    head.arrival_ns < bound
                    or (
                        head.arrival_ns == bound
                        and (
                            include_eq_arrivals
                            or (cur_ins is not None and head.drain_vt <= cur_ins)
                        )
                    )
                )
                d_ok = due is not None and (
                    due < bound or (include_eq_drains and due == bound)
                )
                if a_ok and (not d_ok or head.arrival_ns <= due):
                    self._deliver(inflight.popleft())
                    delivered = True
                    continue
                if d_ok:
                    self._run_drain(due)
                    continue
                break
        finally:
            self._settling = False
        if delivered and (self.rx_nic.idle_napis or self._wake is not None):
            # Deliveries can expose a new head train (or leave a deferred one
            # without its guaranteed settle point): keep the wake plan fresh.
            # With zero idle contexts and no armed wake there is nothing to
            # plan — the idle transition itself re-arms.
            self.rearm()

    def settle_final(self, bound: int) -> None:
        """Run-boundary settlement: everything due up to and including
        ``bound`` (the engine fires events with ``time <= until``)."""
        self.settle(bound, include_eq_arrivals=True, include_eq_drains=True)

    def _run_drain(self, vt: int) -> None:
        """Replay one ``Nic._tx_drain`` firing at virtual time ``vt``."""
        self._tx_version += 1
        nic = self.tx_nic
        link = self.link
        max_ahead = 2 * nic.TX_BATCH_FRAMES * nic.mtu
        backlog = link.backlog_bytes_at(vt)
        if backlog > max_ahead:
            self.drain_due = vt + transmission_time_ns(
                backlog - max_ahead, link.bandwidth_bps
            )
            return
        batch = nic._compose_tx_batch()
        if not batch:
            self.drain_due = None
            return
        nic.tx_frames += len(batch)
        batch_bytes = sum(f.wire_bytes for f in batch)
        nic.tx_bytes += batch_bytes
        delivered, delivered_bytes, finish = link.serialize_at(batch, vt)
        if delivered:
            link.frames_in_flight += len(delivered)
            link.bytes_in_flight += delivered_bytes
            self.inflight.append(
                FrameTrain(delivered, delivered_bytes, link.arrival_time(finish), vt)
            )
        if nic._tx_flows:
            self.drain_due = vt + transmission_time_ns(
                batch_bytes, link.bandwidth_bps
            )
        else:
            self.drain_due = None

    def _deliver(self, train: FrameTrain) -> None:
        """Replay one ``Link._deliver_batch`` + ``Nic.handle_rx`` arrival."""
        link = self.link
        frames = train.frames
        link.frames_in_flight -= len(frames)
        link.bytes_in_flight -= train.wire_bytes
        link.frames_delivered += len(frames)
        link.bytes_delivered += train.wire_bytes
        arrival = train.arrival_ns
        touched = self.rx_nic._rx_ingest(frames, arrival)
        for queue in touched.values():
            if queue.napi is not None:
                queue.napi.notify_at(arrival)

    # --- wake management --------------------------------------------------------

    def rearm(self) -> None:
        """Arm (or clear) the single wake event for the next train.

        A wake is needed only when an idle NAPI context has a *punctual
        action* — an IRQ raise or coalesce-timer start whose exact instant
        other events can observe. Per idle-target queue of the head train the
        policy yields the action's instant, or ``None`` when an
        already-scheduled engine event (the target core's running-job finish)
        is guaranteed to settle the delivery in time, making the action a
        pure replay that needs no event of its own. The wake lands at the
        earliest uncovered instant; when every action is covered the wire
        runs entirely on borrowed events.
        """
        self.plan_core = None
        if not self._has_idle_target():
            self._disarm()
            return
        if self.inflight:
            head = self.inflight[0]
            target: Optional[int] = head.arrival_ns
            per_flow: Optional[dict] = head.flow_frames
            planned = False
        else:
            target, per_flow = self._plan_first_arrival()
            planned = True
        if target is None:
            self._disarm()
            return
        wake, wake_core = self._policy_wake_time(target, per_flow, planned)
        if wake is None:
            self._disarm()
            return
        self.plan_core = wake_core
        now = self.engine.now
        if wake < now:
            wake = now
        cur = self._wake
        if cur is not None and not cur.cancelled and self._wake_time == wake:
            return
        self._disarm()
        self._wake = self.engine.schedule_at(wake, self._on_wake)
        self._wake_time = wake

    def _policy_wake_time(
        self, T: int, per_flow: dict, planned: bool
    ) -> Tuple[Optional[int], Optional[object]]:
        """Earliest uncovered punctual-action instant for the head train.

        ``per_flow`` maps flow id to frame count for the head batch. Returns
        ``(wake_time, plan_core)``: ``wake_time`` is ``None`` when every
        idle-target action is covered by an existing engine event;
        ``plan_core`` is the core whose idle state an idle-core stand-in
        prediction depends on (submissions to it re-plan), else ``None``.
        """
        target = self._target
        per_queue: dict = {}
        for flow_id, count in per_flow.items():
            queue, _napi = target(flow_id)
            per_queue[queue] = per_queue.get(queue, 0) + count
        # Idle-target flows outside the head train's queues (later trains,
        # Tx backlog) will need their own wake chain after the head lands;
        # a covered head would leave them without a guaranteed punctual
        # settle point, so fall back to a plain wake at the head arrival.
        if self._others_need_punctual(per_queue, skip_head=not planned):
            return T, None
        wake: Optional[int] = None
        wake_core = None
        for queue, nframes in per_queue.items():
            napi = queue.napi
            if napi is None or napi.scheduled:
                continue  # no punctual action: notify() would no-op
            punctual, core = self._queue_punctual(queue, napi, nframes, T, planned)
            if punctual is not None and (wake is None or punctual < wake):
                wake = punctual
                wake_core = core
        return wake, wake_core

    def _queue_punctual(
        self, queue, napi, nframes: int, T: int, planned: bool
    ) -> Tuple[Optional[int], Optional[object]]:
        """Punctual-action instant for one idle NAPI target, or ``None``.

        Replays :meth:`NapiContext.notify_at`'s branch decision as of the
        arrival ``T`` without mutating anything. Covered cases (``None``):
        the target core is busy and its running job finishes *after* the
        action instant — the finish event's settle hook replays the delivery
        (and any overdue inline raise) with exact virtual times before the
        core picks its next job. Idle cores get a stand-in wake at the IRQ
        job's finish instant, so the poll chain's real-time side effects
        (repolls, ACK transmits) run at the legacy wall-clock.
        """
        if self.rx_nic.lro or queue.avail_descriptors < nframes:
            # LRO merging or descriptor drops change what lands in the
            # pending queue: don't predict past ingest, wake punctually.
            return T, None
        core = napi.core
        running = core._running
        # The core's state at the action is predictable when it is idle now,
        # or busy with nothing queued behind the running job (it goes idle at
        # ``busy_until`` unless something new is submitted — and submissions
        # to a ``plan_core`` re-plan). Then the IRQ job's start replays
        # virtually and the wake stands in at its *finish*, where on_done's
        # real-time side effects (the poll submission) belong.
        predictable_idle = running is None or core.queue_depth() == 0
        recently = T - napi._last_activity_ns < IRQ_IDLE_RESET_NS
        if recently and len(queue.pending) + nframes < IRQ_COALESCE_FRAMES:
            punctual = T + IRQ_COALESCE_NS
            if running is not None and core.busy_until > punctual:
                return None, None  # raise replayed inline at the covering finish
            if not predictable_idle:
                return punctual, None  # parity with the legacy coalesce event
            return punctual + self._irq_job_ns(core, napi), core
        # Immediate raise at the arrival instant.
        if running is not None and core.busy_until > T:
            return None, None  # submission replayed at the covering finish
        if not predictable_idle:
            return T, None
        duration = self._irq_job_ns(core, napi)
        link = self.link
        if (
            planned
            and recently
            and duration >= IRQ_COALESCE_NS
            and link.has_switch
            and link.loss_rate > 0
        ):
            # Switch drops could thin the batch below the coalesce threshold
            # and flip the branch to a raise *before* this wake; with
            # duration < IRQ_COALESCE_NS the flipped raise lands after the
            # wake and gets its own parity event, so only this corner bails.
            return T, None
        return T + duration, core

    def _irq_job_ns(self, core, napi) -> int:
        """Predicted wall time of the IRQ handler job on ``core``.

        Exact while the core stays undisturbed: ``_last_context`` only
        changes when a job starts, and every submission to the plan core
        re-plans before anything else can observe the difference.
        """
        switch = 0.0
        last = core._last_context
        if last is not None and last != ("softirq", core.core_id):
            switch = core.costs.context_switch_cycles
        cycles = switch + napi.costs.irq_cycles
        return max(1, int(cycles / core.freq_hz * 1e9))

    def _others_need_punctual(self, head_queues, skip_head: bool) -> bool:
        """Any idle-NAPI flow (beyond the head train) outside ``head_queues``?"""
        target = self._target
        for index, train in enumerate(self.inflight):
            if skip_head and index == 0:
                continue
            for flow_id in train.flow_frames:
                queue, napi = target(flow_id)
                if queue in head_queues:
                    continue
                if napi is not None and not napi.scheduled:
                    return True
        for flow_id in self.tx_nic._tx_flows:
            queue, napi = target(flow_id)
            if queue in head_queues:
                continue
            if napi is not None and not napi.scheduled:
                return True
        return False

    def _disarm(self) -> None:
        wake = self._wake
        if wake is not None:
            wake.cancel()
            self._wake = None

    def _on_wake(self) -> None:
        self._wake = None
        engine = self.engine
        now = engine.now
        # Overdue work first (this also runs any drain producing the train
        # that arrives exactly now: drains always precede their arrivals).
        self.settle(now)
        if self.inflight and self.inflight[0].arrival_ns == now:
            # An arrival lands exactly at this instant. Other events queued
            # for the same instant may precede it in the legacy order (their
            # insertion decides); any of them that can observe wire state
            # settles through its own hook at the right position, so the
            # wake only has to fire *last*: requeue to the end of the
            # instant until the queue at `now` is clear. The peer pipeline's
            # wake delivers onto the other host and commutes with ours.
            peer_wake = self.peer._wake if self.peer is not None else None
            ignore = (peer_wake,) if peer_wake is not None else ()
            if engine.has_pending_now(ignore=ignore):
                self._wake = engine.schedule_at(now, self._on_wake)
                self._wake_time = now
                return
        self.settle(now, include_eq_arrivals=True)
        self.rearm()

    def _target(self, flow_id) -> tuple:
        """``(RxQueue, NapiContext)`` for ``flow_id``, cached (steering is
        static once a flow exists; aRFS installs happen at registration)."""
        entry = self._flow_target.get(flow_id)
        if entry is None:
            queue = self.rx_nic.steering.queue_for(flow_id)
            entry = self._flow_target[flow_id] = (queue, queue.napi)
        return entry

    def _has_idle_target(self) -> bool:
        if self.rx_nic.idle_napis == 0:
            return False  # saturated path: every context is mid-poll
        target = self._target
        for train in self.inflight:
            for flow_id in train.flow_frames:
                napi = target(flow_id)[1]
                if napi is not None and not napi.scheduled:
                    return True
        for flow_id in self.tx_nic._tx_flows:
            napi = target(flow_id)[1]
            if napi is not None and not napi.scheduled:
                return True
        return False

    def _plan_first_arrival(self) -> Tuple[Optional[int], Optional[dict]]:
        """Exact ``(arrival, flow_frames)`` of the next train, without mutating.

        Mirrors ``_run_drain``: the pacing-deferral chain, then a pure peek
        of the round-robin batch, then per-frame serialization (sums of the
        same memoized integer delays the real drain will use). Loss draws do
        not alter timing, so the plan matches the eventual replay exactly;
        an all-dropped batch merely yields one spurious (harmless) wake.
        """
        vt = self.drain_due
        if vt is None:
            return None, None
        version, cached_due, arrival, per_flow = self._plan_cache
        if version == self._tx_version and cached_due == vt:
            return arrival, per_flow
        link = self.link
        nic = self.tx_nic
        max_ahead = 2 * nic.TX_BATCH_FRAMES * nic.mtu
        bandwidth = link.bandwidth_bps
        while True:
            backlog = link.backlog_bytes_at(vt)
            if backlog <= max_ahead:
                break
            vt += transmission_time_ns(backlog - max_ahead, bandwidth)
        batch = nic._peek_tx_batch()
        if not batch:
            self._plan_cache = (self._tx_version, self.drain_due, None, None)
            return None, None
        finish = max(vt, link._free_at)
        per_flow: dict = {}
        tt_cache = link._tt_cache
        tt_get = tt_cache.get
        for frame in batch:
            wire_bytes = frame.wire_bytes
            dt = tt_get(wire_bytes)
            if dt is None:
                dt = tt_cache[wire_bytes] = transmission_time_ns(
                    wire_bytes, bandwidth
                )
            finish += dt
            fid = frame.flow_id
            per_flow[fid] = per_flow.get(fid, 0) + 1
        arrival = link.arrival_time(finish)
        self._plan_cache = (self._tx_version, self.drain_due, arrival, per_flow)
        return arrival, per_flow
