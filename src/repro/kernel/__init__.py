"""Linux kernel network stack substrate: skbs, memory, GRO/GSO, NAPI,
sockets, TCP, scheduling, and the per-host data-path wiring."""

from .skb import Skb
from .mem import PageAllocator
from .gro import GroEngine
from .host import Host

__all__ = ["Skb", "PageAllocator", "GroEngine", "Host"]
