"""Generic Receive Offload (§2.1).

GRO runs in the NAPI softirq and merges in-sequence frames of the same flow
into larger skbs (up to 64KB) before TCP/IP processing, amortizing per-skb
protocol costs. Merging breaks when:

* the merged skb would exceed 64KB,
* a frame is out of sequence for its flow,
* too many distinct flows are held at once (the kernel's ``gro_list`` is
  small — interleaved flows evict each other), or
* the NAPI poll ends (everything is flushed to the stack).

The last two are the mechanism behind the paper's §3.5 finding: with many
concurrent flows, each flow contributes few frames per poll, so post-GRO skbs
collapse towards single frames and per-byte processing overheads rise.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from ..constants import MAX_GSO_SIZE
from ..costs.model import CostModel
from .skb import Skb

ChargeItems = List[Tuple[str, float]]

#: Maximum number of flows GRO holds concurrently: 8 hash buckets times
#: MAX_GRO_SKBS (8) entries per bucket in kernel 5.4.
GRO_MAX_HELD_FLOWS = 64


class GroEngine:
    """Per-Rx-queue GRO state."""

    def __init__(
        self,
        costs: CostModel,
        enabled: bool,
        max_merged_bytes: int = MAX_GSO_SIZE,
        max_held_flows: int = GRO_MAX_HELD_FLOWS,
    ) -> None:
        self.costs = costs
        self.tables = costs.tables()
        self.enabled = enabled
        self.max_merged_bytes = max_merged_bytes
        self.max_held_flows = max_held_flows
        self._held: "OrderedDict[int, Skb]" = OrderedDict()
        # shared immutable charge batches for the two steady-state outcomes
        # (merge succeeded / new flow held, nothing flushed) — identical
        # content and order to the lists the general path builds
        tables = self.tables
        self._merge_items: Tuple = (tables.gro_receive_item,) + tables.gro_merge_pair
        self._recv_only_items: Tuple = (tables.gro_receive_item,)
        # statistics
        self.frames_in = 0
        self.skbs_out = 0
        self.merges = 0

    def receive(self, skb: Skb) -> Tuple[ChargeItems, List[Skb]]:
        """Feed one frame-skb into GRO.

        Returns CPU charge items plus any skbs flushed to the stack as a
        consequence (completed merges evicted by this frame).
        """
        self.frames_in += 1
        if not self.enabled:
            self.skbs_out += 1
            return (), [skb]

        held_map = self._held
        flow_id = skb.flow_id
        held = held_map.get(flow_id)
        if held is not None:
            payload = skb.payload_bytes
            if (
                held.payload_bytes + payload <= self.max_merged_bytes
                and held.seq + held.payload_bytes == skb.seq
                and held.page_node == skb.page_node
            ):
                held.payload_bytes += payload
                held.nframes += skb.nframes
                held.pages += skb.pages
                held.regions.extend(skb.regions)
                held.ecn = held.ecn or skb.ecn
                if len(held_map) > 1:  # moving the only entry is a no-op
                    held_map.move_to_end(flow_id)
                self.merges += 1
                # the merged-in skb struct is released
                return self._merge_items, ()
            # cannot merge: flush what we held for this flow
            del held_map[flow_id]
            flushed = [held]
        else:
            flushed = []

        held_map[flow_id] = skb
        held_map.move_to_end(flow_id)
        if len(held_map) > self.max_held_flows:
            _, evicted = held_map.popitem(last=False)
            flushed.append(evicted)
        if not flushed:
            return self._recv_only_items, ()
        self.skbs_out += len(flushed)
        return (
            (self.tables.gro_receive_item, self.tables.gro_flush(len(flushed))),
            flushed,
        )

    def receive_record(self, record, frame_to_skb) -> Tuple[ChargeItems, List[Skb]]:
        """Feed one Rx frame record, building an Skb only when one is kept.

        Same state machine as :meth:`receive` (which remains the reference
        implementation and must stay in lockstep), but the common merge
        outcome folds the raw frame record straight into the held skb —
        skipping the per-frame Skb allocation entirely. ``frame_to_skb``
        converts the record when a new skb must actually be held or passed
        through.
        """
        self.frames_in += 1
        if not self.enabled:
            self.skbs_out += 1
            return (), [frame_to_skb(record)]

        frame = record.frame
        held_map = self._held
        flow_id = frame.flow_id
        held = held_map.get(flow_id)
        if held is not None:
            payload = frame.payload_bytes
            if (
                held.payload_bytes + payload <= self.max_merged_bytes
                and held.seq + held.payload_bytes == frame.seq
                and held.page_node == record.page_node
            ):
                held.payload_bytes += payload
                held.nframes += record.nframes
                held.pages += record.pages
                held.regions.append((record.region_id, payload))
                held.ecn = held.ecn or frame.ecn_marked
                if len(held_map) > 1:  # moving the only entry is a no-op
                    held_map.move_to_end(flow_id)
                self.merges += 1
                # the merged-in skb struct is released
                return self._merge_items, ()
            # cannot merge: flush what we held for this flow
            del held_map[flow_id]
            flushed = [held]
        else:
            flushed = []

        held_map[flow_id] = frame_to_skb(record)
        held_map.move_to_end(flow_id)
        if len(held_map) > self.max_held_flows:
            _, evicted = held_map.popitem(last=False)
            flushed.append(evicted)
        if not flushed:
            return self._recv_only_items, ()
        self.skbs_out += len(flushed)
        return (
            (self.tables.gro_receive_item, self.tables.gro_flush(len(flushed))),
            flushed,
        )

    def receive_run(
        self,
        records,
        start: int,
        end: int,
        endpoints,
        items: ChargeItems,
        frame_to_skb,
        deliver,
    ) -> None:
        """Feed a run of consecutive data records (``records[start:end]``).

        Per-record semantics are exactly :meth:`receive_record` driven by the
        NAPI poll loop — records whose flow has no live endpoint are skipped
        (the poll's stray-frame ``continue``), charge items land on ``items``
        in the same order, and every flushed skb is handed to ``deliver``
        immediately after its flush charge. Batching exists purely to hoist
        the per-frame attribute/method lookups out of the hottest loop in
        the simulator; the state machine must stay in lockstep with
        :meth:`receive`.
        """
        if not self.enabled:
            frames = 0
            endpoints_get = endpoints.get
            for i in range(start, end):
                record = records[i]
                if endpoints_get(record.frame.flow_id) is None:
                    continue
                frames += 1
                deliver(frame_to_skb(record))
            self.frames_in += frames
            self.skbs_out += frames
            return
        held_map = self._held
        held_get = held_map.get
        move_to_end = held_map.move_to_end
        popitem = held_map.popitem
        endpoints_get = endpoints.get
        max_bytes = self.max_merged_bytes
        max_held = self.max_held_flows
        merge_items = self._merge_items
        recv_only_items = self._recv_only_items
        gro_receive_item = self.tables.gro_receive_item
        gro_flush = self.tables.gro_flush
        items_extend = items.extend
        items_append = items.append
        frames_in = 0
        merges = 0
        skbs_out = 0
        for i in range(start, end):
            record = records[i]
            frame = record.frame
            flow_id = frame.flow_id
            if endpoints_get(flow_id) is None:
                continue
            frames_in += 1
            held = held_get(flow_id)
            if held is not None:
                payload = frame.payload_bytes
                held_payload = held.payload_bytes
                if (
                    held_payload + payload <= max_bytes
                    and held.seq + held_payload == frame.seq
                    and held.page_node == record.page_node
                ):
                    held.payload_bytes = held_payload + payload
                    held.nframes += record.nframes
                    held.pages += record.pages
                    held.regions.append((record.region_id, payload))
                    if frame.ecn_marked:
                        held.ecn = True
                    if len(held_map) > 1:  # moving the only entry is a no-op
                        move_to_end(flow_id)
                    merges += 1
                    items_extend(merge_items)
                    continue
                del held_map[flow_id]
                flushed_held = held
            else:
                flushed_held = None
            # flow_id is absent either way, so plain insertion already lands
            # the fresh skb at the (most-recent) end of the held map.
            held_map[flow_id] = frame_to_skb(record)
            evicted = None
            if len(held_map) > max_held:
                _, evicted = popitem(last=False)
            if flushed_held is None and evicted is None:
                items_extend(recv_only_items)
                continue
            nflushed = (flushed_held is not None) + (evicted is not None)
            skbs_out += nflushed
            items_append(gro_receive_item)
            items_append(gro_flush(nflushed))
            if flushed_held is not None:
                deliver(flushed_held)
            if evicted is not None:
                deliver(evicted)
        self.frames_in += frames_in
        self.merges += merges
        self.skbs_out += skbs_out

    def flush_all(self) -> Tuple[ChargeItems, List[Skb]]:
        """End of NAPI poll: push everything held up the stack."""
        if not self._held:
            return (), ()
        flushed = list(self._held.values())
        self._held.clear()
        self.skbs_out += len(flushed)
        return (self.tables.gro_flush(len(flushed)),), flushed

    def held_flows(self) -> int:
        return len(self._held)
