"""Generic Receive Offload (§2.1).

GRO runs in the NAPI softirq and merges in-sequence frames of the same flow
into larger skbs (up to 64KB) before TCP/IP processing, amortizing per-skb
protocol costs. Merging breaks when:

* the merged skb would exceed 64KB,
* a frame is out of sequence for its flow,
* too many distinct flows are held at once (the kernel's ``gro_list`` is
  small — interleaved flows evict each other), or
* the NAPI poll ends (everything is flushed to the stack).

The last two are the mechanism behind the paper's §3.5 finding: with many
concurrent flows, each flow contributes few frames per poll, so post-GRO skbs
collapse towards single frames and per-byte processing overheads rise.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from ..constants import MAX_GSO_SIZE
from ..costs.model import CostModel
from .skb import Skb

ChargeItems = List[Tuple[str, float]]

#: Maximum number of flows GRO holds concurrently: 8 hash buckets times
#: MAX_GRO_SKBS (8) entries per bucket in kernel 5.4.
GRO_MAX_HELD_FLOWS = 64


class GroEngine:
    """Per-Rx-queue GRO state."""

    def __init__(
        self,
        costs: CostModel,
        enabled: bool,
        max_merged_bytes: int = MAX_GSO_SIZE,
        max_held_flows: int = GRO_MAX_HELD_FLOWS,
    ) -> None:
        self.costs = costs
        self.tables = costs.tables()
        self.enabled = enabled
        self.max_merged_bytes = max_merged_bytes
        self.max_held_flows = max_held_flows
        self._held: "OrderedDict[int, Skb]" = OrderedDict()
        # shared immutable charge batches for the two steady-state outcomes
        # (merge succeeded / new flow held, nothing flushed) — identical
        # content and order to the lists the general path builds
        tables = self.tables
        self._merge_items: Tuple = (tables.gro_receive_item,) + tables.gro_merge_pair
        self._recv_only_items: Tuple = (tables.gro_receive_item,)
        # statistics
        self.frames_in = 0
        self.skbs_out = 0
        self.merges = 0

    def receive(self, skb: Skb) -> Tuple[ChargeItems, List[Skb]]:
        """Feed one frame-skb into GRO.

        Returns CPU charge items plus any skbs flushed to the stack as a
        consequence (completed merges evicted by this frame).
        """
        self.frames_in += 1
        if not self.enabled:
            self.skbs_out += 1
            return (), [skb]

        held_map = self._held
        flow_id = skb.flow_id
        held = held_map.get(flow_id)
        if held is not None:
            payload = skb.payload_bytes
            if (
                held.payload_bytes + payload <= self.max_merged_bytes
                and held.seq + held.payload_bytes == skb.seq
                and held.page_node == skb.page_node
            ):
                held.payload_bytes += payload
                held.nframes += skb.nframes
                held.pages += skb.pages
                held.regions.extend(skb.regions)
                held.ecn = held.ecn or skb.ecn
                if len(held_map) > 1:  # moving the only entry is a no-op
                    held_map.move_to_end(flow_id)
                self.merges += 1
                # the merged-in skb struct is released
                return self._merge_items, ()
            # cannot merge: flush what we held for this flow
            del held_map[flow_id]
            flushed = [held]
        else:
            flushed = []

        held_map[flow_id] = skb
        held_map.move_to_end(flow_id)
        if len(held_map) > self.max_held_flows:
            _, evicted = held_map.popitem(last=False)
            flushed.append(evicted)
        if not flushed:
            return self._recv_only_items, ()
        self.skbs_out += len(flushed)
        return (
            (self.tables.gro_receive_item, self.tables.gro_flush(len(flushed))),
            flushed,
        )

    def receive_record(self, record, frame_to_skb) -> Tuple[ChargeItems, List[Skb]]:
        """Feed one Rx frame record, building an Skb only when one is kept.

        Same state machine as :meth:`receive` (which remains the reference
        implementation and must stay in lockstep), but the common merge
        outcome folds the raw frame record straight into the held skb —
        skipping the per-frame Skb allocation entirely. ``frame_to_skb``
        converts the record when a new skb must actually be held or passed
        through.
        """
        self.frames_in += 1
        if not self.enabled:
            self.skbs_out += 1
            return (), [frame_to_skb(record)]

        frame = record.frame
        held_map = self._held
        flow_id = frame.flow_id
        held = held_map.get(flow_id)
        if held is not None:
            payload = frame.payload_bytes
            if (
                held.payload_bytes + payload <= self.max_merged_bytes
                and held.seq + held.payload_bytes == frame.seq
                and held.page_node == record.page_node
            ):
                held.payload_bytes += payload
                held.nframes += record.nframes
                held.pages += record.pages
                held.regions.append((record.region_id, payload))
                held.ecn = held.ecn or frame.ecn_marked
                if len(held_map) > 1:  # moving the only entry is a no-op
                    held_map.move_to_end(flow_id)
                self.merges += 1
                # the merged-in skb struct is released
                return self._merge_items, ()
            # cannot merge: flush what we held for this flow
            del held_map[flow_id]
            flushed = [held]
        else:
            flushed = []

        held_map[flow_id] = frame_to_skb(record)
        held_map.move_to_end(flow_id)
        if len(held_map) > self.max_held_flows:
            _, evicted = held_map.popitem(last=False)
            flushed.append(evicted)
        if not flushed:
            return self._recv_only_items, ()
        self.skbs_out += len(flushed)
        return (
            (self.tables.gro_receive_item, self.tables.gro_flush(len(flushed))),
            flushed,
        )

    def flush_all(self) -> Tuple[ChargeItems, List[Skb]]:
        """End of NAPI poll: push everything held up the stack."""
        if not self._held:
            return (), ()
        flushed = list(self._held.values())
        self._held.clear()
        self.skbs_out += len(flushed)
        return (self.tables.gro_flush(len(flushed)),), flushed

    def held_flows(self) -> int:
        return len(self._held)
