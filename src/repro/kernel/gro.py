"""Generic Receive Offload (§2.1).

GRO runs in the NAPI softirq and merges in-sequence frames of the same flow
into larger skbs (up to 64KB) before TCP/IP processing, amortizing per-skb
protocol costs. Merging breaks when:

* the merged skb would exceed 64KB,
* a frame is out of sequence for its flow,
* too many distinct flows are held at once (the kernel's ``gro_list`` is
  small — interleaved flows evict each other), or
* the NAPI poll ends (everything is flushed to the stack).

The last two are the mechanism behind the paper's §3.5 finding: with many
concurrent flows, each flow contributes few frames per poll, so post-GRO skbs
collapse towards single frames and per-byte processing overheads rise.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from ..constants import MAX_GSO_SIZE
from ..costs.model import CostModel
from .skb import Skb

ChargeItems = List[Tuple[str, float]]

#: Maximum number of flows GRO holds concurrently: 8 hash buckets times
#: MAX_GRO_SKBS (8) entries per bucket in kernel 5.4.
GRO_MAX_HELD_FLOWS = 64


class GroEngine:
    """Per-Rx-queue GRO state."""

    def __init__(
        self,
        costs: CostModel,
        enabled: bool,
        max_merged_bytes: int = MAX_GSO_SIZE,
        max_held_flows: int = GRO_MAX_HELD_FLOWS,
    ) -> None:
        self.costs = costs
        self.enabled = enabled
        self.max_merged_bytes = max_merged_bytes
        self.max_held_flows = max_held_flows
        self._held: "OrderedDict[int, Skb]" = OrderedDict()
        # statistics
        self.frames_in = 0
        self.skbs_out = 0
        self.merges = 0

    def receive(self, skb: Skb) -> Tuple[ChargeItems, List[Skb]]:
        """Feed one frame-skb into GRO.

        Returns CPU charge items plus any skbs flushed to the stack as a
        consequence (completed merges evicted by this frame).
        """
        self.frames_in += 1
        if not self.enabled:
            self.skbs_out += 1
            return [], [skb]

        items: ChargeItems = [
            ("dev_gro_receive", self.costs.gro_receive_per_frame)
        ]
        flushed: List[Skb] = []
        held = self._held.get(skb.flow_id)
        if held is not None:
            fits = held.payload_bytes + skb.payload_bytes <= self.max_merged_bytes
            in_seq = held.end_seq == skb.seq
            same_node = held.page_node == skb.page_node
            if fits and in_seq and same_node:
                held.payload_bytes += skb.payload_bytes
                held.nframes += skb.nframes
                held.pages += skb.pages
                held.regions.extend(skb.regions)
                held.ecn = held.ecn or skb.ecn
                self._held.move_to_end(skb.flow_id)
                self.merges += 1
                # the merged-in skb struct is released
                items.append(("kmem_cache_free", self.costs.skb_free_cycles))
                items.append(("skb_put", self.costs.skb_put_cycles))
                return items, flushed
            # cannot merge: flush what we held for this flow
            del self._held[skb.flow_id]
            flushed.append(held)

        self._held[skb.flow_id] = skb
        self._held.move_to_end(skb.flow_id)
        if len(self._held) > self.max_held_flows:
            _, evicted = self._held.popitem(last=False)
            flushed.append(evicted)
        if flushed:
            items.append(
                ("napi_gro_flush", self.costs.gro_flush_per_skb * len(flushed))
            )
            self.skbs_out += len(flushed)
        return items, flushed

    def flush_all(self) -> Tuple[ChargeItems, List[Skb]]:
        """End of NAPI poll: push everything held up the stack."""
        if not self._held:
            return [], []
        flushed = list(self._held.values())
        self._held.clear()
        self.skbs_out += len(flushed)
        items: ChargeItems = [
            ("napi_gro_flush", self.costs.gro_flush_per_skb * len(flushed))
        ]
        return items, flushed

    def held_flows(self) -> int:
        return len(self._held)
