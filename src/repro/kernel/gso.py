"""Segmentation offload on the transmit side (GSO/TSO, §2.1).

A sender skb carries up to 64KB of payload. Before hitting the wire it must
become MTU-sized frames. Three regimes:

* **TSO** — the NIC segments in hardware; the host posts one large skb and
  pays no per-frame CPU cost.
* **GSO** — the network subsystem segments in software just before the
  driver; the host pays a per-produced-segment cost.
* **neither** — TCP itself emits MTU-sized skbs, so every layer above the
  driver pays per-MTU costs (the paper's "No Opt." column; footnote 5 notes
  GSO had to be explicitly disabled for this).
"""

from __future__ import annotations

from typing import List, Tuple

from ..costs.model import CostModel

ChargeItems = List[Tuple[str, float]]


def frames_for(payload_bytes: int, mss: int) -> int:
    """Number of MTU-sized frames needed for ``payload_bytes``."""
    if payload_bytes <= 0:
        return 0
    return (payload_bytes + mss - 1) // mss


def segmentation_charges(
    payload_bytes: int, mss: int, tso: bool, costs: CostModel
) -> Tuple[ChargeItems, int]:
    """CPU charges to segment one skb of ``payload_bytes`` into MTU frames.

    Returns ``(charge_items, nframes)``. With TSO the host pays only the
    per-frame descriptor posting; with software GSO it additionally pays
    segmentation and per-segment skb bookkeeping.
    """
    nframes = frames_for(payload_bytes, mss)
    if nframes <= 1:
        return [], max(1, nframes)
    if tso:
        return [], nframes
    items: ChargeItems = [
        ("gso_segment", costs.gso_segment_per_frame * nframes),
        ("skb_segment", costs.skb_segment_per_seg * nframes),
        ("mlx5e_xmit", costs.driver_tx_per_frame * nframes),
    ]
    return items, nframes
