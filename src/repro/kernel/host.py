"""Per-host wiring of the full data path.

A :class:`Host` owns the hardware (topology, cores, L3/DCA, NIC with one Rx
queue per core) and the kernel state (page allocator, IOMMU, NAPI contexts,
TCP endpoints). Flow steering follows the experiment configuration:

* **aRFS on** — the flow's Rx queue is the one whose IRQ core *is* the
  application core (install may fail when the NIC steering table is full,
  falling back to RSS — the §3.5 all-to-all caveat).
* **aRFS off, worst-case mapping** — IRQs are pinned to a core on a NUMA node
  different from the application's (the paper's deterministic worst case).
* **aRFS off, no pinning** — plain RSS hashing across all queues.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..config import ExperimentConfig
from ..core.profiler import CpuProfiler
from ..costs.model import CostModel
from ..hardware.cache import L3CacheModel
from ..hardware.cpu import Core
from ..hardware.iommu import IommuModel
from ..hardware.nic import Nic
from ..hardware.steering import SteeringEngine
from ..hardware.topology import Topology
from .mem import PageAllocator
from .napi import NapiContext
from .tcp.endpoint import TcpEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from ..core.metrics import MetricsHub
    from ..sim.engine import Engine
    from ..sim.rng import RngStreams


class Host:
    """One server: hardware plus kernel stack instances."""

    def __init__(
        self,
        engine: "Engine",
        name: str,
        config: ExperimentConfig,
        costs: CostModel,
        profiler: CpuProfiler,
        metrics: "MetricsHub",
        rngs: "RngStreams",
        trace=None,
    ) -> None:
        self.engine = engine
        self.name = name
        self.config = config
        self.costs = costs
        self.profiler = profiler
        self.metrics = metrics
        # Per-host trace sink (None unless config.trace): every data-path
        # hook gates on one ``is not None`` check against this reference.
        self.trace = trace.side(name) if trace is not None else None

        host_cfg = config.host
        self.topology = Topology(
            host_cfg.numa_nodes, host_cfg.cores_per_node, host_cfg.nic_numa_node
        )
        for core_id in range(self.topology.total_cores):
            core = Core(
                engine,
                profiler,
                costs,
                name,
                core_id,
                self.topology.node_of_core(core_id),
                host_cfg.cpu_freq_hz,
            )
            self.topology.register_core(core)

        dca_capacity = int(host_cfg.l3_cache_bytes * host_cfg.dca_fraction)
        self.cache = L3CacheModel(
            num_nodes=host_cfg.numa_nodes,
            l3_bytes=host_cfg.l3_cache_bytes,
            dca_capacity_bytes=dca_capacity,
            nic_node=host_cfg.nic_numa_node,
            dca_enabled=host_cfg.dca_enabled,
            dilution_exponent=host_cfg.dca_dilution_exponent,
            rng=rngs.stream(f"dca-{name}"),
        )
        self.allocator = PageAllocator(costs)
        self.iommu = IommuModel(host_cfg.iommu_enabled, costs)

        self.steering = SteeringEngine(
            config.steering,
            rngs.stream(f"steering-{name}"),
            config.nic.arfs_table_capacity,
        )
        self.nic = Nic(
            engine,
            name=f"nic-{name}",
            numa_node=host_cfg.nic_numa_node,
            mtu=config.opts.mtu,
            tso=config.opts.tso_gro,
            lro=config.opts.lro,
            rx_descriptors=config.nic.rx_descriptors,
            steering=self.steering,
            dca=self.cache.dca,  # carries its own enabled flag
        )
        self.nic.trace = self.trace
        # One Rx queue per core, IRQ-affined to that core.
        self.napis: List[NapiContext] = []
        for core in self.topology.cores:
            queue = self.nic.add_rx_queue(core)
            self.napis.append(NapiContext(self, queue))

        self.endpoints: Dict[int, TcpEndpoint] = {}

    # --- construction helpers ----------------------------------------------------

    def core(self, index: int) -> Core:
        return self.topology.cores[index]

    def add_endpoint(
        self, flow_id: int, app_core: Core, flow_tag: str = "long"
    ) -> TcpEndpoint:
        """Create a TCP endpoint for ``flow_id`` pinned to ``app_core`` and
        configure its receive-side steering."""
        if flow_id in self.endpoints:
            raise ValueError(f"duplicate flow id {flow_id} on host {self.name}")
        endpoint = TcpEndpoint(self, flow_id, app_core, flow_tag)
        self.endpoints[flow_id] = endpoint
        self.metrics.register_flow(flow_id, flow_tag)
        self._steer_flow(endpoint)
        # Sender-side working set (application write buffer) warms this
        # node's L3; used by the sender-copy miss heuristic.
        self.cache.register_working_set(
            app_core.numa_node, 2 * self.config.workload.app_write_bytes
        )
        return endpoint

    def _steer_flow(self, endpoint: TcpEndpoint) -> None:
        from ..config import SteeringMode

        app_core = endpoint.app_core
        queue = self.nic.queues[app_core.core_id]
        if self.config.opts.arfs:
            if self.steering.install_arfs(endpoint.flow_id, queue):
                endpoint.softirq_core = app_core
                return
            # table full: flow falls back to RSS
            endpoint.softirq_core = self.steering.queue_for(endpoint.flow_id).irq_core
            return
        if self.config.worst_case_irq_mapping:
            remote_core = self.topology.remote_core_for(app_core)
            remote_queue = self.nic.queues[remote_core.core_id]
            self.steering.pin_flow(endpoint.flow_id, remote_queue)
            endpoint.softirq_core = remote_core
            return
        hash_core = self.steering.queue_for(endpoint.flow_id).irq_core
        if self.config.steering is SteeringMode.RFS:
            # Software RFS: the IRQ lands on the hash-selected core, but
            # TCP processing is forwarded to the application's core.
            endpoint.softirq_core = app_core
        else:
            # RSS and RPS both end up processing on the hash-selected core
            # (RPS re-hashes in software to the same 4-tuple target).
            endpoint.softirq_core = hash_core

    # --- DCA helpers used by endpoints -------------------------------------------------

    def dca_consume(self, region_id: int, nbytes: int):
        if self.nic.dca is None:
            return 0, nbytes
        # DCA occupancy (and hence eviction hazard) is observable here: DMA
        # writes from trains that already arrived must land first.
        pipeline = self.nic.rx_pipeline
        if pipeline is not None:
            pipeline.settle(
                self.engine.now, cur_ins=self.engine.current_inserted_at
            )
        return self.nic.dca.consume(region_id, nbytes)

    def dca_discard(self, region_id: int) -> None:
        if self.nic.dca is not None:
            pipeline = self.nic.rx_pipeline
            if pipeline is not None:
                pipeline.settle(
                    self.engine.now, cur_ins=self.engine.current_inserted_at
                )
            self.nic.dca.discard(region_id)

    # --- queries -----------------------------------------------------------------------------

    def reset_cycle_accounting(self) -> None:
        """Zero every core's busy-cycle counter (end of warmup, alongside
        ``CpuProfiler.reset`` — both record charges at job start, so resetting
        them at the same instant keeps cycle conservation exact)."""
        for core in self.topology.cores:
            core.reset_cycle_accounting()

    def utilization_cores(self, elapsed_ns: int) -> float:
        """Total CPU utilization in units of fully-busy cores."""
        if elapsed_ns <= 0:
            return 0.0
        cycles = self.profiler.total_cycles(self.name)
        return cycles / (self.config.host.cpu_freq_hz * elapsed_ns / 1e9)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name} flows={len(self.endpoints)}>"
