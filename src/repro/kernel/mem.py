"""Kernel page allocation: per-core pagesets over a global free list.

The kernel page allocator keeps a per-core *pageset* (``pcp``) of free pages.
Allocations served from the pageset are cheap; when it runs dry the global
zone free list must be taken (expensive, ``__alloc_pages_nodemask``). Frees go
back to the local pageset; overflowing it triggers an expensive bulk flush
(``free_pcppages_bulk``). Freeing pages that live on a *remote* NUMA node is
significantly more expensive than local frees — one of the two reasons aRFS
helps (§3.1), and the mechanism behind the memory-overhead reduction the paper
observes when per-core traffic drops (§3.2, Fig 5c).

All methods return *charge items* (``(op, cycles)`` tuples) for the caller to
fold into its CPU job, so cycle attribution lands on the core doing the work.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..constants import PAGESET_BATCH_PAGES, PAGESET_CAPACITY_PAGES
from ..costs.model import CostModel

ChargeItems = Sequence[Tuple[str, float]]


class PageAllocator:
    """Per-host page allocator with per-core pagesets."""

    def __init__(
        self,
        costs: CostModel,
        capacity: int = PAGESET_CAPACITY_PAGES,
        batch: int = PAGESET_BATCH_PAGES,
    ) -> None:
        if capacity <= 0 or batch <= 0:
            raise ValueError("pageset capacity and batch must be positive")
        self.costs = costs
        self.capacity = capacity
        self.batch = batch
        self._pcp: Dict[Tuple[str, int], int] = {}
        # Memoized single-item batches for the dominant fast paths (pure
        # pageset alloc, non-overflowing free): shared tuples, callers extend.
        self._pcp_alloc_items: Dict[int, ChargeItems] = {}
        self._local_free_items: Dict[int, ChargeItems] = {}
        self._remote_free_items: Dict[int, ChargeItems] = {}
        # statistics
        self.pcp_allocs = 0
        self.global_allocs = 0
        self.local_frees = 0
        self.remote_frees = 0
        self.global_flushes = 0

    def _level(self, core_key: Tuple[str, int]) -> int:
        return self._pcp.setdefault(core_key, self.capacity)

    def alloc(self, core_key: Tuple[str, int], npages: int) -> ChargeItems:
        """Allocate ``npages`` on the core identified by ``core_key``.

        Shortfalls beyond the pageset refill from the zone free list in
        ``batch``-sized chunks (``rmqueue_bulk``): one per-batch charge plus a
        per-page charge, matching how the kernel amortizes zone-lock costs.
        """
        if npages <= 0:
            return []
        level = self._level(core_key)
        from_pcp = min(level, npages)
        from_global = npages - from_pcp
        self._pcp[core_key] = level - from_pcp
        if not from_global:
            # Fully served from the pageset (the steady-state path).
            self.pcp_allocs += from_pcp
            items = self._pcp_alloc_items.get(from_pcp)
            if items is None:
                items = self._pcp_alloc_items[from_pcp] = (
                    (
                        "page_pool_alloc_pages",
                        self.costs.page_alloc_pcp_cycles * from_pcp,
                    ),
                )
            return items
        items = []
        if from_pcp:
            self.pcp_allocs += from_pcp
            items.append(
                ("page_pool_alloc_pages", self.costs.page_alloc_pcp_cycles * from_pcp)
            )
        if from_global:
            self.global_allocs += from_global
            nbatches = (from_global + self.batch - 1) // self.batch
            items.append(
                (
                    "__alloc_pages_nodemask",
                    self.costs.page_alloc_global_cycles * from_global
                    + self.costs.page_alloc_global_batch_cycles * nbatches,
                )
            )
        return items

    def free(
        self,
        core_key: Tuple[str, int],
        core_node: int,
        npages: int,
        page_node: int,
    ) -> ChargeItems:
        """Free ``npages`` living on NUMA node ``page_node`` from ``core_key``."""
        if npages <= 0:
            return []
        level = self._level(core_key) + npages
        if level <= self.capacity:
            # No pageset overflow (the steady-state path).
            self._pcp[core_key] = level
            if page_node == core_node:
                self.local_frees += npages
                items = self._local_free_items.get(npages)
                if items is None:
                    items = self._local_free_items[npages] = (
                        (
                            "page_frag_free",
                            self.costs.page_free_local_cycles * npages,
                        ),
                    )
            else:
                self.remote_frees += npages
                items = self._remote_free_items.get(npages)
                if items is None:
                    items = self._remote_free_items[npages] = (
                        (
                            "page_frag_free",
                            self.costs.page_free_remote_cycles * npages,
                        ),
                    )
            return items
        items = []
        if page_node == core_node:
            self.local_frees += npages
            items.append(("page_frag_free", self.costs.page_free_local_cycles * npages))
        else:
            self.remote_frees += npages
            items.append(("page_frag_free", self.costs.page_free_remote_cycles * npages))
        if level > self.capacity:
            overflow = level - self.capacity
            level = self.capacity
            self.global_flushes += overflow
            nbatches = (overflow + self.batch - 1) // self.batch
            items.append(
                (
                    "free_pcppages_bulk",
                    self.costs.page_free_global_cycles * overflow
                    + self.costs.page_free_global_batch_cycles * nbatches,
                )
            )
        self._pcp[core_key] = level
        return items

    def pageset_level(self, core_key: Tuple[str, int]) -> int:
        """Current pageset occupancy for a core (for tests/inspection)."""
        return self._level(core_key)
