"""NAPI: IRQ-driven polling of NIC Rx queues (§2.1).

On the first frame after idle, the NIC raises an IRQ; the driver then busy
polls the queue in softirq context — up to ``netdev_budget`` frames per poll —
allocating an skb per completion, feeding GRO, and handing merged skbs to
TCP/IP processing *on the same core* (the RSS/aRFS inline model). Descriptors
are replenished from the page allocator during the poll. While frames remain
pending, polling continues without further IRQs.

Softirq jobs run at higher priority than application jobs on the same core,
so heavy receive traffic delays the application's data copies — the coupling
behind the paper's host-latency/BDP findings (§3.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from ..constants import (
    IRQ_COALESCE_FRAMES,
    IRQ_COALESCE_NS,
    IRQ_IDLE_RESET_NS,
    NAPI_BUDGET_FRAMES,
)
from ..hardware.cpu import PRIORITY_SOFTIRQ
from ..hardware.link import Frame
from .gro import GroEngine
from .skb import Skb

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.nic import RxFrameRecord, RxQueue
    from .host import Host

ChargeItems = List[Tuple[str, float]]


class NapiContext:
    """Per-Rx-queue NAPI instance."""

    def __init__(self, host: "Host", rxq: "RxQueue") -> None:
        self.host = host
        self.rxq = rxq
        self.costs = host.costs
        self.tables = host.costs.tables()
        opts = host.config.opts
        # GRO runs in software unless LRO already merged in the NIC.
        self.gro = GroEngine(self.costs, enabled=opts.tso_gro and not opts.lro)
        self.scheduled = False
        host.nic.idle_napis += 1
        self.polls = 0
        self.irqs = 0
        self._last_activity_ns = -IRQ_IDLE_RESET_NS
        rxq.napi = self
        # Plain attribute, not a property: ``irq_core`` is fixed at RxQueue
        # construction and ``napi.core`` is read on every poll/notify.
        self.core = rxq.irq_core

    def notify(self) -> None:
        """The NIC signals new completions.

        Models adaptive interrupt moderation (Mellanox adaptive-rx): after an
        idle period the IRQ fires immediately (latency mode); under steady
        traffic it is held back until a few frames accumulate or the
        coalescing timer expires (throughput mode).
        """
        self.notify_at(self.host.engine.now)

    def notify_at(self, arrival_ns: int) -> None:
        """``notify`` evaluated as of ``arrival_ns``.

        The frame-train pipeline may replay a delivery after its arrival
        instant (only when the replay is unobservable); every time-dependent
        input here — the idle-reset window, the coalesce deadline, the
        activity stamp — therefore uses the *arrival* time, so a late replay
        produces the exact event-time behaviour of the punctual one. State
        inputs (``pending``, ``_last_activity_ns``) are untouched between
        arrival and replay by construction: they only change under
        ``scheduled`` episodes, which a wake-armed pipeline never spans.
        """
        if self.scheduled:
            return
        self.scheduled = True
        self.host.nic.idle_napis -= 1
        recently_active = arrival_ns - self._last_activity_ns < IRQ_IDLE_RESET_NS
        pending = len(self.rxq.pending)
        if recently_active and pending < IRQ_COALESCE_FRAMES:
            raise_at = arrival_ns + IRQ_COALESCE_NS
            engine = self.host.engine
            if raise_at <= engine.now:
                # The coalesce deadline already passed (the pipeline held the
                # delivery back because the raise needs no event of its own):
                # run it inline at its virtual time.
                self._raise_irq(raise_at)
            else:
                engine.schedule_at(raise_at, self._raise_irq)
        else:
            self._raise_irq(arrival_ns)

    def _raise_irq(self, vt: Optional[int] = None) -> None:
        if vt is None:
            vt = self.host.engine.now
        self.irqs += 1
        self._last_activity_ns = vt
        items: ChargeItems = [("handle_irq_event", self.costs.irq_cycles)]
        self.core.submit_work(
            ("softirq", self.core.core_id), items, self._poll, PRIORITY_SOFTIRQ,
            vt=vt,
        )

    def _take_batch(self) -> Tuple[List["RxFrameRecord"], int]:
        rxq = self.rxq
        pending = rxq.pending
        frames = rxq.pending_frames
        if frames <= NAPI_BUDGET_FRAMES:
            # Whole queue fits in the budget (the common case): take it in
            # one bulk copy instead of a per-record drain loop.
            if not frames:
                return [], 0
            batch = list(pending)
            pending.clear()
            rxq.pending_frames = 0
            return batch, frames
        batch: List["RxFrameRecord"] = []
        frames = 0
        while pending and frames < NAPI_BUDGET_FRAMES:
            record = pending.popleft()
            batch.append(record)
            frames += record.nframes
        rxq.pending_frames -= frames
        return batch, frames

    def _poll(self) -> None:
        # Settle the wire up to this instant before taking a batch: trains
        # that arrived since the last poll consume descriptors and enqueue
        # completions exactly as their per-frame arrival events would have
        # (notify() no-ops while we are scheduled, so timing is unaffected).
        engine = self.host.engine
        pipeline = self.host.nic.rx_pipeline
        if pipeline is not None:
            pipeline.settle(engine.now, cur_ins=engine.current_inserted_at)
        batch, nframes = self._take_batch()
        if not batch:
            self.scheduled = False
            self.host.nic.idle_napis += 1
            if pipeline is not None:
                pipeline.rearm()
            return
        self.polls += 1
        core = self.core
        host = self.host
        tables = self.tables
        now = host.engine.now
        self._last_activity_ns = now

        total_pages = 0
        for record in batch:
            total_pages += record.pages
        items: ChargeItems = list(tables.napi_head(nframes, len(batch)))
        items.extend(host.iommu.unmap_charges(total_pages))
        # Replenish the ring: new pages + fresh IOMMU mappings for them.
        self.rxq.replenish(nframes)
        items.extend(host.allocator.alloc(core.key, total_pages))
        items.extend(host.iommu.map_charges(total_pages))

        deferred: List[Callable[[], None]] = []
        ack_frames: List[Frame] = []
        # skbs whose TCP processing belongs on another core (software RFS):
        # grouped per target core, forwarded as one IPI'd job at poll end.
        remote: dict = {}

        endpoints = host.endpoints
        gro_receive = self.gro.receive_record
        skb_free_item = tables.skb_free_item
        frame_to_skb = self._frame_to_skb
        deliver_skb = self._deliver_skb
        extend = items.extend
        kind_data = Frame.KIND_DATA
        kind_ack = Frame.KIND_ACK
        trace = host.trace
        # One rx_ring sample per data completion: DMA arrival (the record's
        # stamped virtual arrival time, train-correct) to this poll instant.
        ring_record = trace.stage("rx_ring").record if trace is not None else None
        if ring_record is None:
            # Untraced hot path: hand consecutive data records to GRO as one
            # run (identical per-record semantics, per-frame lookups hoisted).
            gro_run = self.gro.receive_run

            def deliver_flushed(skb: Skb) -> None:
                deliver_skb(skb, now, items, deferred, ack_frames, remote)

            i = 0
            n = len(batch)
            while i < n:
                record = batch[i]
                frame = record.frame
                kind = frame.kind
                if kind == kind_data:
                    j = i + 1
                    while j < n and batch[j].frame.kind == kind_data:
                        j += 1
                    gro_run(batch, i, j, endpoints, items,
                            frame_to_skb, deliver_flushed)
                    i = j
                    continue
                endpoint = endpoints.get(frame.flow_id)
                if endpoint is not None:  # else: stray, torn-down flow
                    if kind == kind_ack:
                        items.append(skb_free_item)
                        endpoint.on_ack_frame(frame.ack, core, items, deferred)
                    elif kind == "probe":
                        endpoint.on_probe_frame(items, ack_frames)
                i += 1
        else:
            for record in batch:
                frame = record.frame
                endpoint = endpoints.get(frame.flow_id)
                if endpoint is None:
                    continue  # stray frame for a torn-down flow
                kind = frame.kind
                if kind == kind_data:
                    ring_record(now - record.arrival_ns)
                    gro_items, completed = gro_receive(record, frame_to_skb)
                    extend(gro_items)
                    for done_skb in completed:
                        deliver_skb(done_skb, now, items, deferred, ack_frames, remote)
                elif kind == kind_ack:
                    items.append(skb_free_item)
                    endpoint.on_ack_frame(frame.ack, core, items, deferred)
                elif kind == "probe":
                    endpoint.on_probe_frame(items, ack_frames)

        flush_items, flushed = self.gro.flush_all()
        items.extend(flush_items)
        for done_skb in flushed:
            self._deliver_skb(done_skb, now, items, deferred, ack_frames, remote)

        def done() -> None:
            for action in deferred:
                action()
            if ack_frames:
                self.host.nic.transmit(ack_frames)
            for target_core, skbs in remote.items():
                self._forward_to_core(target_core, skbs)
            # Trains that arrived while the poll job ran must land in the
            # pending queue before the repoll decision (their per-frame
            # arrival events fired before this completion in the legacy path).
            engine = self.host.engine
            pipeline = self.host.nic.rx_pipeline
            if pipeline is not None:
                pipeline.settle(engine.now, cur_ins=engine.current_inserted_at)
            if self.rxq.pending:
                # Budget exhausted with work left: repoll without a new IRQ.
                self.core.submit_work(
                    ("softirq", self.core.core_id),
                    [("net_rx_action", self.costs.napi_poll_overhead * 0.3)],
                    self._poll,
                    PRIORITY_SOFTIRQ,
                )
            else:
                self.scheduled = False
                self.host.nic.idle_napis += 1
                if pipeline is not None:
                    # This context just went idle: future arrivals need a
                    # punctual wake to raise the IRQ at the right instant.
                    pipeline.rearm()

        core.submit_work(("softirq", core.core_id), items, done, PRIORITY_SOFTIRQ)

    def _frame_to_skb(self, record: "RxFrameRecord") -> Skb:
        # Fields are assigned directly (bypassing Skb.__init__): this runs
        # once per received wire frame and is the hottest allocation site.
        frame = record.frame
        payload = frame.payload_bytes
        # trace_ns is deliberately left unset: it is only read under
        # config.trace, and that path stamps it before any read.
        skb = Skb.__new__(Skb)  # repro-lint: allow[slots-incomplete-new] trace_ns lazily stamped on the trace path
        skb.flow_id = frame.flow_id
        skb.seq = frame.seq
        skb.payload_bytes = payload
        skb.nframes = record.nframes
        skb.pages = record.pages
        skb.page_node = record.page_node
        skb.regions = [(record.region_id, payload)]
        skb.napi_ns = record.arrival_ns
        skb.is_retransmit = False
        skb.ecn = frame.ecn_marked
        return skb

    def _deliver_skb(
        self,
        skb: Skb,
        now: int,
        items: ChargeItems,
        deferred: List[Callable[[], None]],
        ack_frames: List[Frame],
        remote: dict,
    ) -> None:
        skb.napi_ns = now
        endpoint = self.host.endpoints.get(skb.flow_id)
        if endpoint is None:
            return
        self.host.metrics.record_rx_skb(self.host.name, skb.payload_bytes)
        if endpoint.softirq_core is not self.core:
            # Software steering (RPS/RFS): enqueue onto the target core's
            # backlog and IPI it; the driver-side cost lands here.
            items.append(
                ("net_rx_action", self.costs.rps_backlog_enqueue_cycles)
            )
            remote.setdefault(endpoint.softirq_core, []).append((endpoint, skb))
            return
        endpoint.on_data_skb(skb, self.core, items, deferred, ack_frames)

    def _forward_to_core(self, target_core, pairs) -> None:
        """Run the TCP half of a poll batch on the steering target core."""
        items: ChargeItems = [("handle_irq_event", self.costs.irq_cycles * 0.5)]
        deferred: List[Callable[[], None]] = []
        ack_frames: List[Frame] = []
        for endpoint, skb in pairs:
            endpoint.on_data_skb(skb, target_core, items, deferred, ack_frames)

        def done() -> None:
            for action in deferred:
                action()
            if ack_frames:
                self.host.nic.transmit(ack_frames)

        target_core.submit_work(
            ("softirq", target_core.core_id), items, done, PRIORITY_SOFTIRQ
        )
