"""Application threads and their scheduling.

An :class:`AppThread` runs a generator ("the application") that yields
syscall operations (see :mod:`repro.kernel.syscall`). The kernel executes each
operation — charging CPU on the thread's core — and resumes the generator
with the result. Threads block inside the kernel (empty socket on ``recv``,
full send buffer on ``send``); wakeups charge scheduler cycles on the *waking*
core, and the thread's next job charges a context switch on its own core,
which is how the paper's "scheduling" category grows when cores go idle
between bursts (§3.2) or many threads share a core (§3.3, §3.7).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.cpu import Core
    from .host import Host


class ThreadState(enum.Enum):
    NEW = "new"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"


class AppThread:
    """One application thread pinned to a core."""

    def __init__(
        self,
        name: str,
        host: "Host",
        core: "Core",
        body_factory: Callable[["AppThread"], Generator],
    ) -> None:
        self.name = name
        self.host = host
        self.core = core
        self.state = ThreadState.NEW
        self._body_factory = body_factory
        self._gen: Optional[Generator] = None

    def start(self) -> None:
        """Begin executing the application body."""
        if self.state is not ThreadState.NEW:
            raise RuntimeError(f"thread {self.name} already started")
        self.state = ThreadState.RUNNABLE
        self._gen = self._body_factory(self)
        self._advance(None)

    def _advance(self, value: Any) -> None:
        """Resume the generator with ``value`` and execute the next syscall."""
        assert self._gen is not None
        try:
            op = self._gen.send(value)
        except StopIteration:
            self.state = ThreadState.DONE
            return
        op.execute(self)

    def complete_op(self, value: Any) -> None:
        """Called by the kernel when the thread's pending operation finishes."""
        if self.state is ThreadState.DONE:
            return
        self.state = ThreadState.RUNNABLE
        self._advance(value)

    def block(self) -> None:
        """Mark the thread as blocked inside the kernel."""
        self.state = ThreadState.BLOCKED

    def __repr__(self) -> str:  # pragma: no cover
        return f"<AppThread {self.name} on {self.core.host_name}/{self.core.core_id}>"


def charge_wakeup(waker_core: "Core") -> None:
    """Charge scheduler cycles for waking a blocked thread.

    The charge lands on the waking core (as ``try_to_wake_up`` does in Linux);
    it is recorded instantaneously rather than occupying core time, a <2%
    approximation documented in DESIGN.md.
    """
    waker_core.charge_inline("try_to_wake_up", waker_core.costs.wakeup_cycles)
