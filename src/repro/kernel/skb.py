"""Socket buffer (skb) model.

An :class:`Skb` carries metadata only — payloads are byte counts plus cache
*regions* (references to where the NIC DMA'd the data), mirroring how the real
stack moves pointers rather than bytes (§2.1: payload is copied exactly once,
between user and kernel space).
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class Skb:
    """A socket buffer: one unit of in-kernel packet processing."""

    __slots__ = (
        "flow_id",
        "seq",
        "payload_bytes",
        "nframes",
        "pages",
        "page_node",
        "regions",
        "napi_ns",
        "is_retransmit",
        "ecn",
        "trace_ns",
    )

    def __init__(
        self,
        flow_id: int,
        seq: int,
        payload_bytes: int,
        nframes: int = 1,
        pages: int = 0,
        page_node: int = 0,
        regions: Optional[List[Tuple[int, int]]] = None,
        napi_ns: Optional[int] = None,
        is_retransmit: bool = False,
    ) -> None:
        self.flow_id = flow_id
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.nframes = nframes
        self.pages = pages
        self.page_node = page_node
        # (region_id, nbytes) pairs naming the DMA regions backing the payload.
        self.regions = regions if regions is not None else []
        self.napi_ns = napi_ns
        self.is_retransmit = is_retransmit
        self.ecn = False
        # Socket-enqueue stamp for tracing; only assigned (and only read)
        # when tracing is on, so the __new__ fast path may leave it unset.
        self.trace_ns = None

    @property
    def end_seq(self) -> int:
        return self.seq + self.payload_bytes

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Skb flow={self.flow_id} seq={self.seq} len={self.payload_bytes} "
            f"frames={self.nframes}>"
        )
