"""Receive-side socket queue.

Holds in-order skbs until the application's ``recv`` copies them to
userspace. Supports partial consumption of the head skb (an application read
can end mid-skb); DMA regions are consumed region-by-region at copy time,
which is when L3 hit/miss is determined (§3.1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from .skb import Skb


class Socket:
    """Per-connection receive queue with byte-level accounting."""

    def __init__(self, flow_id: int, rx_buffer_bytes: int) -> None:
        self.flow_id = flow_id
        self.rx_buffer_bytes = rx_buffer_bytes
        self._queue: Deque[Skb] = deque()
        self._head_offset = 0  # bytes of the head skb already consumed
        self.unread_bytes = 0
        self.waiter = None  # set by the syscall layer (RecvOp)

    def enqueue(self, skb: Skb) -> None:
        """Append an in-order skb (called from softirq context)."""
        self._queue.append(skb)
        self.unread_bytes += skb.payload_bytes

    def available(self) -> int:
        return self.unread_bytes

    def peek_skbs(self) -> Tuple[Deque[Skb], int]:
        """Queue contents and head offset (for draining logic)."""
        return self._queue, self._head_offset

    def drain(self, max_bytes: int) -> Tuple[int, List[Tuple[Skb, int, bool]]]:
        """Consume up to ``max_bytes`` from the queue.

        Returns ``(nbytes, portions)`` where each portion is
        ``(skb, bytes_taken, fully_consumed)``. The caller is responsible for
        charging copy costs and freeing fully-consumed skbs.
        """
        if max_bytes <= 0:
            return 0, []
        taken = 0
        portions: List[Tuple[Skb, int, bool]] = []
        while self._queue and taken < max_bytes:
            head = self._queue[0]
            remaining_in_head = head.payload_bytes - self._head_offset
            chunk = min(remaining_in_head, max_bytes - taken)
            taken += chunk
            if chunk == remaining_in_head:
                self._queue.popleft()
                self._head_offset = 0
                portions.append((head, chunk, True))
            else:
                self._head_offset += chunk
                portions.append((head, chunk, False))
        self.unread_bytes -= taken
        return taken, portions

    def free_space(self) -> int:
        """Bytes of receive buffer left."""
        return max(0, self.rx_buffer_bytes - self.unread_bytes)

    def advertised_window(self) -> int:
        """Window advertised to the peer.

        Linux reserves half the buffer for skb metadata overhead
        (``tcp_adv_win_scale=1``), so the advertised window is about half of
        the free buffer space.
        """
        return self.free_space() // 2

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Socket flow={self.flow_id} unread={self.unread_bytes}>"
