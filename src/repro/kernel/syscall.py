"""Blocking socket syscalls yielded by application threads.

Application bodies are generators that ``yield`` these operations; the kernel
executes them (charging CPU on the thread's core) and resumes the generator
with the result:

* ``SendOp`` resumes with the number of bytes written (always all of them —
  it blocks on send-buffer space internally).
* ``RecvOp`` resumes with ``(endpoint, nbytes)`` — it completes once any of
  the watched connections has at least ``min_bytes`` available, then copies
  up to ``max_bytes`` to userspace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from .sched import AppThread
    from .tcp.endpoint import TcpEndpoint


class SendOp:
    """``send(fd, buf, nbytes)`` — blocks until fully copied into the kernel."""

    def __init__(self, endpoint: "TcpEndpoint", nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError("SendOp needs a positive byte count")
        self.endpoint = endpoint
        self.nbytes = nbytes

    def execute(self, thread: "AppThread") -> None:
        self.endpoint.sendmsg(thread, self.nbytes, thread.complete_op)


class RecvOp:
    """``recv``/``epoll_wait+recv`` over one or more connections."""

    def __init__(
        self,
        endpoints: Sequence["TcpEndpoint"],
        max_bytes: int,
        min_bytes: int = 1,
    ) -> None:
        if not endpoints:
            raise ValueError("RecvOp needs at least one endpoint")
        if max_bytes <= 0 or min_bytes <= 0 or min_bytes > max_bytes:
            raise ValueError(
                f"invalid RecvOp sizes: max={max_bytes} min={min_bytes}"
            )
        self.endpoints: List["TcpEndpoint"] = list(endpoints)
        self.max_bytes = max_bytes
        self.min_bytes = min_bytes
        self.thread: "AppThread" = None  # type: ignore[assignment]

    def execute(self, thread: "AppThread") -> None:
        self.thread = thread
        for endpoint in self.endpoints:
            if endpoint.recv_available() >= self.min_bytes:
                self._start_drain(endpoint)
                return
        # Nothing ready: wait on every watched socket.
        for endpoint in self.endpoints:
            endpoint.socket.waiter = self
        thread.block()

    def fulfill(self) -> None:
        """Called from softirq once some watched socket has enough data."""
        for endpoint in self.endpoints:
            if endpoint.socket.waiter is self:
                endpoint.socket.waiter = None
        for endpoint in self.endpoints:
            if endpoint.recv_available() >= self.min_bytes:
                self._start_drain(endpoint)
                return
        # Spurious wakeup (e.g. drained by a racing path): re-arm.
        for endpoint in self.endpoints:
            endpoint.socket.waiter = self
        self.thread.block()

    def _start_drain(self, endpoint: "TcpEndpoint") -> None:
        endpoint.do_recv(
            self.thread,
            self.max_bytes,
            lambda nbytes, ep=endpoint: self.thread.complete_op((ep, nbytes)),
        )
