"""TCP: endpoints, transmit/receive halves, and congestion control."""

from .endpoint import TcpEndpoint
from .ack import AckInfo

__all__ = ["TcpEndpoint", "AckInfo"]
