"""ACK metadata carried by pure-ACK frames."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class AckInfo:
    """Contents of one (possibly duplicate) acknowledgment.

    ``holes`` carries the receiver's view of missing ranges (SACK): the
    sender uses it to retransmit every reported hole instead of one segment
    per RTT (Linux's SACK-based recovery).
    """

    ack_seq: int                 # cumulative ack: next byte expected
    window_bytes: int            # advertised receive window
    dup: bool = False            # duplicate ack (out-of-order data seen)
    holes: List[Tuple[int, int]] = field(default_factory=list)
    ecn_echo: bool = False       # ECN congestion-experienced echo
    ts_echo_ns: Optional[int] = None  # echoed send timestamp for RTT sampling

    def __repr__(self) -> str:  # pragma: no cover
        kind = "dup" if self.dup else "ack"
        return f"<{kind} {self.ack_seq} win={self.window_bytes}>"
