"""Congestion control algorithms (§3.10: CUBIC default, plus BBR and DCTCP)."""

from .base import CongestionController
from .reno import RenoCC
from .cubic import CubicCC
from .dctcp import DctcpCC
from .bbr import BbrCC
from ....config import CongestionControl


def make_congestion_controller(
    algorithm: CongestionControl, mss: int, init_cwnd_segments: int
) -> CongestionController:
    """Instantiate the configured congestion controller."""
    classes = {
        CongestionControl.RENO: RenoCC,
        CongestionControl.CUBIC: CubicCC,
        CongestionControl.DCTCP: DctcpCC,
        CongestionControl.BBR: BbrCC,
    }
    try:
        cls = classes[algorithm]
    except KeyError:
        raise ValueError(f"unknown congestion control: {algorithm}") from None
    return cls(mss, init_cwnd_segments)


__all__ = [
    "CongestionController",
    "RenoCC",
    "CubicCC",
    "DctcpCC",
    "BbrCC",
    "make_congestion_controller",
]
