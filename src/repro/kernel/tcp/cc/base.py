"""Congestion controller interface.

All algorithms operate in bytes. The transmit half calls the hooks below;
``cwnd_bytes`` is read before emitting each burst. Pacing algorithms (BBR)
additionally expose a pacing rate, which routes transmissions through the
qdisc pacing timer — the source of BBR's extra sender-side scheduling
overhead in Fig 13b.
"""

from __future__ import annotations


class CongestionController:
    """Base class for congestion control algorithms."""

    #: Whether transmissions must be paced through the qdisc timer (BBR).
    uses_pacing = False

    def __init__(self, mss: int, init_cwnd_segments: int) -> None:
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss
        self.cwnd_bytes = mss * init_cwnd_segments
        self.ssthresh_bytes = float("inf")
        self.in_recovery = False

    # --- hooks --------------------------------------------------------------

    def on_ack(self, acked_bytes: int, rtt_ns: int, ecn_echo: bool, now_ns: int) -> None:
        """New data acknowledged."""
        raise NotImplementedError

    def on_dup_ack(self, now_ns: int) -> None:
        """A duplicate ACK arrived (not yet a loss signal)."""

    def on_loss(self, now_ns: int) -> None:
        """Fast-retransmit-triggering loss detected."""
        raise NotImplementedError

    def on_timeout(self, now_ns: int) -> None:
        """Retransmission timeout fired."""
        self.ssthresh_bytes = max(2 * self.mss, self.cwnd_bytes // 2)
        self.cwnd_bytes = self.mss
        self.in_recovery = False

    def on_recovery_exit(self, now_ns: int) -> None:
        """All data outstanding at loss detection has been acknowledged."""
        self.in_recovery = False

    def pacing_rate_bps(self) -> float:
        """Pacing rate in bits/sec (only meaningful when ``uses_pacing``)."""
        raise NotImplementedError

    def quiescent(self) -> bool:
        """True when the window is in steady ACK-clocked growth/hold.

        Consulted by the flow express gate (:mod:`repro.kernel.tcp.express`):
        quiescent flows may route their retransmission timer through the
        engine's lazy express lane instead of eagerly re-arming a wheel event
        per ACK. Purely a fast-path heuristic — both timer mechanics are
        byte-identical — so algorithms should return False whenever their
        window is mid-reaction and timer churn is likely (recovery, ECN
        backoff, probing), where eager re-arms are cheap anyway.
        """
        return not self.in_recovery

    # --- helpers ------------------------------------------------------------------

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd_bytes < self.ssthresh_bytes

    def _clamp(self) -> None:
        self.cwnd_bytes = max(self.mss, int(self.cwnd_bytes))
