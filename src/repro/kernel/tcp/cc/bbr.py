"""BBR congestion control (Cardwell et al., 2016), simplified.

Tracks bottleneck bandwidth (windowed-max delivery rate) and min RTT, paces
at ``pacing_gain * btl_bw`` cycling gains to probe, and caps inflight with
``cwnd = cwnd_gain * BDP``. Transmissions go through the fq/qdisc pacing
timer — repeated pacer wakeups are the extra sender-side scheduling overhead
the paper measures in Fig 13b.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from .base import CongestionController

#: Gain cycle used in the ProbeBW phase.
PROBE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
STARTUP_GAIN = 2.885
CWND_GAIN = 2.0
#: TSO/GSO send quantum at high pacing rates (64KB).
SEND_QUANTUM_BYTES = 64 * 1024
#: Bandwidth filter window, in gain-cycle phases.
BW_FILTER_LEN = 10


class BbrCC(CongestionController):
    """Simplified BBR: startup + ProbeBW gain cycling."""

    uses_pacing = True

    def __init__(self, mss: int, init_cwnd_segments: int) -> None:
        super().__init__(mss, init_cwnd_segments)
        self._bw_samples: Deque[Tuple[int, float]] = deque(maxlen=BW_FILTER_LEN)
        self._rtt_samples: Deque[Tuple[int, int]] = deque()
        self._in_startup = True
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._cycle_index = 0
        self._cycle_started_ns = 0
        self._last_ack_ns = -1
        self._pending_delivered = 0
        self._init_rate_bps = 8 * self.cwnd_bytes * 1e9 / 1e6  # cwnd per 1ms guess

    # --- estimators ---------------------------------------------------------

    @property
    def btl_bw_bps(self) -> float:
        if not self._bw_samples:
            return self._init_rate_bps
        return max(sample for _, sample in self._bw_samples)

    #: min-RTT filter window (tcp_bbr uses 10s; scaled to simulation length).
    MIN_RTT_WINDOW_NS = 10_000_000

    @property
    def min_rtt_ns(self) -> float:
        if not self._rtt_samples:
            return 1e5
        return min(rtt for _, rtt in self._rtt_samples)

    def _bdp_bytes(self) -> int:
        return max(4 * self.mss, int(self.btl_bw_bps / 8 * self.min_rtt_ns / 1e9))

    # --- hooks ---------------------------------------------------------------------

    def on_ack(self, acked_bytes: int, rtt_ns: int, ecn_echo: bool, now_ns: int) -> None:
        if rtt_ns > 0:
            self._rtt_samples.append((now_ns, rtt_ns))
            horizon = now_ns - self.MIN_RTT_WINDOW_NS
            while self._rtt_samples and self._rtt_samples[0][0] < horizon:
                self._rtt_samples.popleft()
        # Delivery-rate sample: all bytes acked since the previous distinct
        # ACK timestamp, over that gap (ACKs processed in one softirq batch
        # share a timestamp, so their bytes are pooled into one sample).
        if self._last_ack_ns < 0:
            self._last_ack_ns = now_ns
        self._pending_delivered += acked_bytes
        if now_ns > self._last_ack_ns:
            gap = now_ns - self._last_ack_ns
            delivery_rate = self._pending_delivered * 8 * 1e9 / gap
            # cap at plausible wire rates to filter ack-compression spikes
            self._bw_samples.append((now_ns, min(delivery_rate, 120e9)))
            self._pending_delivered = 0
            self._last_ack_ns = now_ns

        if self._in_startup:
            bw = self.btl_bw_bps
            if bw > self._full_bw * 1.25:
                self._full_bw = bw
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= 3:
                    self._in_startup = False
                    self._cycle_started_ns = now_ns
        elif now_ns - self._cycle_started_ns > self.min_rtt_ns:
            self._cycle_index = (self._cycle_index + 1) % len(PROBE_GAINS)
            self._cycle_started_ns = now_ns

        # cwnd = gain * BDP plus send-quantum headroom (tcp_bbr adds three
        # send quanta so TSO-sized bursts are never inflight-starved by a
        # min_rtt probe taken on an unloaded path).
        self.cwnd_bytes = int(CWND_GAIN * self._bdp_bytes()) + 3 * SEND_QUANTUM_BYTES
        self._clamp()

    def on_loss(self, now_ns: int) -> None:
        # BBR does not react to isolated losses with multiplicative decrease.
        self.in_recovery = True

    def on_timeout(self, now_ns: int) -> None:
        self.cwnd_bytes = max(4 * self.mss, self.cwnd_bytes // 2)
        self.in_recovery = False

    def pacing_rate_bps(self) -> float:
        gain = STARTUP_GAIN if self._in_startup else PROBE_GAINS[self._cycle_index]
        return max(1e6, gain * self.btl_bw_bps)

    def quiescent(self) -> bool:
        # Startup doubles the rate every round and ProbeBW's up/down gains
        # swing inflight around the BDP — only the cruise phase of the gain
        # cycle holds the window steady enough to call the flow quiescent.
        if self._in_startup or self.in_recovery:
            return False
        return PROBE_GAINS[self._cycle_index] == 1.0
