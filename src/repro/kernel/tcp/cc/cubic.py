"""TCP CUBIC (Linux default; RFC 8312 shape).

Window growth in congestion avoidance follows the cubic function
``W(t) = C * (t - K)^3 + W_max`` of the time since the last loss, with
fast convergence on repeated losses.
"""

from __future__ import annotations

from .base import CongestionController

#: CUBIC scaling constant (RFC 8312), in (segments/second^3) units.
CUBIC_C = 0.4
#: Multiplicative decrease factor.
CUBIC_BETA = 0.7


class CubicCC(CongestionController):
    """CUBIC congestion control."""

    def __init__(self, mss: int, init_cwnd_segments: int) -> None:
        super().__init__(mss, init_cwnd_segments)
        self._w_max_segments = 0.0
        self._epoch_start_ns: int = -1
        self._k_seconds = 0.0

    # --- internals --------------------------------------------------------------

    def _cubic_window_segments(self, now_ns: int) -> float:
        if self._epoch_start_ns < 0:
            self._epoch_start_ns = now_ns
            cwnd_seg = self.cwnd_bytes / self.mss
            if cwnd_seg < self._w_max_segments:
                self._k_seconds = ((self._w_max_segments - cwnd_seg) / CUBIC_C) ** (1 / 3)
            else:
                self._k_seconds = 0.0
                self._w_max_segments = cwnd_seg
        t = (now_ns - self._epoch_start_ns) / 1e9
        return CUBIC_C * (t - self._k_seconds) ** 3 + self._w_max_segments

    # --- hooks ---------------------------------------------------------------------

    def on_ack(self, acked_bytes: int, rtt_ns: int, ecn_echo: bool, now_ns: int) -> None:
        if self.in_recovery:
            return
        if self.in_slow_start:
            self.cwnd_bytes += acked_bytes
            self._clamp()
            return
        target_segments = self._cubic_window_segments(now_ns)
        cwnd_segments = self.cwnd_bytes / self.mss
        if target_segments > cwnd_segments:
            # approach the cubic target over one RTT
            self.cwnd_bytes += int(
                self.mss * (target_segments - cwnd_segments) / max(cwnd_segments, 1.0)
                * (acked_bytes / self.mss)
            )
        else:
            # TCP-friendly region (RFC 8312 §4.2): grow about
            # 3(1-beta)/(1+beta) ~ 0.53 MSS per RTT
            self.cwnd_bytes += int(acked_bytes / max(cwnd_segments, 1.0) * 0.53)
        self._clamp()

    def on_loss(self, now_ns: int) -> None:
        cwnd_seg = self.cwnd_bytes / self.mss
        if cwnd_seg < self._w_max_segments:
            # fast convergence
            self._w_max_segments = cwnd_seg * (1 + CUBIC_BETA) / 2
        else:
            self._w_max_segments = cwnd_seg
        self.ssthresh_bytes = max(2 * self.mss, int(self.cwnd_bytes * CUBIC_BETA))
        # never *grow* the window on a loss signal
        self.cwnd_bytes = min(self.cwnd_bytes, self.ssthresh_bytes)
        self._epoch_start_ns = -1
        self.in_recovery = True
        self._clamp()

    def on_timeout(self, now_ns: int) -> None:
        super().on_timeout(now_ns)
        self._epoch_start_ns = -1
