"""DCTCP congestion control (Alizadeh et al., SIGCOMM 2010).

Scales the window cut to the *fraction* of ECN-marked bytes per window:
``cwnd <- cwnd * (1 - alpha/2)`` where ``alpha`` is an EWMA of the marked
fraction. Receiver-side behaviour is identical to other sender-driven
protocols — the paper's Fig 13c point.
"""

from __future__ import annotations

from .base import CongestionController

#: EWMA gain for the marked fraction (g in the DCTCP paper).
DCTCP_G = 1 / 16


class DctcpCC(CongestionController):
    """DCTCP: ECN-proportional multiplicative decrease."""

    def __init__(self, mss: int, init_cwnd_segments: int) -> None:
        super().__init__(mss, init_cwnd_segments)
        self.alpha = 1.0
        self._acked_bytes_window = 0
        self._marked_bytes_window = 0
        self._window_end_seq_bytes = 0  # bytes acked when current obs window closes
        self._total_acked = 0
        self._avoidance_acc = 0

    def on_ack(self, acked_bytes: int, rtt_ns: int, ecn_echo: bool, now_ns: int) -> None:
        self._total_acked += acked_bytes
        self._acked_bytes_window += acked_bytes
        if ecn_echo:
            self._marked_bytes_window += acked_bytes

        if self._total_acked >= self._window_end_seq_bytes:
            # one observation window (~1 cwnd of data) completed
            if self._acked_bytes_window > 0:
                fraction = self._marked_bytes_window / self._acked_bytes_window
                self.alpha = (1 - DCTCP_G) * self.alpha + DCTCP_G * fraction
                if self._marked_bytes_window > 0 and not self.in_recovery:
                    self.cwnd_bytes = int(self.cwnd_bytes * (1 - self.alpha / 2))
                    self._clamp()
            self._acked_bytes_window = 0
            self._marked_bytes_window = 0
            self._window_end_seq_bytes = self._total_acked + self.cwnd_bytes

        if self.in_recovery:
            return
        if self.in_slow_start and not ecn_echo:
            self.cwnd_bytes += acked_bytes
        else:
            self._avoidance_acc += acked_bytes
            if self._avoidance_acc >= self.cwnd_bytes:
                self._avoidance_acc -= self.cwnd_bytes
                self.cwnd_bytes += self.mss
        self._clamp()

    def on_loss(self, now_ns: int) -> None:
        self.ssthresh_bytes = max(2 * self.mss, self.cwnd_bytes // 2)
        # never *grow* the window on a loss signal
        self.cwnd_bytes = min(self.cwnd_bytes, self.ssthresh_bytes)
        self.in_recovery = True
        self._clamp()

    def quiescent(self) -> bool:
        # ECN marks in the open observation window mean a proportional
        # window cut is coming when it closes — not steady state yet.
        return not self.in_recovery and self._marked_bytes_window == 0
