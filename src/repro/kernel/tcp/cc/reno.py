"""TCP NewReno congestion control: slow start + AIMD."""

from __future__ import annotations

from .base import CongestionController


class RenoCC(CongestionController):
    """Classic AIMD: +1 MSS per RTT in congestion avoidance, halve on loss."""

    def __init__(self, mss: int, init_cwnd_segments: int) -> None:
        super().__init__(mss, init_cwnd_segments)
        self._avoidance_acc = 0  # bytes acked since last cwnd increment

    def on_ack(self, acked_bytes: int, rtt_ns: int, ecn_echo: bool, now_ns: int) -> None:
        if self.in_recovery:
            return
        if self.in_slow_start:
            self.cwnd_bytes += acked_bytes
        else:
            self._avoidance_acc += acked_bytes
            if self._avoidance_acc >= self.cwnd_bytes:
                self._avoidance_acc -= self.cwnd_bytes
                self.cwnd_bytes += self.mss
        self._clamp()

    def on_loss(self, now_ns: int) -> None:
        self.ssthresh_bytes = max(2 * self.mss, self.cwnd_bytes // 2)
        # never *grow* the window on a loss signal
        self.cwnd_bytes = min(self.cwnd_bytes, self.ssthresh_bytes)
        self.in_recovery = True
        self._clamp()
