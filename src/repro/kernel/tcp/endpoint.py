"""TCP endpoint: the per-connection transmit and receive halves on one host.

The transmit half implements §2.1's sender-side path: ``sendmsg`` copies user
data into kernel pages (cost depends on sender L3 warmth), TCP/IP processing
emits GSO-sized skbs when window space allows, segmentation happens in the
NIC (TSO) or in software (GSO), and ACK processing — including loss recovery —
runs in softirq context on whatever core the flow's ACKs are steered to.

The receive half implements the receiver-side path: in-order skbs (post-GRO)
land on the socket queue, ACKs are generated per ``ack_every_n_segments``
skbs (plus delayed-ACK and duplicate-ACK rules), and the application's
``recv`` performs the single payload copy, with L3 hit/miss decided by DCA
residency at copy time.

Convention used throughout: TCP *state* mutates when work is submitted to a
core; externally visible *effects* (frames on the wire, data visible to the
app, thread wakeups) happen when the corresponding CPU job completes.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, Tuple

from ...constants import (
    FRAME_OVERHEAD_BYTES,
    MAX_GSO_SIZE,
    PAGE_BYTES,
    TCP_MIN_RTO_NS,
)
from ...hardware.cpu import PRIORITY_APP, PRIORITY_SOFTIRQ
from ...hardware.link import Frame
from ...units import msec
from ..sched import charge_wakeup
from ..skb import Skb
from ..socket import Socket
from .ack import AckInfo
from .cc import make_congestion_controller
from .express import FlowExpressGate

if TYPE_CHECKING:  # pragma: no cover
    from ...hardware.cpu import Core
    from ..host import Host

ChargeItems = List[Tuple[str, float]]

#: Maximum bytes emitted by one transmit job (tcp_write_xmit quantum).
TX_BURST_BYTES = 256 * 1024
#: Maximum bytes copied user->kernel per sendmsg job.
SENDMSG_CHUNK_BYTES = 256 * 1024
#: Upper bound on the retransmission timer.
TCP_MAX_RTO_NS = msec(200)
#: Zero-window probe interval.
ZERO_WINDOW_PROBE_NS = msec(2)
#: Receive-buffer autotuning period (DRS runs on this cadence here).
AUTOTUNE_PERIOD_NS = 250_000
#: Network RTT the autotuner assumes (direct link, both stacks unloaded).
AUTOTUNE_BASE_RTT_NS = 50_000
#: Fraction of the standing host queue the DRS RTT estimate "sees"; this is
#: what makes the autotuner overshoot on receiver-CPU-bound flows (§3.1).
AUTOTUNE_QUEUE_GAIN = 0.8
#: Autotuned buffers never shrink below this (tcp_rmem-style floor).
AUTOTUNE_FLOOR_BYTES = 64 * 1024


class _Segment:
    """One in-flight transmitted unit (an skb on the retransmit queue)."""

    __slots__ = ("seq", "length", "pages", "retx_ns")

    def __init__(self, seq: int, length: int) -> None:
        self.seq = seq
        self.length = length
        self.pages = (length + PAGE_BYTES - 1) // PAGE_BYTES
        self.retx_ns = -1  # virtual time of the last retransmission

    @property
    def end_seq(self) -> int:
        return self.seq + self.length


class TcpEndpoint:
    """One side of a TCP connection on one host."""

    def __init__(
        self,
        host: "Host",
        flow_id: int,
        app_core: "Core",
        flow_tag: str = "long",
    ) -> None:
        self.host = host
        self.flow_id = flow_id
        self.app_core = app_core
        self.flow_tag = flow_tag
        self.costs = host.costs
        self.tables = host.costs.tables()
        self.engine = host.engine
        cfg = host.config
        self.opts = cfg.opts
        self.tcp_cfg = cfg.tcp
        self.trace = host.trace
        #: FIFO of ``[bytes, write_stamp]`` entries feeding the tx_queue
        #: stage; ``None`` unless tracing (zero overhead when off).
        self._tx_stamps: Optional[Deque] = (
            deque() if self.trace is not None else None
        )

        self.mss = self.opts.mtu - 40  # IP + TCP headers live inside the MTU
        self.gso_size = MAX_GSO_SIZE if self.opts.tso_gro else self.mss
        self.cc = make_congestion_controller(
            self.tcp_cfg.congestion_control, self.mss, self.tcp_cfg.init_cwnd_segments
        )

        self.peer: Optional["TcpEndpoint"] = None
        #: Core where this flow's softirq (NAPI/TCP) processing happens.
        self.softirq_core: "Core" = app_core

        # --- transmit half -------------------------------------------------
        self.snd_una = 0
        self.snd_nxt = 0
        self.unsent_bytes = 0
        #: Total bytes the application has pushed into this socket. The
        #: conservation auditor holds ``app_bytes_written == unsent_bytes +
        #: snd_nxt`` at every instant.
        self.app_bytes_written = 0
        #: Payload bytes re-emitted by retransmissions (duplicate wire bytes).
        self.retx_bytes = 0
        self.sndbuf_bytes = self.tcp_cfg.tx_buffer_bytes
        self.rwnd_bytes = 0  # set when the peer attaches
        self.segments: Deque[_Segment] = deque()
        self._writer: Optional[dict] = None
        self._tx_active = False
        self._dupacks = 0
        self._recovery_point = -1
        self._last_sack_walk_ns = -1
        self._rtt_sample: Optional[Tuple[int, int]] = None  # (seq, sent_ns)
        self.srtt_ns = 0.0
        self.rttvar_ns = 0.0
        self._rto_event = None
        self._rto_backoff = 1
        # --- lazy RTO (express lane, DESIGN.md §13) ------------------------
        #: Per-flow quiescence gate deciding eager vs lazy RTO mechanics.
        self.express_gate = FlowExpressGate(self, self.engine.express_enabled)
        #: Logical retransmission deadline (lazy mode), or None when no
        #: timer is pending. The wheel holds no event for it; at most a few
        #: off-wheel chase entries (``_rto_out``) track it.
        self._rto_deadline: Optional[int] = None
        #: Engine serial reserved by the most recent arm — the position the
        #: eager wheel event would have occupied in same-instant ordering.
        self._rto_serial = 0
        self._rto_inserted_at = 0
        #: Sorted virtual times of outstanding chase entries (strictly
        #: decreasing-min pushes keep them distinct; earliest fires first).
        self._rto_out: List[int] = []
        self._probe_event = None
        self._pacer_event = None
        self.retransmits = 0
        self.timeouts = 0

        # --- receive half ------------------------------------------------------
        self.rcv_nxt = 0
        self.socket = Socket(flow_id, self.tcp_cfg.rx_buffer_bytes)
        self._ooo: List[Skb] = []  # sorted by seq
        self._segs_since_ack = 0
        self._bytes_since_ack = 0
        self._ecn_pending = False
        self._advertised_free = self.socket.rx_buffer_bytes
        self._delack_event = None
        self.acks_sent = 0
        self.dup_acks_sent = 0
        #: Total bytes the application has drained from the socket.
        self.app_bytes_read = 0
        #: Bytes committed to the receive stream (``rcv_nxt`` advanced) whose
        #: socket enqueue is deferred until the softirq CPU job completes.
        self.rx_limbo_bytes = 0
        self._delivered_since_autotune = 0
        if self.tcp_cfg.autotune_rx_buffer:
            # DRS starts from a small buffer and only grows it as the flow
            # demonstrates demand (tcp_rmem default behaviour).
            self.socket.rx_buffer_bytes = min(
                self.socket.rx_buffer_bytes, AUTOTUNE_FLOOR_BYTES
            )
            self.engine.schedule(AUTOTUNE_PERIOD_NS, self._autotune_tick)

    # ------------------------------------------------------------------ setup

    def attach_peer(self, peer: "TcpEndpoint") -> None:
        """Wire the two connection halves together (handshake abstracted)."""
        self.peer = peer
        self.rwnd_bytes = peer.socket.advertised_window()

    def _softirq_context(self, core: "Core"):
        return ("softirq", core.core_id)

    def _lock_cost(self, touching_core: "Core") -> float:
        """Socket-lock cost: contended when app and softirq contexts run on
        different cores (the §3.1 no-aRFS lock overhead)."""
        if self.softirq_core is self.app_core:
            return self.costs.sock_lock_uncontended
        return self.costs.sock_lock_contended

    # =================================================================== TX ===

    def sendmsg(self, thread, nbytes: int, on_complete: Callable[[int], None]) -> None:
        """Application ``send()``: copy ``nbytes`` into the kernel and push."""
        if nbytes <= 0:
            raise ValueError("sendmsg needs a positive byte count")
        state = {
            "thread": thread,
            "remaining": nbytes,
            "total": nbytes,
            "on_complete": on_complete,
            "first": True,
        }
        self._sendmsg_chunk(state)

    def _sndbuf_free(self) -> int:
        used = (self.snd_nxt - self.snd_una) + self.unsent_bytes
        return max(0, self.sndbuf_bytes - used)

    def _sendmsg_chunk(self, state: dict) -> None:
        free = self._sndbuf_free()
        chunk = min(state["remaining"], free, SENDMSG_CHUNK_BYTES)
        thread = state["thread"]
        if chunk <= 0:
            # Blocked on send-buffer space; the ACK path wakes us.
            self._writer = state
            thread.block()
            return

        tables = self.tables
        items: ChargeItems = []
        if state["first"]:
            items.append(tables.syscall_item)
            state["first"] = False
        items.append(("lock_sock", self._lock_cost(self.app_core)))

        miss_rate = self.host.cache.sender_miss_rate(self.app_core.numa_node)
        per_byte = tables.copy_per_byte(miss_rate)
        items.append(("copy_from_user", self.costs.copy_per_call + per_byte * chunk))
        self.host.metrics.record_sender_copy(
            self.host.name, int(chunk * (1 - miss_rate)), int(chunk * miss_rate)
        )

        pages = (chunk + PAGE_BYTES - 1) // PAGE_BYTES
        items.extend(self.host.allocator.alloc(self.app_core.key, pages))
        nskbs = (chunk + self.gso_size - 1) // self.gso_size
        items.extend(tables.sendmsg_skbs(nskbs))

        state["remaining"] -= chunk
        self.unsent_bytes += chunk
        self.app_bytes_written += chunk
        if self._tx_stamps is not None:
            # Stamp at submission: TCP state (and hence transmit eligibility)
            # mutates now; the copy job's cycles are charged separately.
            self._tx_stamps.append([chunk, self.engine.now])

        def done() -> None:
            self.try_push(self.app_core, thread, PRIORITY_APP)
            if state["remaining"] > 0:
                self._sendmsg_chunk(state)
            else:
                state["on_complete"](state["total"])

        self.app_core.submit_work(thread, items, done, PRIORITY_APP)

    # --- emitting data ------------------------------------------------------------

    def _window_space(self) -> int:
        window = min(self.cc.cwnd_bytes, self.rwnd_bytes)
        return max(0, window - (self.snd_nxt - self.snd_una))

    def try_push(self, core: "Core", context, priority: int) -> None:
        """Emit as much unsent data as the window and burst quantum allow."""
        if self._tx_active:
            return
        if self.cc.uses_pacing:
            self._pacer_push(core)
            return
        burst = min(self.unsent_bytes, self._window_space(), TX_BURST_BYTES)
        if burst <= 0:
            self._maybe_schedule_zero_window_probe()
            return
        self._emit_burst(burst, core, context, priority)

    def _emit_burst(self, burst: int, core: "Core", context, priority: int) -> None:
        tables = self.tables
        mss = self.mss
        tso = self.opts.tso_gro
        segments = self.segments
        items: ChargeItems = []
        frames: List[Frame] = []
        nskbs = 0
        emitted = 0
        while emitted < burst:
            size = min(self.gso_size, burst - emitted)
            seq = self.snd_nxt
            segments.append(_Segment(seq, size))
            self.snd_nxt += size
            emitted += size
            nskbs += 1
            seg_items, nframes = tables.segmentation(size, mss, tso)
            items.extend(seg_items)
            frames.extend(self._build_data_frames(seq, size, nframes))
        self.unsent_bytes -= emitted

        trace = self.trace
        xmit_record = None
        submit_now = 0
        if trace is not None:
            # tx_queue closes here: one sample per sendmsg chunk, from its
            # write stamp to this transmit decision. Chunks may span bursts;
            # the head entry is decremented in place until exhausted.
            submit_now = self.engine.now
            queue_record = trace.stage("tx_queue").record
            stamps = self._tx_stamps
            remaining = emitted
            while remaining > 0 and stamps:
                head = stamps[0]
                take = head[0] if head[0] <= remaining else remaining
                head[0] -= take
                remaining -= take
                if head[0] == 0:
                    stamps.popleft()
                    queue_record(submit_now - head[1])
            xmit_record = trace.stage("tx_xmit").record

        items.extend(tables.tx_tail(nskbs))
        pages = (emitted + PAGE_BYTES - 1) // PAGE_BYTES
        items.extend(self.host.iommu.map_charges(pages))
        items.extend(self.host.iommu.unmap_charges(pages))

        if self._rtt_sample is None:
            self._rtt_sample = (self.snd_nxt, self.engine.now)

        self._tx_active = True

        def done() -> None:
            self._tx_active = False
            if xmit_record is not None:
                # Job completions fire at the legacy event time in both wire
                # modes, so engine.now is the NIC-doorbell instant.
                xmit_record(self.engine.now - submit_now)
            self.host.nic.transmit(frames)
            self._arm_rto()
            self.try_push(core, context, priority)

        core.submit_work(context, items, done, priority)

    def _build_data_frames(self, seq: int, size: int, nframes: int) -> List[Frame]:
        frames: List[Frame] = []
        append = frames.append
        mss = self.mss
        flow_id = self.flow_id
        kind_data = Frame.KIND_DATA
        offset = 0
        frame_new = Frame.__new__
        for _ in range(nframes):
            remaining = size - offset
            payload = mss if mss < remaining else remaining
            if payload <= 0:
                break
            # direct slot assignment (bypassing __init__): per-frame hot path
            frame = frame_new(Frame)
            frame.flow_id = flow_id
            frame.kind = kind_data
            frame.seq = seq + offset
            frame.payload_bytes = payload
            frame.wire_bytes = payload + FRAME_OVERHEAD_BYTES
            frame.ack = None
            frame.ecn_marked = False
            frame.trace_ns = None
            append(frame)
            offset += payload
        return frames

    # --- pacing (BBR) -----------------------------------------------------------------

    def _pacer_push(self, core: "Core") -> None:
        """Emit one pacing quantum and schedule the next pacer firing."""
        if self._pacer_event is not None:
            return
        burst = min(self.unsent_bytes, self._window_space(), self.gso_size)
        if burst <= 0:
            self._maybe_schedule_zero_window_probe()
            return
        context = self._softirq_context(self.app_core)
        self._emit_burst(burst, self.app_core, context, PRIORITY_SOFTIRQ)
        rate = self.cc.pacing_rate_bps()
        gap_ns = max(1000, int(burst * 8 * 1e9 / rate))
        self._pacer_event = self.engine.schedule(gap_ns, self._pacer_fire)

    def _pacer_fire(self) -> None:
        self._pacer_event = None
        if self.unsent_bytes <= 0:
            return
        # The fq pacer's hrtimer wakes the transmit path: scheduling overhead.
        context = self._softirq_context(self.app_core)
        items: ChargeItems = [("hrtimer_wakeup", self.costs.pacer_timer_cycles)]
        self.app_core.submit_work(
            context, items, lambda: self._pacer_push(self.app_core), PRIORITY_SOFTIRQ
        )

    # --- ACK processing (runs during sender-side NAPI polls) -------------------------------

    def on_ack_frame(
        self,
        info: AckInfo,
        poll_core: "Core",
        items: ChargeItems,
        deferred: List[Callable[[], None]],
    ) -> None:
        """Process one incoming ACK. Appends CPU charges to the poll job."""
        items.append(self.tables.ack_rx_item)
        now = self.engine.now

        if info.ack_seq > self.snd_una:
            acked = info.ack_seq - self.snd_una
            self.snd_una = info.ack_seq
            self._dupacks = 0
            self._clean_rtx_queue(info.ack_seq, poll_core, items)

            rtt = 0
            if self._rtt_sample is not None and info.ack_seq >= self._rtt_sample[0]:
                rtt = now - self._rtt_sample[1]
                self._rtt_sample = None
                self._update_rtt(rtt)

            if self._recovery_point >= 0:
                if info.ack_seq >= self._recovery_point:
                    # Episode over; fresh holes start a new episode below.
                    self._recovery_point = -1
                    self.cc.on_recovery_exit(now)
                else:
                    # Partial ACK inside recovery: repair the reported holes.
                    self._retransmit_for_holes(info, poll_core, deferred)
            elif info.holes:
                # Losses reported without a dupack run (stretch ACKs).
                self._recovery_point = self.snd_nxt
                self.cc.on_loss(now)
                self._retransmit_for_holes(info, poll_core, deferred)
            self.cc.on_ack(acked, rtt, info.ecn_echo, now)
            self.rwnd_bytes = info.window_bytes
            self._rto_backoff = 1
            self._arm_rto()
            deferred.append(lambda: self._after_ack(poll_core))
        elif info.dup:
            items.append(self.tables.dupack_extra_item)
            self._dupacks += 1
            self.cc.on_dup_ack(now)
            self.rwnd_bytes = max(self.rwnd_bytes, info.window_bytes)
            # Early retransmit (RACK-style): with few segments in flight a
            # third dupack may never arrive, so lower the threshold.
            dupack_threshold = 3 if len(self.segments) > 4 else 1
            if self._dupacks >= dupack_threshold and self._recovery_point < 0:
                self._recovery_point = self.snd_nxt
                self.cc.on_loss(now)
                self._retransmit_for_holes(info, poll_core, deferred)
            elif self._recovery_point >= 0:
                self._retransmit_for_holes(info, poll_core, deferred)
        else:
            # Window update without new data acked.
            self.rwnd_bytes = max(self.rwnd_bytes, info.window_bytes)
            deferred.append(lambda: self._after_ack(poll_core))

    def _after_ack(self, poll_core: "Core") -> None:
        self._wake_writer_if_space(poll_core)
        self.try_push(poll_core, self._softirq_context(poll_core), PRIORITY_SOFTIRQ)

    def _clean_rtx_queue(self, ack_seq: int, core: "Core", items: ChargeItems) -> None:
        freed_skbs = 0
        freed_pages = 0
        while self.segments and self.segments[0].end_seq <= ack_seq:
            segment = self.segments.popleft()
            freed_skbs += 1
            freed_pages += segment.pages
        if self.segments and self.segments[0].seq < ack_seq:
            head = self.segments[0]
            taken = ack_seq - head.seq
            head.seq = ack_seq
            head.length -= taken
            partial_pages = min(head.pages, taken // PAGE_BYTES)
            head.pages -= partial_pages
            freed_pages += partial_pages
        if freed_skbs:
            items.extend(self.tables.clean_rtx(freed_skbs))
        if freed_pages:
            # Sender payload pages are allocated on the app core's node.
            items.extend(
                self.host.allocator.free(
                    core.key, core.numa_node, freed_pages, self.app_core.numa_node
                )
            )
        if not self.segments:
            self._cancel_rto()

    def _wake_writer_if_space(self, waker_core: "Core") -> None:
        if self._writer is None:
            return
        threshold = max(self.gso_size, self.sndbuf_bytes // 3)
        if self._sndbuf_free() < threshold:
            return
        state = self._writer
        self._writer = None
        charge_wakeup(waker_core)
        self._sendmsg_chunk(state)

    def _update_rtt(self, rtt_ns: int) -> None:
        if self.srtt_ns == 0:
            self.srtt_ns = float(rtt_ns)
            self.rttvar_ns = rtt_ns / 2
        else:
            err = rtt_ns - self.srtt_ns
            self.srtt_ns += err / 8
            self.rttvar_ns += (abs(err) - self.rttvar_ns) / 4

    # --- loss recovery (SACK scoreboard, §3.6) ------------------------------------------------

    #: Minimum spacing between scoreboard walks (dupacks arrive in bursts).
    SACK_WALK_SPACING_NS = 20_000
    #: Maximum segments retransmitted per scoreboard walk.
    SACK_RETX_BURST = 64

    def _retransmit_for_holes(
        self, info: AckInfo, core: "Core", deferred: List[Callable[[], None]]
    ) -> None:
        """Retransmit every receiver-reported hole not recently repaired.

        This is the SACK behaviour of the Linux stack: all holes are repaired
        within roughly one RTT, instead of one segment per RTT (NewReno). A
        RACK-style timer allows re-retransmission when a repair itself was
        lost.
        """
        now = self.engine.now
        holes = info.holes
        if not holes:
            if self.segments:
                holes = [(self.segments[0].seq, self.segments[0].end_seq)]
            else:
                return
        if now - self._last_sack_walk_ns < self.SACK_WALK_SPACING_NS:
            return
        self._last_sack_walk_ns = now

        rearm = max(int(self.srtt_ns), 100_000)
        to_retx: List[_Segment] = []
        hole_iter = iter(holes)
        hole = next(hole_iter, None)
        for segment in self.segments:
            if hole is None or len(to_retx) >= self.SACK_RETX_BURST:
                break
            while hole is not None and hole[1] <= segment.seq:
                hole = next(hole_iter, None)
            if hole is None:
                break
            if segment.end_seq <= hole[0]:
                continue
            if segment.seq < hole[1] and segment.end_seq > hole[0]:
                if segment.retx_ns < 0 or now - segment.retx_ns > rearm:
                    segment.retx_ns = now
                    to_retx.append(segment)
        if to_retx:
            deferred.append(lambda: self._retransmit_segments(to_retx, core))

    def _retransmit_segments(self, segments: List[_Segment], core: "Core") -> None:
        items: ChargeItems = []
        frames: List[Frame] = []
        for segment in segments:
            if segment.end_seq <= self.snd_una:
                continue  # acked in the meantime
            self.retransmits += 1
            self.retx_bytes += segment.length
            seg_items, nframes = self.tables.segmentation(
                segment.length, self.mss, self.opts.tso_gro
            )
            items.extend(seg_items)
            items.append(("__skb_clone", self.costs.skb_clone_cycles))
            items.append(("tcp_retransmit_skb", self.costs.tcp_retransmit_cycles))
            items.append(("__qdisc_run", self.costs.qdisc_per_skb))
            items.append(("mlx5e_xmit", self.costs.driver_tx_per_skb))
            frames.extend(
                self._build_data_frames(segment.seq, segment.length, nframes)
            )
        if not frames:
            return
        context = self._softirq_context(core)

        def done() -> None:
            self.host.nic.transmit(frames)
            self._arm_rto()

        core.submit_work(context, items, done, PRIORITY_SOFTIRQ)

    # --- timers ----------------------------------------------------------------------------------

    def _current_rto(self) -> int:
        if self.srtt_ns <= 0:
            base = 4 * TCP_MIN_RTO_NS
        else:
            base = int(self.srtt_ns + 4 * self.rttvar_ns)
        rto = max(TCP_MIN_RTO_NS, base) * self._rto_backoff
        return min(TCP_MAX_RTO_NS, rto)

    def _arm_rto(self) -> None:
        """(Re)arm the retransmission timer for the current send state.

        Two byte-identical mechanics, chosen per arm by the express gate:

        * eager (legacy / perturbed flows): cancel the old wheel event,
          schedule a fresh one. Steady bulk flows do this once per ACK and
          the timer virtually never fires — pure wheel churn.
        * lazy (quiescent flows): record the logical deadline, reserve the
          engine serial the eager ``schedule`` would have consumed (so any
          real timeout interleaves identically), and keep at most one live
          express-lane entry chasing the deadline. Entries whose deadline
          has since receded fire as no-ops and re-chase.
        """
        if not self.segments:
            self._cancel_rto()
            return
        engine = self.engine
        if not self.express_gate.quiescent():
            self._rto_deadline = None  # abort lazy mode; chases go stale
            self._cancel_rto_event()
            self._rto_event = engine.schedule(self._current_rto(), self._rto_fire)
            return
        self._cancel_rto_event()
        self._rto_serial = serial = engine.reserve_serial()
        self._rto_inserted_at = now = engine.now
        self._rto_deadline = deadline = now + self._current_rto()
        out = self._rto_out
        if not out or out[0] > deadline:
            engine.express_at(
                deadline, self._rto_express_fire, serial,
                serial=serial, inserted_at=now,
            )
            insort(out, deadline)

    def _cancel_rto(self) -> None:
        self._rto_deadline = None
        self._cancel_rto_event()

    def _cancel_rto_event(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _rto_fire(self) -> None:
        self._rto_event = None
        if not self.segments:
            return
        self._rto_timeout_body()

    def _rto_express_fire(self, serial: int) -> None:
        """One chase entry reached its virtual time.

        Chase entries cannot be cancelled, so each fire classifies itself
        against the endpoint's logical timer state: the entry carrying the
        serial of the *last* arm at an unmoved deadline is the real timeout;
        everything else is a stale no-op that re-chases if nothing closer to
        the current deadline is still outstanding.
        """
        del self._rto_out[0]  # entries fire earliest-first (distinct times)
        deadline = self._rto_deadline
        if deadline is None:
            return  # timer cancelled (queue drained) or flow went eager
        if serial == self._rto_serial:
            # Serial unchanged since this entry was pushed, so the deadline
            # is unchanged too and has just arrived: genuine timeout.
            if self.segments:
                self._rto_timeout_body()
            return
        if deadline <= self.engine.now:
            # The real timeout already fired this instant (its entry sorts
            # first); the retransmit completion re-arms and re-chases.
            return
        out = self._rto_out
        if not out or out[0] > deadline:
            self.engine.express_at(
                deadline, self._rto_express_fire, self._rto_serial,
                serial=self._rto_serial, inserted_at=self._rto_inserted_at,
            )
            insort(out, deadline)

    def _rto_timeout_body(self) -> None:
        self.timeouts += 1
        self.cc.on_timeout(self.engine.now)
        self._rto_backoff = min(8, self._rto_backoff * 2)
        self._recovery_point = self.snd_nxt
        self._dupacks = 0
        head = self.segments[0]
        head.retx_ns = self.engine.now
        self._retransmit_segments([head], self.softirq_core)

    def _maybe_schedule_zero_window_probe(self) -> None:
        if (
            self.unsent_bytes <= 0
            or self.rwnd_bytes > 0
            or self.segments
            or self._probe_event is not None
        ):
            return
        self._probe_event = self.engine.schedule(ZERO_WINDOW_PROBE_NS, self._probe_fire)

    def _probe_fire(self) -> None:
        self._probe_event = None
        if self.unsent_bytes <= 0 or self.rwnd_bytes > 0:
            self.try_push(
                self.softirq_core,
                self._softirq_context(self.softirq_core),
                PRIORITY_SOFTIRQ,
            )
            return
        frame = Frame(self.flow_id, "probe", self.snd_una, 0, FRAME_OVERHEAD_BYTES)
        self.host.nic.transmit([frame])
        self._maybe_schedule_zero_window_probe_again()

    def _maybe_schedule_zero_window_probe_again(self) -> None:
        if self._probe_event is None and self.rwnd_bytes <= 0 and self.unsent_bytes > 0:
            self._probe_event = self.engine.schedule(
                ZERO_WINDOW_PROBE_NS, self._probe_fire
            )

    # =================================================================== RX ===

    def on_data_skb(
        self,
        skb: Skb,
        poll_core: "Core",
        items: ChargeItems,
        deferred: List[Callable[[], None]],
        ack_frames: List[Frame],
    ) -> None:
        """Process one post-GRO data skb in softirq context."""
        items.extend(self.tables.rx_skb_prefix)
        items.append(("lock_sock", self._lock_cost(poll_core)))
        if skb.ecn:
            self._ecn_pending = True

        rcv_nxt = self.rcv_nxt
        # invariant under front-trimming: seq += d, payload -= d
        end_seq = skb.seq + skb.payload_bytes
        if end_seq <= rcv_nxt:
            # Entirely duplicate (spurious retransmission): drop and re-ACK.
            self._discard_skb(skb, poll_core, items)
            self._emit_ack(items, ack_frames, dup=False)
            return

        if skb.seq < rcv_nxt:
            self._trim_skb_front(skb, rcv_nxt - skb.seq)

        if skb.seq == rcv_nxt:
            self.rcv_nxt = end_seq
            ready = [skb]
            ready.extend(self._pull_ooo(poll_core, items))
            ready_bytes = 0
            for piece in ready:
                ready_bytes += piece.payload_bytes
                self.rx_limbo_bytes += piece.payload_bytes
                deferred.append(lambda s=piece: self._deliver_to_socket(s, poll_core))
            self._segs_since_ack += len(ready)
            self._bytes_since_ack += ready_bytes
            # Linux ACKs at least every 2 MSS of new data (quickack rule);
            # post-GRO skbs carry many MSS, so in practice this is one ACK
            # per merged skb.
            if self._bytes_since_ack >= self.tcp_cfg.ack_every_n_segments * self.mss:
                self._emit_ack(items, ack_frames, dup=False)
            else:
                self._ensure_delack_timer()
        else:
            # Out of order: queue and send an immediate duplicate ACK.
            items.append(self.tables.ofo_queue_item)
            self._insert_ooo(skb)
            self._emit_ack(items, ack_frames, dup=True)

    def on_probe_frame(self, items: ChargeItems, ack_frames: List[Frame]) -> None:
        """Zero-window probe from the peer: answer with the current window."""
        self._emit_ack(items, ack_frames, dup=False)

    def _trim_skb_front(self, skb: Skb, delta: int) -> None:
        """Drop the first ``delta`` bytes (already received) of a retransmit."""
        skb.seq += delta
        skb.payload_bytes -= delta
        trimmed = 0
        while skb.regions and trimmed < delta:
            region_id, nbytes = skb.regions[0]
            if trimmed + nbytes > delta:
                break
            skb.regions.pop(0)
            trimmed += nbytes
            self.host.dca_discard(region_id)
        skb.pages = (skb.payload_bytes + PAGE_BYTES - 1) // PAGE_BYTES

    def _discard_skb(self, skb: Skb, core: "Core", items: ChargeItems) -> None:
        for region_id, _ in skb.regions:
            self.host.dca_discard(region_id)
        items.extend(self.tables.skb_free_pair)
        items.extend(
            self.host.allocator.free(core.key, core.numa_node, skb.pages, skb.page_node)
        )

    def _insert_ooo(self, skb: Skb) -> None:
        index = 0
        for index, existing in enumerate(self._ooo):  # noqa: B007
            if existing.seq >= skb.seq:
                if existing.seq == skb.seq:
                    # duplicate of an already-queued ooo segment: drop it
                    for region_id, _ in skb.regions:
                        self.host.dca_discard(region_id)
                    self.host.allocator.free(
                        self.softirq_core.key,
                        self.softirq_core.numa_node,
                        skb.pages,
                        skb.page_node,
                    )
                    return
                break
        else:
            index = len(self._ooo)
        self._ooo.insert(index, skb)

    def _pull_ooo(self, core: "Core", items: ChargeItems) -> List[Skb]:
        """Drain out-of-order segments made contiguous by a new arrival."""
        ready: List[Skb] = []
        while self._ooo:
            head = self._ooo[0]
            if head.seq > self.rcv_nxt:
                break
            self._ooo.pop(0)
            if head.end_seq <= self.rcv_nxt:
                self._discard_skb(head, core, items)
                continue
            if head.seq < self.rcv_nxt:
                self._trim_skb_front(head, self.rcv_nxt - head.seq)
            self.rcv_nxt = head.end_seq
            ready.append(head)
        return ready

    def _deliver_to_socket(self, skb: Skb, softirq_core: "Core") -> None:
        """Deferred: make payload visible to the application and wake it."""
        self.rx_limbo_bytes -= skb.payload_bytes
        if self.trace is not None:
            # Socket-enqueue stamp (read back at drain in do_recv). Runs in
            # a job completion, so engine.now is exact in both wire modes.
            skb.trace_ns = self.engine.now
        self.socket.enqueue(skb)
        waiter = self.socket.waiter
        if waiter is not None and self.socket.available() >= waiter.min_bytes:
            self.socket.waiter = None
            charge_wakeup(softirq_core)
            waiter.fulfill()

    # --- ACK generation -----------------------------------------------------------

    def _emit_ack(self, items: ChargeItems, ack_frames: List[Frame], dup: bool) -> None:
        items.extend(self.tables.ack_tx_pair)
        ack_frames.append(self.build_ack_frame(dup))
        self._segs_since_ack = 0
        self._bytes_since_ack = 0
        self._cancel_delack()

    #: Maximum holes reported per ACK (SACK option space is finite; Linux
    #: packs a few blocks per ACK but refreshes them on every dupack).
    MAX_SACK_HOLES = 16

    def _current_holes(self) -> List[Tuple[int, int]]:
        """Missing ranges implied by the out-of-order queue."""
        holes: List[Tuple[int, int]] = []
        prev_end = self.rcv_nxt
        for skb in self._ooo:
            if skb.seq > prev_end:
                holes.append((prev_end, skb.seq))
                if len(holes) >= self.MAX_SACK_HOLES:
                    break
            prev_end = max(prev_end, skb.end_seq)
        return holes

    def build_ack_frame(self, dup: bool) -> Frame:
        window = self.socket.advertised_window()
        info = AckInfo(
            ack_seq=self.rcv_nxt,
            window_bytes=window,
            dup=dup,
            # SACK blocks ride on every ACK while the ooo queue is non-empty,
            # so cumulative ACKs during recovery keep the sender's scoreboard
            # fresh even after duplicate ACKs dry up.
            holes=self._current_holes() if self._ooo else [],
            ecn_echo=self._ecn_pending,
        )
        self._ecn_pending = False
        self._advertised_free = window
        self.acks_sent += 1
        if dup:
            self.dup_acks_sent += 1
        # direct slot assignment (bypassing __init__): one frame per ACK sent
        frame = Frame.__new__(Frame)
        frame.flow_id = self.flow_id
        frame.kind = Frame.KIND_ACK
        frame.seq = self.rcv_nxt
        frame.payload_bytes = 0
        frame.wire_bytes = 64
        frame.ack = info
        frame.ecn_marked = False
        frame.trace_ns = None
        return frame

    def _ensure_delack_timer(self) -> None:
        if self._delack_event is not None:
            return
        self._delack_event = self.engine.schedule(
            self.tcp_cfg.delayed_ack_timeout_ns, self._delack_fire
        )

    def _cancel_delack(self) -> None:
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None

    def _delack_fire(self) -> None:
        self._delack_event = None
        if self._segs_since_ack <= 0 and self._bytes_since_ack <= 0:
            return
        core = self.softirq_core
        items: ChargeItems = []
        ack_frames: List[Frame] = []
        self._emit_ack(items, ack_frames, dup=False)
        core.submit_work(
            self._softirq_context(core),
            items,
            lambda: self.host.nic.transmit(ack_frames),
            PRIORITY_SOFTIRQ,
        )

    # --- application receive ------------------------------------------------------------

    def recv_available(self) -> int:
        return self.socket.available()

    def do_recv(self, thread, max_bytes: int, on_complete: Callable[[int], None]) -> None:
        """Drain up to ``max_bytes`` from the socket into userspace."""
        taken, portions = self.socket.drain(max_bytes)
        if taken <= 0:
            on_complete(0)
            return
        self.app_bytes_read += taken
        now = self.engine.now
        tables = self.tables
        items: ChargeItems = [
            tables.syscall_item,
            ("lock_sock", self._lock_cost(self.app_core)),
        ]
        hit_bytes = 0
        miss_bytes = 0
        remote_bytes = 0  # payload living on a different NUMA node than the app
        freed_pages: dict = {}
        app_node = self.app_core.numa_node
        trace = self.trace
        if trace is not None:
            stages = trace.stages
            softirq_record = stages["rx_softirq"].record
            sockq_record = stages["rx_sockq"].record
            e2e_record = stages["e2e"].record
        for skb, chunk, fully in portions:
            h, m = self._consume_regions(skb, chunk)
            hit_bytes += h
            miss_bytes += m
            if skb.page_node != app_node:
                remote_bytes += chunk
            if skb.napi_ns is not None:
                self.host.metrics.record_copy_latency(self.host.name, now - skb.napi_ns)
                if trace is not None:
                    # All three receive stages are recorded at drain time so
                    # their counts stay equal and the totals telescope exactly
                    # (e2e = rx_softirq + rx_sockq) — the auditor's identity —
                    # even across the warmup reset.
                    softirq_record(skb.trace_ns - skb.napi_ns)
                    sockq_record(now - skb.trace_ns)
                    e2e_record(now - skb.napi_ns)
                skb.napi_ns = None  # count each skb's latency once
            if fully:
                items.extend(tables.skb_free_pair)
                freed_pages[skb.page_node] = freed_pages.get(skb.page_node, 0) + skb.pages

        total = hit_bytes + miss_bytes
        if total <= 0:
            miss_fraction = 1.0
        else:
            miss_fraction = miss_bytes / total
        per_byte = tables.copy_per_byte(miss_fraction)
        copy_cycles = self.costs.copy_per_call + per_byte * taken
        # Cross-NUMA copies (frames DMA'd to a different node's memory, §3.1)
        # pay the interconnect on top of the L3 miss.
        copy_cycles += self.costs.copy_per_byte_remote_numa_extra * remote_bytes
        items.append(("copy_to_user", copy_cycles))
        self.host.metrics.record_receiver_copy(self.host.name, hit_bytes, miss_bytes)

        for page_node, npages in freed_pages.items():
            items.extend(
                self.host.allocator.free(
                    self.app_core.key, self.app_core.numa_node, npages, page_node
                )
            )

        update_frames: List[Frame] = []
        window = self.socket.advertised_window()
        if self._advertised_free <= 2 * self.mss and window >= max(
            4 * self.mss, self.socket.rx_buffer_bytes // 16
        ):
            self._emit_ack(items, update_frames, dup=False)

        self._delivered_since_autotune += taken

        def done() -> None:
            if trace is not None:
                # Copy start -> data visible (the recv job's charged cycles).
                trace.stage("rx_copy").record(self.engine.now - now)
            self.host.metrics.record_delivered(self.host.name, self.flow_id, taken)
            if update_frames:
                self.host.nic.transmit(update_frames)
            on_complete(taken)

        self.app_core.submit_work(thread, items, done, PRIORITY_APP)

    def _consume_regions(self, skb: Skb, chunk: int) -> Tuple[int, int]:
        """Consume DMA regions backing ``chunk`` bytes; return (hit, miss).

        A region can only hit if it was DMA'd into the DCA slice (NIC-local
        pages) *and* the application reads from the NIC-local node whose L3
        holds that slice.
        """
        hit = 0
        miss = 0
        consumed = 0
        nic = self.host.nic
        local_cache = self.app_core.numa_node == nic.numa_node
        dca = nic.dca
        if dca is not None and nic.rx_pipeline is not None:
            # Settle pending DMA writes before reading slice occupancy.
            engine = self.host.engine
            nic.rx_pipeline.settle(engine.now, cur_ins=engine.current_inserted_at)
        regions = skb.regions
        taken = 0
        dca_consume = dca.consume if dca is not None else None
        for region_id, nbytes in regions:
            if consumed >= chunk:
                break
            taken += 1
            consumed += nbytes
            if dca_consume is None:
                resident, missed = 0, nbytes
            else:
                resident, missed = dca_consume(region_id, nbytes)
            if local_cache:
                hit += resident
                miss += missed
            else:
                miss += nbytes
        if taken:
            del regions[:taken]
        if consumed < chunk and not regions:
            # region bookkeeping exhausted (trim rounding): count as miss
            miss += chunk - consumed
        return hit, miss

    # --- receive-buffer autotuning (DRS, §3.1 footnote 6) -------------------------------------

    def _autotune_tick(self) -> None:
        delivered = self._delivered_since_autotune
        self._delivered_since_autotune = 0
        if delivered > 0:
            rate = delivered * 1e9 / AUTOTUNE_PERIOD_NS  # bytes/sec
            delivered_per_rtt = rate * AUTOTUNE_BASE_RTT_NS / 1e9
            buffer = self.socket.rx_buffer_bytes
            # DRS doubles the buffer while the flow demonstrably uses it:
            # either a full window arrives per network RTT (window-limited)
            # or the socket queue stands (receiver-CPU-bound, where the DRS
            # RTT sample inflates with host queueing). The latter is how the
            # kernel autotuner overshoots the DCA-friendly operating point
            # (§3.1, fn 6); for network-limited flows the buffer settles
            # near 2x the true BDP.
            # The peer can only fill the *advertised* window (~buffer/2).
            window_limited = delivered_per_rtt >= 0.25 * buffer
            queue_standing = (
                self.socket.unread_bytes >= AUTOTUNE_QUEUE_GAIN * buffer / 2
            )
            if window_limited or queue_standing:
                self.socket.rx_buffer_bytes = min(
                    2 * buffer, self.tcp_cfg.autotune_max_bytes
                )
        self.engine.schedule(AUTOTUNE_PERIOD_NS, self._autotune_tick)

    # --- inspection ---------------------------------------------------------------------------------

    def inflight_bytes(self) -> int:
        return self.snd_nxt - self.snd_una

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<TcpEndpoint flow={self.flow_id} host={self.host.name} "
            f"core={self.app_core.core_id}>"
        )
