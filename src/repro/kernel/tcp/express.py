"""Steady-state express gate: per-flow quiescence for the engine fast lane.

A bulk flow in steady state is *ACK-clocked*: every round is the same dance
of transmit → completion → ACK → window slide → transmit, and the only timer
activity is the retransmission timer being cancelled and re-armed once per
ACK without ever firing. That cancel/re-arm churn is pure engine overhead —
tens of thousands of wheel operations per run that exist only to move a
deadline that keeps receding.

``FlowExpressGate`` decides, per arm, whether a flow is quiescent enough to
route its RTO through the engine's express lane lazily (see DESIGN.md §13):

* quiescent — the endpoint records a *logical* deadline and reserves the
  serial an eager arm would have consumed, keeping at most one off-wheel
  chase entry live; stale entries fire as no-ops and re-chase.
* perturbed — loss recovery in progress, dupacks outstanding, a timeout
  backoff chain active, or the congestion controller mid-reaction — the
  endpoint falls back to the classic eager wheel event, whose cost is noise
  next to the recovery work itself.

Both mechanics are byte-identical by construction: the lazy path consumes
exactly one engine serial per arm (like the eager ``schedule``) and a real
timeout fires at the same virtual instant, ordered by the serial of the
*last* arm — exactly where the eager event would have sat in its block.
The golden-digest suite and ``tests/property/test_express_equivalence.py``
enforce this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .endpoint import TcpEndpoint


class FlowExpressGate:
    """Quiescence predicate for one flow's express-lane eligibility."""

    __slots__ = ("endpoint", "enabled")

    def __init__(self, endpoint: "TcpEndpoint", enabled: bool) -> None:
        self.endpoint = endpoint
        #: Master switch: ``ExperimentConfig.express`` (``--no-express``
        #: pins every flow to the eager segment path).
        self.enabled = enabled

    def quiescent(self) -> bool:
        """True when the flow's next RTO arm may ride the express lane.

        Checked at every arm, so a perturbation mid-round (dupack, loss,
        backoff) aborts the lazy mechanics on the very next arm — the flow
        is back on eager wheel events before any recovery timer matters.
        """
        if not self.enabled:
            return False
        ep = self.endpoint
        return (
            ep._recovery_point < 0      # no loss-recovery episode open
            and ep._dupacks == 0        # no reordering/loss signal brewing
            and ep._rto_backoff == 1    # no timeout backoff chain
            and ep.cc.quiescent()       # window neither probing nor reacting
        )
