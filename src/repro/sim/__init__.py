"""Discrete-event simulation engine."""

from .engine import Engine, Event
from .rng import RngStreams

__all__ = ["Engine", "Event", "RngStreams"]
