"""A minimal, fast discrete-event simulation engine.

Time is kept in integer nanoseconds. Events scheduled for the same timestamp
fire in scheduling order (FIFO), which keeps the simulation deterministic.

Cancellation is lazy (events are flagged, not removed — O(1)), but the engine
counts cancelled events still sitting in the heap and compacts it in place
once they dominate, so workloads that constantly re-arm timers (TCP RTO,
delayed ACKs, pacing) don't drag a growing tail of dead events through every
heap operation.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

#: Compact the heap when at least this many cancelled events are queued *and*
#: they outnumber the live ones (amortizes the O(n) sweep).
_COMPACT_MIN_CANCELLED = 512


class Event:
    """A scheduled callback. Returned by :meth:`Engine.schedule` for cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "engine")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.engine: Optional["Engine"] = None  # set while queued

    def cancel(self) -> None:
        """Prevent this event from firing. Safe to call multiple times."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.engine is not None:
            self.engine._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} fn={getattr(self.fn, '__name__', self.fn)}{state}>"


class Engine:
    """Event loop with integer-nanosecond virtual time."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._now: int = 0
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self._cancelled_in_queue = 0

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        event.engine = self
        heapq.heappush(self._queue, event)
        return event

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def _note_cancelled(self) -> None:
        """Bookkeeping for a cancel of a still-queued event; maybe compact."""
        self._cancelled_in_queue += 1
        if (
            self._cancelled_in_queue >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify, in place.

        In-place (slice assignment) so the ``run()`` loop's local alias of the
        queue stays valid even when a fired callback's cancel triggers this.
        """
        queue = self._queue
        queue[:] = [event for event in queue if not event.cancelled]
        heapq.heapify(queue)
        self._cancelled_in_queue = 0

    def run(self, until: Optional[int] = None) -> int:
        """Run events until the queue drains, ``stop()`` is called, or
        virtual time would exceed ``until``.

        Returns the final virtual time. When ``until`` is given, the clock is
        advanced to exactly ``until`` even if the queue drained earlier, so
        rate computations over the interval remain well-defined.
        """
        self._running = True
        self._stopped = False
        # Hot loop: hoist attribute lookups out of the per-event path.
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue and not self._stopped:
                event = queue[0]
                if event.cancelled:
                    heappop(queue)
                    event.engine = None
                    self._cancelled_in_queue -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heappop(queue)
                event.engine = None
                self._now = event.time
                event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def pending_events(self) -> int:
        """Number of queued, non-cancelled events. O(1)."""
        return len(self._queue) - self._cancelled_in_queue

    def audit_counts(self) -> dict:
        """Exact queue-hygiene counters for the conservation auditor.

        Recounts cancelled events with an O(n) sweep so the lazily-maintained
        ``_cancelled_in_queue`` counter can be cross-checked against ground
        truth (see :mod:`repro.core.audit`).
        """
        recount = sum(1 for event in self._queue if event.cancelled)
        return {
            "queued": len(self._queue),
            "cancelled_tracked": self._cancelled_in_queue,
            "cancelled_recount": recount,
            "pending": self.pending_events(),
        }
