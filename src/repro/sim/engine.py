"""A minimal, fast discrete-event simulation engine.

Time is kept in integer nanoseconds. Events scheduled for the same timestamp
fire in scheduling order (FIFO), which keeps the simulation deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled callback. Returned by :meth:`Engine.schedule` for cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing. Safe to call multiple times."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} fn={getattr(self.fn, '__name__', self.fn)}{state}>"


class Engine:
    """Event loop with integer-nanosecond virtual time."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._now: int = 0
        self._seq: int = 0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def run(self, until: Optional[int] = None) -> int:
        """Run events until the queue drains, ``stop()`` is called, or
        virtual time would exceed ``until``.

        Returns the final virtual time. When ``until`` is given, the clock is
        advanced to exactly ``until`` even if the queue drained earlier, so
        rate computations over the interval remain well-defined.
        """
        self._running = True
        self._stopped = False
        try:
            while self._queue and not self._stopped:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def pending_events(self) -> int:
        """Number of queued (non-cancelled) events; O(n), for tests/debugging."""
        return sum(1 for e in self._queue if not e.cancelled)
