"""A minimal, fast discrete-event simulation engine.

Time is kept in integer nanoseconds. Events scheduled for the same timestamp
fire in scheduling order (FIFO), which keeps the simulation deterministic.

Internally the engine is a Linux-style hierarchical timer wheel rather than a
single binary heap: :data:`_WHEEL_LEVELS` levels of :data:`_WHEEL_SLOTS`
slots, where level ``k`` has a granularity of ``256**k`` nanoseconds, cover
everything within ~4.3 virtual seconds of the cursor; events beyond that
horizon sit in a small overflow heap until their top-level window opens.
Unlike the kernel's wheel (which sacrifices precision at higher levels), slots
are *cascaded* down level by level as the cursor advances, so every event
fires at its exact timestamp and the engine's observable behaviour is
byte-identical to the old heap implementation. A per-level occupancy bitmask
lets the cursor jump over empty regions in O(1) big-int operations instead of
stepping slot by slot.

Why a wheel: the dominant event traffic is short-delay timers that are
re-armed constantly (TCP RTO, delayed ACKs, pacing, CPU job completions).
``schedule`` is an append to a slot list and ``cancel`` is a flag — both O(1)
with no heap percolation — so the dead-timer tail that used to be dragged
through every ``heappush``/``heappop`` costs nothing until it is either
swept in bulk (:meth:`Engine._compact`) or skipped when its slot drains.

Allocation-lightness: fired and cancelled-collected :class:`Event` objects
are recycled through a freelist. An event is only recycled when the engine
holds the sole remaining references (checked via ``sys.getrefcount``), so a
caller-retained handle can never alias a recycled event — ``cancel()`` on a
spent handle stays a guaranteed no-op.

The steady-state **express lane** (DESIGN.md §13) is a deadline-sorted side
heap one notch above the wheel: work whose firing time and order are fully
known at registration (CPU job completions, chased timer deadlines) can be
registered with :meth:`Engine.express_at` and is dispatched straight off the
heap root — no :class:`Event` object, no wheel insert, no block drain. A
whole quiescent ACK-clocked round (tx completion → wire train → NAPI poll →
ACK processing → next burst) rides the lane as a chain of such entries, so
the wheel fires roughly one event per round instead of one per job. Ordering
stays byte-identical to the wheel path: every schedule — wheel or express —
draws a ticket from one global serial counter, and whenever an express entry
shares a 256 ns block with pending wheel events it is *materialized* into
that block as a real event carrying its original serial, so the block drain
interleaves the two populations in exact legacy order.
"""

from __future__ import annotations

import heapq
from bisect import insort
from operator import attrgetter
from sys import getrefcount
from typing import Any, Callable, List, Optional

#: Compact the queue when at least this many cancelled events are queued *and*
#: they outnumber the live ones (amortizes the O(n) sweep).
_COMPACT_MIN_CANCELLED = 512

#: log2 of the timestamp range sharing one level-0 slot ("block"). Events
#: within a 256 ns block live in one list, stable-sorted by time when the
#: block drains — stability preserves scheduling order for equal timestamps,
#: so the determinism contract is untouched while short-delay timers never
#: need cascading.
_PRE_SHIFT = 8
#: log2 of the slot count per wheel level.
_WHEEL_BITS = 8
#: Slots per wheel level.
_WHEEL_SLOTS = 1 << _WHEEL_BITS
_WHEEL_MASK = _WHEEL_SLOTS - 1
#: Wheel levels. Level ``k`` spans ``2**(16 + 8k)`` ns at ``2**(8 + 8k)`` ns
#: slot granularity; 4 levels cover 2**40 ns (~18 min of virtual time) —
#: far beyond any timer the simulated stack arms (RTO tops out at 200 ms).
#: Farther events overflow into a heap.
_WHEEL_LEVELS = 4
#: Shift that selects the top-level window of a timestamp.
_TOP_SHIFT = _PRE_SHIFT + _WHEEL_BITS * _WHEEL_LEVELS

#: Upper bound on the event freelist (beyond it, spent events go to the GC).
_FREELIST_MAX = 4096

#: Sentinel for "run with no time bound" (compares greater than any int).
_NO_LIMIT = float("inf")

#: Offset from a block's start to its last covered timestamp.
_BLOCK_MASK = (1 << _PRE_SHIFT) - 1

#: Spans covered by levels 0..3 relative to the cursor, used to pick the
#: insertion level from ``time ^ cursor`` (equal upper bits ⇒ same window).
_SPAN_L0 = 1 << (_PRE_SHIFT + _WHEEL_BITS)
_SPAN_L1 = 1 << (_PRE_SHIFT + 2 * _WHEEL_BITS)
_SPAN_L2 = 1 << (_PRE_SHIFT + 3 * _WHEEL_BITS)
_SPAN_L3 = 1 << (_PRE_SHIFT + 4 * _WHEEL_BITS)

#: Sort keys for draining a block. Buckets are appended in ticket order
#: (every scheduled event carries a serial from the global counter), so the
#: common case needs only a *stable* sort on time — the cheap single-field
#: key — to recover exact (time, serial) order. The two-field key (which
#: builds a tuple per element, ~8x the sort cost) is reserved for blocks
#: that received materialized express entries, which splice in out of
#: append order.
_TIME_KEY = attrgetter("time")
_ORDER_KEY = attrgetter("time", "seq")


class Event:
    """A scheduled callback. Returned by :meth:`Engine.schedule` for cancellation."""

    __slots__ = (
        "time",
        "seq",
        "fn",
        "args",
        "cancelled",
        "engine",
        "bucket",
        "inserted_at",
    )

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.engine: Optional["Engine"] = None  # set while queued
        self.bucket: Optional[List["Event"]] = None  # wheel slot, while queued
        #: Virtual time at which this event was scheduled. Same-timestamp
        #: events fire in scheduling order, so comparing insertion times
        #: reconstructs the firing order of two events at one instant (exact
        #: whenever the insertion times differ). The train fast path uses
        #: this to replay wire arrivals at their legacy position within an
        #: instant without materializing the arrival event.
        self.inserted_at = 0

    def cancel(self) -> None:
        """Prevent this event from firing. Safe to call multiple times.

        When this event is the most recently added entry of its wheel slot
        (the arm-then-cancel churn pattern), it is removed outright — O(1),
        no dead entry left behind. Otherwise it is flag-cancelled and
        collected lazily (slot drain, cascade, or compaction).
        """
        if self.cancelled:
            return
        self.cancelled = True
        engine = self.engine
        if engine is None:
            return
        engine.events_cancelled += 1
        bucket = self.bucket
        if bucket is not None and bucket and bucket[-1] is self:
            bucket.pop()
            self.engine = None
            engine._queued -= 1
            # refcount 2 (this frame's parameter + the getrefcount argument)
            # proves the caller invoked cancel() on a temporary — the
            # arm-then-cancel expression pattern — so no handle to this
            # event survives and it can be recycled immediately. A recycled
            # event keeps fn/args until reuse overwrites them.
            free = engine._free
            if getrefcount(self) == 2 and len(free) < _FREELIST_MAX:
                free.append(self)
                engine.events_recycled += 1
            else:
                self.fn = None  # type: ignore[assignment]
                self.args = ()
            return
        engine._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} fn={getattr(self.fn, '__name__', self.fn)}{state}>"


class Engine:
    """Event loop with integer-nanosecond virtual time."""

    def __init__(self) -> None:
        self.now: int = 0
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self._cancelled_in_queue = 0
        #: Total events queued (wheel + overflow heap), cancelled included.
        self._queued = 0
        #: Wheel position. Always ``<= self.now`` while idle and ``== now``
        #: while firing; between events it may advance ahead of ``now`` as
        #: empty windows are skipped (never past a pending event or a
        #: ``run(until=...)`` boundary).
        self._cursor: int = 0
        self._slots: List[List[Optional[List[Event]]]] = [
            [None] * _WHEEL_SLOTS for _ in range(_WHEEL_LEVELS)
        ]
        self._masks: List[int] = [0] * _WHEEL_LEVELS
        self._heap: List[Event] = []  # events beyond the wheel horizon
        self._free: List[Event] = []
        #: Set while a block is being drained; compaction requested mid-drain
        #: is deferred to the end of the block (the drain indexes into the
        #: live slot list, which a sweep would invalidate).
        self._draining = False
        self._compact_pending = False
        #: While draining a multi-event block: its block id (``time >> 8``),
        #: the live bucket, and the drain position — so callbacks scheduling
        #: into the very block being drained insert in sorted position ahead
        #: of the drain index instead of appending out of order.
        self._active_block = -1
        self._active_bucket: Optional[List[Event]] = None
        self._drain_index = 0
        #: Insertion time (``Event.inserted_at``) of the callback currently
        #: executing, or ``None`` outside the run loop. Lets lazily-replayed
        #: work decide whether a same-instant wire arrival would have fired
        #: before or after the current event in the legacy event order.
        self.current_inserted_at: Optional[int] = None
        #: Express lane: a heap of ``[time, serial, fn, arg, inserted_at]``
        #: entries dispatched without Event objects or wheel traffic (see the
        #: module docstring). Entries are never cancelled — producers that
        #: need to move a deadline re-register and treat the stale firing as
        #: a no-op (the chased-timer pattern).
        self._express: List[list] = []
        #: Producers opt in per-engine (the Experiment sets this from
        #: ``ExperimentConfig.express``); with the flag off every producer
        #: uses the plain wheel path and the lane stays empty.
        self.express_enabled = False
        # statistics
        self.events_fired = 0
        self.events_recycled = 0
        #: Cumulative count of cancel() calls on still-queued events (the
        #: arm-then-cancel churn the wheel absorbs); never decremented.
        self.events_cancelled = 0
        #: Express-lane entries registered / dispatched off the lane /
        #: materialized into the wheel (block shared with wheel events).
        #: Invariant: registered == fired + materialized + len(lane).
        self.express_registered = 0
        self.express_fired = 0
        self.express_materialized = 0

    # ``self.now`` — current virtual time in nanoseconds — is a plain
    # attribute (not a property): it is the single most-read field in the
    # simulator and the descriptor dispatch showed up in profiles.

    # ------------------------------------------------------------- scheduling

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``.

        Every event draws a ticket from the global serial counter
        (``Event.seq``): same-timestamp events fire in ticket order, which is
        scheduling order — and the shared counter is what lets express-lane
        entries interleave with wheel events byte-identically.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, 0, fn, args)
        self._seq = seq = self._seq + 1
        event.seq = seq
        event.inserted_at = self.now
        event.engine = self
        self._queued += 1
        # Inlined _insert (this is the hottest producer path).
        block = time >> _PRE_SHIFT
        if self._draining and block == self._active_block:
            # The block holding `time` is being drained right now: place the
            # event in sorted position ahead of the drain index so it fires
            # in this very pass, in exact (time, serial) order.
            bucket = self._active_bucket
            insort(bucket, event, lo=self._drain_index, key=_ORDER_KEY)
            event.bucket = bucket
            return event
        delta = time ^ self._cursor
        if delta < _SPAN_L0:
            level, slot = 0, block & _WHEEL_MASK
        elif delta < _SPAN_L1:
            level, slot = 1, (block >> _WHEEL_BITS) & _WHEEL_MASK
        elif delta < _SPAN_L2:
            level, slot = 2, (block >> (2 * _WHEEL_BITS)) & _WHEEL_MASK
        elif delta < _SPAN_L3:
            level, slot = 3, (block >> (3 * _WHEEL_BITS)) & _WHEEL_MASK
        else:
            event.bucket = None
            heapq.heappush(self._heap, event)
            return event
        bucket = self._slots[level][slot]
        if bucket:
            bucket.append(event)
        elif bucket is None:
            bucket = [event]
            self._slots[level][slot] = bucket
            self._masks[level] |= 1 << slot
        else:
            bucket.append(event)
            self._masks[level] |= 1 << slot
        event.bucket = bucket
        return event

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds.

        Body duplicated from :meth:`schedule_at` (minus the past-time check,
        subsumed by the non-negative-delay check): this is called a few times
        per simulated packet, so the extra frame + varargs repack of
        delegating measurably slows every figure.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        time = self.now + delay
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, 0, fn, args)
        self._seq = seq = self._seq + 1
        event.seq = seq
        event.inserted_at = self.now
        event.engine = self
        self._queued += 1
        block = time >> _PRE_SHIFT
        if self._draining and block == self._active_block:
            bucket = self._active_bucket
            insort(bucket, event, lo=self._drain_index, key=_ORDER_KEY)
            event.bucket = bucket
            return event
        delta = time ^ self._cursor
        if delta < _SPAN_L0:
            level, slot = 0, block & _WHEEL_MASK
        elif delta < _SPAN_L1:
            level, slot = 1, (block >> _WHEEL_BITS) & _WHEEL_MASK
        elif delta < _SPAN_L2:
            level, slot = 2, (block >> (2 * _WHEEL_BITS)) & _WHEEL_MASK
        elif delta < _SPAN_L3:
            level, slot = 3, (block >> (3 * _WHEEL_BITS)) & _WHEEL_MASK
        else:
            event.bucket = None
            heapq.heappush(self._heap, event)
            return event
        bucket = self._slots[level][slot]
        if bucket:
            bucket.append(event)
        elif bucket is None:
            bucket = [event]
            self._slots[level][slot] = bucket
            self._masks[level] |= 1 << slot
        else:
            bucket.append(event)
            self._masks[level] |= 1 << slot
        event.bucket = bucket
        return event

    def _insert(self, event: Event) -> None:
        """Place ``event`` into the wheel slot (or overflow heap) for its time.

        The level is the smallest one whose window around the cursor contains
        the event (``time`` and ``cursor`` share all bits above the level's
        span). That guarantees the slot index is at or ahead of the cursor's
        position in the level, so the advancing cursor always reaches it.
        """
        time = event.time
        delta = time ^ self._cursor
        if delta < _SPAN_L0:
            level, slot = 0, (time >> _PRE_SHIFT) & _WHEEL_MASK
        elif delta < _SPAN_L1:
            level, slot = 1, (time >> (_PRE_SHIFT + _WHEEL_BITS)) & _WHEEL_MASK
        elif delta < _SPAN_L2:
            level, slot = 2, (time >> (_PRE_SHIFT + 2 * _WHEEL_BITS)) & _WHEEL_MASK
        elif delta < _SPAN_L3:
            level, slot = 3, (time >> (_PRE_SHIFT + 3 * _WHEEL_BITS)) & _WHEEL_MASK
        else:
            event.bucket = None
            heapq.heappush(self._heap, event)
            return
        bucket = self._slots[level][slot]
        if bucket is None:
            bucket = [event]
            self._slots[level][slot] = bucket
            self._masks[level] |= 1 << slot
        else:
            if not bucket:
                self._masks[level] |= 1 << slot
            bucket.append(event)
        event.bucket = bucket

    # ------------------------------------------------------------ express lane

    def reserve_serial(self) -> int:
        """Draw a scheduling ticket without creating an event.

        A producer that *would have* scheduled an event right now (but is
        deferring the physical registration — the chased-timer pattern) calls
        this so the eventual :meth:`express_at` entry interleaves with
        same-instant events exactly where the legacy schedule would have.
        """
        self._seq = serial = self._seq + 1
        return serial

    def express_at(
        self,
        time: int,
        fn: Callable[..., Any],
        arg: Any = None,
        serial: Optional[int] = None,
        inserted_at: Optional[int] = None,
    ) -> None:
        """Register ``fn(arg)`` (or ``fn()`` when ``arg`` is None) on the
        express lane for absolute time ``time``.

        No handle is returned: lane entries cannot be cancelled. ``serial``
        and ``inserted_at`` replay a ticket reserved earlier (see
        :meth:`reserve_serial`); by default the entry is ticketed here, like
        a plain schedule. An entry whose block is already being drained is
        materialized immediately so it fires in this very pass.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        if serial is None:
            self._seq = serial = self._seq + 1
            inserted_at = self.now
        self.express_registered += 1
        if self._draining and (time >> _PRE_SHIFT) == self._active_block:
            self._materialize(time, serial, fn, arg, inserted_at, mid_drain=True)
            return
        heapq.heappush(self._express, [time, serial, fn, arg, inserted_at])

    def _materialize(
        self, time, serial, fn, arg, inserted_at, mid_drain=False
    ) -> None:
        """Turn one express entry into a real wheel event (shared block).

        The event keeps the entry's original serial and insertion stamp, so
        the block's (time, serial) sort puts it exactly where the legacy
        schedule call would have.
        """
        free = self._free
        args = () if arg is None else (arg,)
        if free:
            event = free.pop()
            event.time = time
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, 0, fn, args)
        event.seq = serial
        event.inserted_at = inserted_at
        event.engine = self
        self._queued += 1
        self.express_materialized += 1
        if mid_drain:
            bucket = self._active_bucket
            insort(bucket, event, lo=self._drain_index, key=_ORDER_KEY)
        else:
            bucket = self._slots[0][(time >> _PRE_SHIFT) & _WHEEL_MASK]
            bucket.append(event)
        event.bucket = bucket

    # ------------------------------------------------------------- run control

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------- cancel bookkeeping

    def _note_cancelled(self) -> None:
        """Bookkeeping for a cancel of a still-queued event; maybe compact."""
        self._cancelled_in_queue += 1
        if (
            self._cancelled_in_queue >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 > self._queued
        ):
            self._compact()

    def _retire(self, event: Event, held_refs: int) -> None:
        """Clear a spent event's references; recycle it when nothing else
        holds the handle. ``held_refs`` is the *total* expected refcount for
        an externally-unreferenced event: the caller's references plus this
        function's parameter plus the temporary ``getrefcount`` argument."""
        event.engine = None
        event.fn = None  # type: ignore[assignment]  # break closure/endpoint refs
        event.args = ()
        if getrefcount(event) == held_refs and len(self._free) < _FREELIST_MAX:
            self._free.append(event)
            self.events_recycled += 1

    def _compact(self) -> None:
        """Drop cancelled events from every wheel slot and the overflow heap.

        Dropped events have their ``engine`` backref and ``fn``/``args``
        closures cleared so dead timers don't pin endpoints (or their capture
        environments) alive. Slot lists are filtered in place (slice
        assignment) so any outstanding alias of a list stays valid. Deferred
        while a slot drain is in progress.
        """
        if self._draining:
            self._compact_pending = True
            return
        for level in range(_WHEEL_LEVELS):
            mask = self._masks[level]
            if not mask:
                continue
            bucket_list = self._slots[level]
            scan = mask
            while scan:
                low = scan & -scan
                scan ^= low
                bucket = bucket_list[low.bit_length() - 1]
                kept = [event for event in bucket if not event.cancelled]
                if len(kept) != len(bucket):
                    dropped = [event for event in bucket if event.cancelled]
                    bucket[:] = kept
                    if not kept:
                        mask ^= low
                    self._queued -= len(dropped)
                    for event in dropped:
                        # refs: `dropped`, loop var, _retire param, getrefcount arg
                        self._retire(event, 4)
            self._masks[level] = mask
        heap = self._heap
        if heap:
            kept = [event for event in heap if not event.cancelled]
            if len(kept) != len(heap):
                dropped = [event for event in heap if event.cancelled]
                heap[:] = kept
                heapq.heapify(heap)
                self._queued -= len(dropped)
                for event in dropped:
                    self._retire(event, 4)
        self._cancelled_in_queue = 0
        self._compact_pending = False

    # ------------------------------------------------------------ wheel cursor

    def _cascade(self, level: int, slot: int) -> None:
        """Re-distribute one upper-level slot into lower levels (exact times).

        Preserves FIFO order for same-timestamp events: the slot list is in
        scheduling order and re-insertion appends in iteration order.
        """
        bucket = self._slots[level][slot]
        self._slots[level][slot] = None
        self._masks[level] &= ~(1 << slot)
        for event in bucket:
            if event.cancelled:
                self._cancelled_in_queue -= 1
                self._queued -= 1
                # refs: `bucket`, loop var, _retire param, getrefcount arg
                self._retire(event, 4)
            else:
                self._insert(event)

    def _drain_horizon(self) -> None:
        """Pull overflow-heap events whose top-level window has opened."""
        heap = self._heap
        window = self._cursor >> _TOP_SHIFT
        while heap and (heap[0].time >> _TOP_SHIFT) == window:
            event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled_in_queue -= 1
                self._queued -= 1
                # refs: local var, _retire param, getrefcount arg
                self._retire(event, 3)
            else:
                self._insert(event)

    def _next_slot(self, limit) -> Optional[List[Event]]:
        """Advance the cursor to the next occupied timestamp and return its
        level-0 slot, or ``None`` when the queue is drained (or the next
        event lies beyond ``limit``, which is :data:`_NO_LIMIT` for an
        unbounded run).

        The cursor never commits past ``limit``: a cascade or horizon jump
        whose window starts beyond the boundary is abandoned, so events
        scheduled after the run resumes always land ahead of the cursor.
        """
        masks = self._masks
        while True:
            cursor = self._cursor
            # Fast path: next occupied level-0 block in the current window.
            rem = masks[0] >> ((cursor >> _PRE_SHIFT) & _WHEEL_MASK)
            if rem:
                slot = ((cursor >> _PRE_SHIFT) & _WHEEL_MASK) + (
                    (rem & -rem).bit_length() - 1
                )
                block_start = (
                    ((cursor >> (_PRE_SHIFT + _WHEEL_BITS)) << _WHEEL_BITS) | slot
                ) << _PRE_SHIFT
                if block_start > limit:
                    return None
                self._cursor = block_start
                return self._slots[0][slot]
            # Level-0 window exhausted: cascade the nearest upper-level slot.
            for level in range(1, _WHEEL_LEVELS):
                shift = _PRE_SHIFT + level * _WHEEL_BITS
                index = (cursor >> shift) & _WHEEL_MASK
                rem = masks[level] >> (index + 1)
                if not rem:
                    continue
                slot = index + 1 + ((rem & -rem).bit_length() - 1)
                window_start = (
                    ((cursor >> (shift + _WHEEL_BITS)) << _WHEEL_BITS) | slot
                ) << shift
                if window_start > limit:
                    return None
                self._cursor = window_start
                self._cascade(level, slot)
                break
            else:
                # Wheel empty ahead of the cursor: open the overflow horizon.
                heap = self._heap
                while heap and heap[0].cancelled:
                    event = heapq.heappop(heap)
                    self._cancelled_in_queue -= 1
                    self._queued -= 1
                    self._retire(event, 3)
                if not heap:
                    return None
                window_start = (heap[0].time >> _TOP_SHIFT) << _TOP_SHIFT
                if window_start > limit:
                    return None
                self._cursor = window_start
                self._drain_horizon()

    # --------------------------------------------------------------- main loop

    def run(self, until: Optional[int] = None) -> int:
        """Run events until the queue drains, ``stop()`` is called, or
        virtual time would exceed ``until``.

        Returns the final virtual time. When ``until`` is given, the clock is
        advanced to exactly ``until`` even if the queue drained earlier, so
        rate computations over the interval remain well-defined.

        Express-lane entries interleave with wheel events here: a stretch of
        lane entries strictly ahead of all wheel traffic dispatches straight
        off the lane heap (no Event, no block drain — the RoundTrain fast
        path), while an entry sharing a 256 ns block with wheel events is
        materialized into that block so the (time, serial) sort restores
        exact legacy firing order.
        """
        self._running = True
        self._stopped = False
        limit = _NO_LIMIT if until is None else until
        getrc = getrefcount
        free = self._free
        masks = self._masks
        slots0 = self._slots[0]
        express = self._express
        heappop = heapq.heappop
        fired = 0
        xfired = 0
        try:
            while not self._stopped:
                # Wheel search bound: never commit the cursor past the
                # express head's block — its events must merge with any
                # wheel events sharing that block. (Block starts are
                # 256-aligned, so the bound never lets the cursor commit
                # past ``limit`` either.)
                if express:
                    xt = express[0][0]
                    if xt > limit:
                        xt = -1
                        wheel_limit = limit
                    else:
                        wheel_limit = xt | _BLOCK_MASK
                else:
                    xt = -1
                    wheel_limit = limit
                # Inlined level-0 fast path of _next_slot: in steady state
                # nearly every occupied block is found right here.
                cursor = self._cursor
                index = (cursor >> _PRE_SHIFT) & _WHEEL_MASK
                rem = masks[0] >> index
                if rem:
                    slot = index + ((rem & -rem).bit_length() - 1)
                    block_start = (
                        ((cursor >> (_PRE_SHIFT + _WHEEL_BITS)) << _WHEEL_BITS)
                        | slot
                    ) << _PRE_SHIFT
                    if block_start > wheel_limit:
                        bucket = None
                    else:
                        self._cursor = block_start
                        bucket = slots0[slot]
                else:
                    bucket = self._next_slot(wheel_limit)
                    if bucket is not None:
                        slot = (self._cursor >> _PRE_SHIFT) & _WHEEL_MASK
                if bucket is None:
                    if xt < 0:
                        break
                    # Express-only stretch: no wheel event lives at or
                    # before this entry's block, so dispatch off the lane.
                    entry = heappop(express)
                    time = entry[0]
                    block_start = time & ~_BLOCK_MASK
                    if self._cursor < block_start:
                        # Safe jump (the search above proved the skipped
                        # region empty); keeps same-instant schedules in
                        # level 0 where has_pending_now and the next
                        # iteration look for them.
                        self._cursor = block_start
                    self.now = time
                    self.current_inserted_at = entry[4]
                    xfired += 1
                    fn = entry[2]
                    arg = entry[3]
                    if arg is not None:
                        fn(arg)
                    else:
                        fn()
                    continue
                materialized = False
                if xt >= 0 and (xt | _BLOCK_MASK) == (self._cursor | _BLOCK_MASK):
                    # Express entries share the block about to drain:
                    # materialize them; the (time, serial) sort puts each at
                    # its exact legacy position among the wheel events.
                    block_end = self._cursor | _BLOCK_MASK
                    while express and express[0][0] <= block_end:
                        entry = heappop(express)
                        self._materialize(
                            entry[0], entry[1], entry[2], entry[3], entry[4]
                        )
                        materialized = True
                if len(bucket) == 1:
                    # Single-occupant block (the common case for sparse
                    # traffic): detach the event up front — no drain
                    # bookkeeping, and the slot is already clean if the
                    # callback compacts or audits the queue.
                    event = bucket[0]
                    time = event.time
                    if time > limit:
                        break
                    bucket.clear()
                    masks[0] &= ~(1 << slot)
                    self._queued -= 1
                    if event.cancelled:
                        self._cancelled_in_queue -= 1
                        event.engine = None
                        # refs: local variable, getrefcount arg. A recycled
                        # event keeps fn/args until reuse overwrites them
                        # (freelist is LIFO, so that is imminent).
                        if getrc(event) == 2 and len(free) < _FREELIST_MAX:
                            free.append(event)
                            self.events_recycled += 1
                        else:
                            event.fn = None  # type: ignore[assignment]
                            event.args = ()
                        continue
                    self.now = time
                    self.current_inserted_at = event.inserted_at
                    fired += 1
                    fn = event.fn
                    args = event.args
                    event.engine = None
                    if getrc(event) == 2 and len(free) < _FREELIST_MAX:
                        free.append(event)
                        self.events_recycled += 1
                    else:
                        event.fn = None  # type: ignore[assignment]
                        event.args = ()
                    if args:
                        fn(*args)
                    else:
                        fn()
                    continue
                if not bucket:
                    # A pop-on-cancel emptied the block; clear the stale bit.
                    masks[0] &= ~(1 << slot)
                    continue
                # Multi-event block: a stable sort on time alone recovers
                # exact (time, serial) firing order, because appends happen
                # in ticket order; only a block that just received spliced-in
                # express materializations needs the two-field key.
                bucket.sort(key=_ORDER_KEY if materialized else _TIME_KEY)
                if bucket[0].time > limit:
                    break
                self._draining = True
                self._active_block = self._cursor >> _PRE_SHIFT
                self._active_bucket = bucket
                index = 0
                # Index-based drain: callbacks may insert same-block events
                # ahead of the drain index; they fire in this same pass. Each
                # consumed entry is nulled immediately so mid-callback queue
                # inspection (the auditor) never sees spent events.
                while index < len(bucket):
                    event = bucket[index]
                    if event.time > limit:
                        break
                    bucket[index] = None
                    index += 1
                    self._drain_index = index
                    if event.cancelled:
                        self._cancelled_in_queue -= 1
                        self._queued -= 1
                        event.engine = None
                        # refs: local variable, getrefcount arg
                        if getrc(event) == 2 and len(free) < _FREELIST_MAX:
                            free.append(event)
                            self.events_recycled += 1
                        else:
                            event.fn = None  # type: ignore[assignment]
                            event.args = ()
                        continue
                    self.now = event.time
                    self.current_inserted_at = event.inserted_at
                    self._queued -= 1
                    fired += 1
                    fn = event.fn
                    args = event.args
                    event.engine = None
                    if getrc(event) == 2 and len(free) < _FREELIST_MAX:
                        free.append(event)
                        self.events_recycled += 1
                    else:
                        event.fn = None  # type: ignore[assignment]
                        event.args = ()
                    if args:
                        fn(*args)
                    else:
                        fn()
                    if self._stopped:
                        break
                self._draining = False
                self._active_block = -1
                self._active_bucket = None
                if index >= len(bucket):
                    bucket.clear()
                    masks[0] &= ~(1 << slot)
                else:
                    # stop() or the time bound hit mid-block: keep the
                    # unfired tail for resumption.
                    del bucket[:index]
                if self._compact_pending:
                    self._compact()
        finally:
            self._running = False
            self._draining = False
            self._active_block = -1
            self._active_bucket = None
            self.current_inserted_at = None
            self.events_fired += fired
            self.express_fired += xfired
        if until is not None and self.now < until:
            self.now = until
        return self.now

    # ----------------------------------------------------------------- queries

    def pending_events(self) -> int:
        """Number of queued, non-cancelled events (express entries
        included — they are pending work like any other). O(1)."""
        return self._queued - self._cancelled_in_queue + len(self._express)

    def has_pending_now(self, ignore=()) -> bool:
        """True when another live event is still queued for the *current*
        instant (``time == now``), excluding any event in ``ignore``.

        All events sharing a timestamp live in one level-0 block: events
        queued before the block drain sit in the active bucket, and events
        scheduled for ``now`` mid-drain are insorted ahead of the drain
        index — so scanning the drain tail (or, on the single-occupant fast
        path, the block's slot list) is exhaustive. Express entries for the
        current instant sit at the lane-heap root (time is the primary key;
        same-block entries are materialized before a drain, so none can hide
        mid-drain). Used by the train wake to defer same-instant deliveries
        to the end of the instant.
        """
        now = self.now
        express = self._express
        if express and express[0][0] == now:
            return True
        if (
            self._draining
            and self._active_bucket is not None
            and (now >> _PRE_SHIFT) == self._active_block
        ):
            tail = self._active_bucket[self._drain_index :]
        else:
            bucket = self._slots[0][(now >> _PRE_SHIFT) & _WHEEL_MASK]
            tail = bucket if bucket else ()
        for event in tail:
            if (
                event is not None
                and not event.cancelled
                and event.time == now
                and event not in ignore
            ):
                return True
        return False

    def _iter_queued(self):
        """Every queued event (wheel slots in level order, then the heap).

        Skips the ``None`` holes a mid-drain slot contains in place of
        already-consumed events.
        """
        for level, bucket_list in enumerate(self._slots):
            mask = self._masks[level]
            if not mask:
                continue
            for slot in range(_WHEEL_SLOTS):
                if (mask >> slot) & 1:
                    for event in bucket_list[slot]:
                        if event is not None:
                            yield event
        yield from self._heap

    def audit_counts(self) -> dict:
        """Exact queue-hygiene counters for the conservation auditor.

        Recounts cancelled events with an O(n) sweep over every wheel slot
        and the overflow heap, so the lazily-maintained cancellation counter
        can be cross-checked against ground truth (see
        :mod:`repro.core.audit`).
        """
        queued = 0
        recount = 0
        for event in self._iter_queued():
            queued += 1
            if event.cancelled:
                recount += 1
        return {
            "queued": queued,
            "cancelled_tracked": self._cancelled_in_queue,
            "cancelled_recount": recount,
            "pending": self.pending_events(),
            "express_pending": len(self._express),
            "express_registered": self.express_registered,
            "express_fired": self.express_fired,
            "express_materialized": self.express_materialized,
        }
