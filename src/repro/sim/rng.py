"""Deterministic random-number streams.

Each named consumer (packet loss, RSS hashing, jitter, ...) gets its own
``random.Random`` seeded from the experiment seed and its name, so adding a new
consumer never perturbs the draws seen by existing ones.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RngStreams:
    """Factory of independent named deterministic RNG streams."""

    def __init__(self, seed: int = 1) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            derived = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
            rng = random.Random(derived)
            self._streams[name] = rng
        return rng

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngStreams seed={self.seed} streams={sorted(self._streams)}>"
