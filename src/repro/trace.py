"""Per-stage latency tracing through the simulated stack (DESIGN.md §12).

The paper attributes *cycles* to stack layers (Table 1); this module
attributes *latency*. With ``ExperimentConfig.trace`` on, every payload unit
is timestamped at the §2.1 stage boundaries — app ``write()``, TCP transmit,
GSO/qdisc/driver, NIC Tx, wire, NIC Rx DMA, IRQ/NAPI poll, GRO + TCP receive,
socket queue, and the single data copy into userspace — and each interval
lands in a fixed log2-bucket streaming histogram. The histograms have no
reservoir cap (a 64-bucket vector absorbs any sample count exactly), merge by
elementwise addition (associative, so ``run_many`` worker fan-out composes in
any order), and round-trip losslessly through the result export.

Stamping rules (what makes this frame-train-correct):

* ``engine.now`` read inside a CPU job's ``done()`` callback, or in a syscall
  path, equals the legacy event time in both wire modes — the train
  pipeline's ``_pending_finishes`` mechanism only defers finishes due at the
  *current* instant, so ``done()`` always runs at the job's finish time.
* Train replay entry points (``Link.serialize_at``, ``Nic._rx_ingest``) may
  execute after the instant they model; hooks there must use the *virtual*
  time handed in (``vt`` / the arrival), never ``engine.now``.

Traced results are therefore byte-identical with and without ``--no-train``
(property-tested), and untraced runs are untouched: every hook is guarded by
one ``is not None`` attribute check on a reference that is ``None`` unless
tracing was requested.

The internal ``e2e`` stream repeats the copy-latency measurement (NAPI poll
instant to copy start, per skb) inside the trace so the auditor can check the
telescoping identity ``rx_softirq.total + rx_sockq.total == e2e.total``
sample-exactly, and cross-check ``e2e`` against the reservoir-backed
copy-latency metric.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Fixed bucket count: bucket 0 holds exactly-zero deltas, bucket b >= 1
#: covers [2^(b-1), 2^b - 1] ns. 63 doubling buckets reach ~292 years.
NUM_BUCKETS = 64

#: The stage taxonomy, in data-path order: (key, unit, human label). The
#: ``unit`` names what one recorded sample corresponds to — stages measure
#: different granularities (a burst fans out into frames, GRO folds frames
#: back into skbs), so per-stage counts legitimately differ.
STAGES: Tuple[Tuple[str, str, str], ...] = (
    ("tx_queue", "burst", "app write() -> TCP transmit"),
    ("tx_xmit", "burst", "TCP transmit -> NIC doorbell (GSO/qdisc/driver)"),
    ("tx_wire", "frame", "NIC doorbell -> last bit serialized"),
    ("wire", "frame", "wire exit -> NIC Rx DMA"),
    ("rx_ring", "cmpl", "NIC Rx DMA -> NAPI poll (IRQ + ring wait)"),
    ("rx_softirq", "skb", "NAPI poll -> socket enqueue (GRO + TCP rx)"),
    ("rx_sockq", "skb", "socket enqueue -> recv copy start"),
    ("rx_copy", "recv", "recv copy start -> data visible to app"),
    ("e2e", "skb", "NAPI poll -> recv copy start (end-to-end)"),
)

STAGE_KEYS: Tuple[str, ...] = tuple(key for key, _, _ in STAGES)
STAGE_UNITS: Dict[str, str] = {key: unit for key, unit, _ in STAGES}
STAGE_LABELS: Dict[str, str] = {key: label for key, _, label in STAGES}


class StageHistogram:
    """Streaming log2 histogram of non-negative nanosecond deltas.

    Exact count / total / max plus a fixed 64-bucket population vector:
    unbounded sample streams aggregate in O(1) memory with no reservoir (and
    hence no sampling noise in the sum identity the auditor checks).
    """

    __slots__ = ("count", "total_ns", "max_ns", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0
        self.buckets = [0] * NUM_BUCKETS

    def record(self, delta_ns: int) -> None:
        """Record one interval. Bucket index is ``delta.bit_length()``:
        0 -> bucket 0, [2^(b-1), 2^b - 1] -> bucket b."""
        self.buckets[delta_ns.bit_length()] += 1
        self.count += 1
        self.total_ns += delta_ns
        if delta_ns > self.max_ns:
            self.max_ns = delta_ns

    def clear(self) -> None:
        """Zero in place (warmup reset) — callers holding a reference to this
        histogram keep recording into the same object."""
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0
        for index in range(NUM_BUCKETS):
            self.buckets[index] = 0

    def merge(self, other: "StageHistogram") -> None:
        """Fold ``other`` into this histogram (elementwise, associative)."""
        self.count += other.count
        self.total_ns += other.total_ns
        if other.max_ns > self.max_ns:
            self.max_ns = other.max_ns
        buckets = self.buckets
        for index, population in enumerate(other.buckets):
            buckets[index] += population

    @property
    def avg_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Estimated p-quantile: walk the buckets to the target rank, then
        interpolate linearly inside the landing bucket. Exact for bucket 0
        (all-zero deltas); elsewhere accurate to the bucket's factor-of-two
        width, which is all a log2 sketch can promise."""
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        accumulated = 0
        for index, population in enumerate(self.buckets):
            if population == 0:
                continue
            if accumulated + population >= target:
                if index == 0:
                    return 0.0
                low = 1 << (index - 1)
                high = (1 << index) - 1
                inside = (target - accumulated) / population
                # The landing bucket's upper edge can exceed the exact max;
                # never report a quantile above an observed value.
                return min(low + (high - low) * inside, float(self.max_ns))
            accumulated += population
        return float(self.max_ns)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "max_ns": self.max_ns,
            # sparse encoding: only populated buckets, keyed by index
            "buckets": {
                str(index): population
                for index, population in enumerate(self.buckets)
                if population
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StageHistogram":
        hist = cls()
        hist.count = payload["count"]
        hist.total_ns = payload["total_ns"]
        hist.max_ns = payload["max_ns"]
        for index, population in payload["buckets"].items():
            hist.buckets[int(index)] = population
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StageHistogram):
            return NotImplemented
        return (
            self.count == other.count
            and self.total_ns == other.total_ns
            and self.max_ns == other.max_ns
            and self.buckets == other.buckets
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<StageHistogram n={self.count} avg={self.avg_ns:.0f}ns "
            f"max={self.max_ns}ns>"
        )


class SideTrace:
    """One host's per-stage histograms. Hot-path recorders fetch a stage's
    histogram once via :meth:`stage` and call ``record`` on it directly;
    :meth:`clear` zeroes in place so those references survive the warmup
    reset."""

    __slots__ = ("host", "stages")

    def __init__(self, host: str) -> None:
        self.host = host
        self.stages: Dict[str, StageHistogram] = {
            key: StageHistogram() for key in STAGE_KEYS
        }

    def stage(self, key: str) -> StageHistogram:
        return self.stages[key]

    def clear(self) -> None:
        for hist in self.stages.values():
            hist.clear()


class TraceHub:
    """Shared trace sink for one experiment (one :class:`SideTrace` per
    host), mirroring how :class:`~repro.core.metrics.MetricsHub` is shared."""

    def __init__(self) -> None:
        self.sides: Dict[str, SideTrace] = {}

    def side(self, host: str) -> SideTrace:
        side = self.sides.get(host)
        if side is None:
            side = self.sides[host] = SideTrace(host)
        return side

    def reset(self) -> None:
        """Discard warmup recordings (in place: recorder references held by
        the NIC/link/endpoints stay live)."""
        for side in self.sides.values():
            side.clear()

    def report(self) -> "TraceReport":
        """Snapshot every histogram into a detached, serializable report."""
        hosts: Dict[str, Dict[str, StageHistogram]] = {}
        for name, side in self.sides.items():
            hosts[name] = {
                key: StageHistogram.from_dict(hist.to_dict())
                for key, hist in side.stages.items()
            }
        return TraceReport(hosts)


class TraceReport:
    """Serializable per-stage latency breakdown of one (or many, merged)
    traced runs: ``hosts[host][stage] -> StageHistogram``."""

    __slots__ = ("hosts",)

    def __init__(
        self, hosts: Optional[Dict[str, Dict[str, StageHistogram]]] = None
    ) -> None:
        self.hosts: Dict[str, Dict[str, StageHistogram]] = hosts or {}

    def to_dict(self) -> dict:
        return {
            host: {key: hist.to_dict() for key, hist in stages.items()}
            for host, stages in self.hosts.items()
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceReport":
        return cls(
            {
                host: {
                    key: StageHistogram.from_dict(entry)
                    for key, entry in stages.items()
                }
                for host, stages in payload.items()
            }
        )

    @classmethod
    def merge(cls, reports: Iterable["TraceReport"]) -> "TraceReport":
        """Combine reports by summing histograms (associative and
        commutative, so worker fan-out order does not matter)."""
        merged = cls()
        for report in reports:
            for host, stages in report.hosts.items():
                into = merged.hosts.setdefault(host, {})
                for key, hist in stages.items():
                    target = into.get(key)
                    if target is None:
                        into[key] = target = StageHistogram()
                    target.merge(hist)
        return merged

    def check_identity(self) -> Tuple[int, List[str]]:
        """Verify the telescoping sum per host: the receive-side interval
        stages recorded per skb must add up — count-exactly and
        nanosecond-exactly — to the end-to-end stream.

        Returns ``(checks_run, violations)``; empty violations means the
        identity holds. Usable on live reports and on round-tripped ones
        (the CLI re-checks after the worker/cache boundary).
        """
        checks = 0
        violations: List[str] = []
        for host in sorted(self.hosts):
            stages = self.hosts[host]
            softirq = stages.get("rx_softirq")
            sockq = stages.get("rx_sockq")
            e2e = stages.get("e2e")
            if softirq is None or sockq is None or e2e is None:
                continue
            checks += 1
            if not (softirq.count == sockq.count == e2e.count):
                violations.append(
                    f"{host}: stage sample counts diverge "
                    f"(rx_softirq={softirq.count} rx_sockq={sockq.count} "
                    f"e2e={e2e.count})"
                )
            checks += 1
            if softirq.total_ns + sockq.total_ns != e2e.total_ns:
                violations.append(
                    f"{host}: rx_softirq.total + rx_sockq.total != e2e.total "
                    f"({softirq.total_ns} + {sockq.total_ns} != {e2e.total_ns})"
                )
        return checks, violations

    def to_table(self, title: str):
        """Render the per-stage breakdown as a figures-style table
        (microseconds; stages in data-path order, hosts alphabetical)."""
        from .core.report import Table

        table = Table(
            title=title,
            columns=[
                "host", "stage", "unit", "count",
                "avg_us", "p50_us", "p99_us", "max_us",
            ],
        )
        for host in sorted(self.hosts):
            stages = self.hosts[host]
            for key in STAGE_KEYS:
                hist = stages.get(key)
                if hist is None or hist.count == 0:
                    continue
                table.add_row(
                    host,
                    f"{key}: {STAGE_LABELS[key]}",
                    STAGE_UNITS[key],
                    hist.count,
                    hist.avg_ns / 1e3,
                    hist.percentile(0.50) / 1e3,
                    hist.percentile(0.99) / 1e3,
                    hist.max_ns / 1e3,
                )
        return table

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceReport):
            return NotImplemented
        return self.hosts == other.hosts

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TraceReport hosts={sorted(self.hosts)}>"
