"""Unit helpers used throughout the simulator.

The simulator keeps time in integer *nanoseconds*, data sizes in integer
*bytes*, CPU work in floating-point *cycles*, and rates in *bits per second*.
These helpers make call sites read like the paper's prose ("100Gbps link",
"3200KB Rx buffer", "2ms NAPI timeout") instead of raw exponents.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000


def usec(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(value * USEC)


def msec(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(value * MSEC)


def sec(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(value * SEC)


def ns_to_usec(ns: int) -> float:
    """Convert integer nanoseconds to float microseconds."""
    return ns / USEC


def ns_to_sec(ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns / SEC


# --- data size --------------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def kb(value: float) -> int:
    """Convert kibibytes to bytes."""
    return int(value * KB)


def mb(value: float) -> int:
    """Convert mebibytes to bytes."""
    return int(value * MB)


# --- rates -------------------------------------------------------------------

GBPS = 1_000_000_000
MBPS = 1_000_000


def gbps(value: float) -> float:
    """Convert gigabits/sec to bits/sec."""
    return value * GBPS


def bits_per_sec_to_gbps(bps: float) -> float:
    """Convert bits/sec to gigabits/sec."""
    return bps / GBPS


def bytes_to_bits(nbytes: float) -> float:
    """Convert a byte count to bits."""
    return nbytes * 8


#: Memo for :func:`transmission_time_ns` — traffic uses a handful of frame
#: sizes on one or two link rates, so the table stays tiny while the hot
#: per-frame call collapses to a dict hit.
_transmission_time_cache: dict = {}


def transmission_time_ns(nbytes: int, rate_bps: float) -> int:
    """Serialization delay of ``nbytes`` on a link of ``rate_bps``.

    Always at least 1ns so that events retain a strict ordering even for
    tiny control segments.
    """
    key = (nbytes, rate_bps)
    ns = _transmission_time_cache.get(key)
    if ns is None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        ns = _transmission_time_cache[key] = max(
            1, int(round(nbytes * 8 * SEC / rate_bps))
        )
    return ns


def throughput_gbps(nbytes: int, elapsed_ns: int) -> float:
    """Achieved goodput in Gbps for ``nbytes`` delivered over ``elapsed_ns``."""
    if elapsed_ns <= 0:
        return 0.0
    return bytes_to_bits(nbytes) / ns_to_sec(elapsed_ns) / GBPS
