"""Workloads: application bodies (iperf/netperf-like) and traffic patterns."""

from .flows import FlowSpec
from .patterns import build_flow_specs
from .apps import streaming_sender, streaming_receiver, rpc_client, rpc_server

__all__ = [
    "FlowSpec",
    "build_flow_specs",
    "streaming_sender",
    "streaming_receiver",
    "rpc_client",
    "rpc_server",
]
