"""Application bodies.

These mirror the paper's tools (§2.2): iperf-style streaming (one-directional
bulk transfer with large writes/reads) and netperf-style ping-pong RPC with
equal request/response sizes. Both do minimal application-level processing so
measurements isolate the network stack.

Each function returns a ``body_factory`` suitable for
:class:`repro.kernel.sched.AppThread`: a generator yielding syscall ops.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Sequence

from ..kernel.syscall import RecvOp, SendOp
from ..kernel.tcp.endpoint import TcpEndpoint

BodyFactory = Callable[[object], Generator]


def streaming_sender(endpoint: TcpEndpoint, write_bytes: int) -> BodyFactory:
    """iperf sender: write ``write_bytes`` forever."""

    def body(thread) -> Generator:
        while True:
            yield SendOp(endpoint, write_bytes)

    return body


def streaming_receiver(endpoint: TcpEndpoint, read_bytes: int) -> BodyFactory:
    """iperf receiver: drain the socket forever."""

    def body(thread) -> Generator:
        while True:
            yield RecvOp([endpoint], read_bytes)

    return body


def rpc_client(endpoint: TcpEndpoint, rpc_bytes: int) -> BodyFactory:
    """netperf-style client: send a request, wait for the full response."""

    def body(thread) -> Generator:
        while True:
            yield SendOp(endpoint, rpc_bytes)
            received = 0
            while received < rpc_bytes:
                _, nbytes = yield RecvOp([endpoint], rpc_bytes - received)
                received += nbytes

    return body


def rpc_server(endpoints: Sequence[TcpEndpoint], rpc_bytes: int) -> BodyFactory:
    """RPC server multiplexing any number of ping-pong connections in one
    thread (the Fig-10 receiver application)."""

    eps: List[TcpEndpoint] = list(endpoints)

    def body(thread) -> Generator:
        progress = {ep.flow_id: 0 for ep in eps}
        while True:
            ep, nbytes = yield RecvOp(eps, rpc_bytes)
            progress[ep.flow_id] += nbytes
            if progress[ep.flow_id] >= rpc_bytes:
                progress[ep.flow_id] = 0
                yield SendOp(ep, rpc_bytes)

    return body
