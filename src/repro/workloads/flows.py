"""Flow descriptors produced by the traffic-pattern builders."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlowSpec:
    """One connection of an experiment.

    ``sender_rank``/``receiver_rank`` index into each host's core placement
    order (NIC-local node first by default), not raw core ids; the experiment
    resolves them against the configured NUMA policy.
    """

    flow_id: int
    kind: str  # "stream" (iperf-like) or "rpc" (netperf ping-pong)
    sender_rank: int
    receiver_rank: int
    tag: str = "long"
    #: rpc flows whose server side is multiplexed into one application thread
    shared_server_thread: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("stream", "rpc"):
            raise ValueError(f"unknown flow kind {self.kind!r}")
