"""Traffic patterns (paper Fig 2, plus the §3.7 short-flow scenarios).

Each builder returns the :class:`FlowSpec` list for one experiment:

* **single** — one flow, sender core 0 → receiver core 0.
* **one-to-one** — flow *i*: sender core *i* → receiver core *i*.
* **incast** — every sender core → receiver core 0.
* **outcast** — sender core 0 → every receiver core.
* **all-to-all** — x sender cores × x receiver cores (x² flows).
* **rpc-incast** — N ping-pong clients (one per sender core) → a single
  server application thread on receiver core 0 (Fig 10's 16:1 setup).
* **mixed** — one long flow plus N short RPC flows, all application threads
  sharing core 0 on both hosts (Fig 11).
"""

from __future__ import annotations

from typing import List

from ..config import ExperimentConfig, TrafficPattern
from .flows import FlowSpec


def build_flow_specs(config: ExperimentConfig) -> List[FlowSpec]:
    """Flow list for ``config`` (see module docstring for the pattern map)."""
    n = config.num_flows
    pattern = config.pattern
    if pattern is TrafficPattern.SINGLE:
        return [FlowSpec(1, "stream", 0, 0)]
    if pattern is TrafficPattern.ONE_TO_ONE:
        return [FlowSpec(i + 1, "stream", i, i) for i in range(n)]
    if pattern is TrafficPattern.INCAST:
        return [FlowSpec(i + 1, "stream", i, 0) for i in range(n)]
    if pattern is TrafficPattern.OUTCAST:
        return [FlowSpec(i + 1, "stream", 0, i) for i in range(n)]
    if pattern is TrafficPattern.ALL_TO_ALL:
        specs = []
        flow_id = 1
        for i in range(n):
            for j in range(n):
                specs.append(FlowSpec(flow_id, "stream", i, j))
                flow_id += 1
        return specs
    if pattern is TrafficPattern.RPC_INCAST:
        return [
            FlowSpec(i + 1, "rpc", i, 0, tag="rpc", shared_server_thread=True)
            for i in range(n)
        ]
    if pattern is TrafficPattern.MIXED:
        specs = []
        if config.workload.include_long_flow:
            specs.append(FlowSpec(1, "stream", 0, 0, tag="long"))
        for i in range(config.workload.num_rpc_flows):
            specs.append(FlowSpec(i + 2, "rpc", 0, 0, tag="short"))
        if not specs:
            raise ValueError("MIXED pattern with no long flow and no RPC flows")
        return specs
    raise ValueError(f"unknown traffic pattern: {pattern}")
