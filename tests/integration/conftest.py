"""Shared fixtures for integration tests.

Heavyweight scenario results are computed once per session and shared across
the assertions that consume them.
"""

import pytest

from repro.config import ExperimentConfig, OptimizationConfig, TrafficPattern
from repro.core.experiment import Experiment
from repro.units import msec

DURATION = msec(6)


def run(config, warmup_ms=10):
    return Experiment(
        config.replace(duration_ns=DURATION, warmup_ns=msec(warmup_ms))
    ).run()


@pytest.fixture(scope="session")
def single_flow_result():
    """The §3.1 baseline: single flow, all optimizations."""
    return run(ExperimentConfig())


@pytest.fixture(scope="session")
def ladder_results():
    """Fig 3a: the four incremental optimization columns."""
    return {
        label: run(ExperimentConfig(opts=opts))
        for label, opts in OptimizationConfig.incremental_ladder()
    }


@pytest.fixture(scope="session")
def incast_results():
    """Fig 6: incast with 1 and 8 flows."""
    return {
        n: run(
            ExperimentConfig(pattern=TrafficPattern.INCAST, num_flows=n),
            warmup_ms=35,
        )
        for n in (1, 8)
    }
