"""Strict conservation audit over every figure config in the repo.

This is the acceptance gate for the auditor: each experiment config any
figure generator would run (with shortened measurement windows — the
invariants are instant-exact, so they hold regardless of duration) must pass
byte, cycle, wire, and event-queue conservation with zero violations.

The configs are harvested by running every figure generator against a
recording stub of ``run_many``, so new figures and new sweep points are
audited automatically as they are added.
"""

import pytest

from repro.config import ExperimentConfig
from repro.core.audit import AuditError, audit_experiment
from repro.core.cache import config_cache_key
from repro.core.experiment import Experiment
from repro.core.runner import run_many
from repro.figures import ALL_FIGURES
from repro.figures import base as figures_base
from repro.units import msec

#: Shortened windows for the sweep: long enough to reach steady state with
#: retransmissions/drops in the loss configs, short enough to audit ~130
#: unique configs in one test run.
AUDIT_DURATION_NS = msec(2)
AUDIT_WARMUP_NS = msec(3)


def _figure_generators():
    generators = {}
    for module in ALL_FIGURES.values():
        for name in dir(module):
            if name.startswith("fig") and callable(getattr(module, name)):
                generators[name] = getattr(module, name)
    return generators


def harvest_figure_configs(monkeypatch):
    """Every config any figure generator submits, deduplicated by content
    hash after shortening the measurement windows."""
    captured = []
    # One real (tiny) result satisfies every generator's table-building code.
    stand_in = Experiment(
        ExperimentConfig(duration_ns=msec(1), warmup_ns=msec(1))
    ).run()

    def recording_run_many(configs, **kwargs):
        configs = list(configs)
        captured.extend(configs)
        return [stand_in] * len(configs)

    monkeypatch.setattr(figures_base, "run_many", recording_run_many)
    for name, generator in sorted(_figure_generators().items()):
        generator()

    shortened = [
        config.replace(duration_ns=AUDIT_DURATION_NS, warmup_ns=AUDIT_WARMUP_NS)
        for config in captured
    ]
    unique = {config_cache_key(config): config for config in shortened}
    assert len(captured) >= 100, "figure harvest looks implausibly small"
    return list(unique.values())


def test_every_figure_config_passes_strict_audit(monkeypatch):
    configs = harvest_figure_configs(monkeypatch)
    assert len(configs) >= 50
    failures = []
    for config in configs:
        experiment = Experiment(config)
        experiment.run()
        try:
            audit_experiment(experiment, strict=True)
        except AuditError as error:
            failures.append(f"{config.to_canonical_dict()}:\n{error}")
    assert not failures, "\n\n".join(failures)


def test_audited_run_many_crosses_process_boundary():
    """Audit reports must survive the worker->parent payload round trip."""
    configs = [
        ExperimentConfig(
            duration_ns=AUDIT_DURATION_NS, warmup_ns=AUDIT_WARMUP_NS, seed=seed
        )
        for seed in (1, 2)
    ]
    results = run_many(configs, jobs=2, audit=True)
    assert len(results) == 2
    for result in results:
        assert result.audit_report is not None
        assert result.audit_report.ok, result.audit_report.render()
        assert result.audit_report.checks_run > 20


def test_audit_disables_cache(tmp_path):
    """Audited batches must not read or write the result cache: a cached
    entry carries the audit of the run that produced it, not this one."""
    from repro.core.cache import ResultCache
    from repro.core.runner import RunnerStats

    cache = ResultCache(tmp_path)
    config = ExperimentConfig(duration_ns=msec(1), warmup_ns=msec(1))
    stats = RunnerStats()
    run_many([config], cache=cache, stats=stats, audit=True)
    assert len(cache) == 0
    assert stats.cache_hits == 0 and stats.cache_misses == 0

    # and an unaudited run afterwards still caches normally
    run_many([config], cache=cache, stats=stats)
    assert len(cache) == 1


@pytest.mark.parametrize("figure_name", ["fig3a"])
def test_figure_audit_pipeline_end_to_end(figure_name):
    """The CLI path: configure figures for auditing, generate one panel,
    and check the merged report (the `repro audit fig3a` flow)."""
    from repro.core.audit import merge_reports

    generator = _figure_generators()[figure_name]
    monkey_duration = AUDIT_DURATION_NS
    original_prepare = figures_base.prepare

    def short_prepare(config, warmup_ns=None):
        prepared = original_prepare(config, warmup_ns)
        return prepared.replace(
            duration_ns=monkey_duration, warmup_ns=AUDIT_WARMUP_NS
        )

    figures_base.prepare = short_prepare
    figures_base.configure(jobs=1, cache=None, audit=True)
    try:
        generator()
        report = merge_reports(figures_base.AUDIT_REPORTS)
    finally:
        figures_base.prepare = original_prepare
        figures_base.configure()
    assert report.checks_run > 0
    assert report.ok, report.render()
