"""Integration tests for congestion-control protocols (Fig 13)."""

import pytest

from repro.config import CongestionControl, ExperimentConfig, LinkConfig, TcpConfig
from repro.core.taxonomy import Category

from .conftest import run


@pytest.fixture(scope="module")
def cc_results():
    out = {}
    for cc in (CongestionControl.CUBIC, CongestionControl.BBR, CongestionControl.DCTCP):
        link = LinkConfig(has_switch=(cc is CongestionControl.DCTCP))
        out[cc] = run(
            ExperimentConfig(tcp=TcpConfig(congestion_control=cc), link=link),
            warmup_ms=12,
        )
    return out


def test_protocol_choice_barely_moves_throughput(cc_results):
    """Fig 13a: receiver-side bottleneck makes protocols equivalent."""
    values = [r.throughput_per_core_gbps for r in cc_results.values()]
    assert max(values) / min(values) < 1.25


def test_bbr_pacing_raises_sender_scheduling(cc_results):
    """Fig 13b: fq pacing-timer wakeups are BBR's signature."""
    bbr = cc_results[CongestionControl.BBR].sender_breakdown
    cubic = cc_results[CongestionControl.CUBIC].sender_breakdown
    assert bbr.fraction(Category.SCHED) > cubic.fraction(Category.SCHED) + 0.05


def test_receiver_breakdowns_are_alike(cc_results):
    """Fig 13c: sender-driven protocols share receiver-side behaviour."""
    copies = [
        r.receiver_breakdown.fraction(Category.DATA_COPY)
        for r in cc_results.values()
    ]
    assert max(copies) - min(copies) < 0.12


def test_receiver_saturated_for_all_protocols(cc_results):
    for result in cc_results.values():
        assert result.receiver_utilization_cores > 0.85
