"""Cross-cutting consistency checks: byte conservation and determinism."""

import pytest

from repro.config import ExperimentConfig, TrafficPattern
from repro.core.experiment import Experiment
from repro.units import msec


def build_and_run(seed=1, **kwargs):
    config = ExperimentConfig(
        duration_ns=msec(4), warmup_ns=msec(4), seed=seed, **kwargs
    )
    experiment = Experiment(config)
    result = experiment.run()
    return experiment, result


def test_receiver_never_acks_unsent_data():
    experiment, _ = build_and_run()
    for flow_id, snd in experiment.sender.endpoints.items():
        rcv = experiment.receiver.endpoints[flow_id]
        assert rcv.rcv_nxt <= snd.snd_nxt
        assert snd.snd_una <= rcv.rcv_nxt


def test_all_flows_make_progress_one_to_one():
    experiment, _ = build_and_run(
        pattern=TrafficPattern.ONE_TO_ONE, num_flows=8
    )
    for flow_id in experiment.receiver.endpoints:
        assert experiment.metrics.flow_bytes("receiver", flow_id) > 0


def test_same_seed_reproduces_exactly():
    _, first = build_and_run(seed=7)
    _, second = build_and_run(seed=7)
    assert first.total_throughput_gbps == second.total_throughput_gbps
    assert first.receiver_utilization_cores == second.receiver_utilization_cores
    assert first.receiver_cache_miss_rate == second.receiver_cache_miss_rate


def test_different_seeds_still_close():
    """Randomness (hashing, eviction) should not change steady state much."""
    _, first = build_and_run(seed=1)
    _, second = build_and_run(seed=99)
    assert first.total_throughput_gbps == pytest.approx(
        second.total_throughput_gbps, rel=0.2
    )


def test_utilization_within_physical_limits():
    experiment, result = build_and_run(pattern=TrafficPattern.INCAST, num_flows=8)
    total_cores = experiment.receiver.topology.total_cores
    assert 0 <= result.receiver_utilization_cores <= total_cores
    assert 0 <= result.sender_utilization_cores <= total_cores
