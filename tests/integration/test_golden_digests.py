"""Golden-digest regression test: the simulator's observable behaviour.

Compares every unique figure-experiment config against the committed
reference in ``tests/golden/figure_digests.json``: the persistent-cache key
of the full-window config must be unchanged (cache compatibility across the
engine swap) and the SHA-256 digest of the canonical ``result_to_dict``
payload of a shortened run must be byte-identical (no float anywhere in any
result moved). The reference was generated with the pre-timer-wheel heap
engine, so this test is the proof that the wheel + hot-path rewrites are
behaviour-preserving.

Regenerate after an intentional behaviour change::

    PYTHONPATH=src python tools/gen_golden_digests.py
"""

import json
from pathlib import Path

import pytest

from repro.core.cache import CACHE_SCHEMA_VERSION, config_cache_key
from repro.golden import (
    GOLDEN_DURATION_NS,
    GOLDEN_WARMUP_NS,
    digest_config,
    harvest_figure_configs,
)

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "figure_digests.json"


@pytest.fixture(scope="module")
def golden_document():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def harvested_configs():
    return harvest_figure_configs()


def test_golden_file_matches_current_schema(golden_document):
    assert golden_document["cache_schema_version"] == CACHE_SCHEMA_VERSION
    assert golden_document["duration_ns"] == GOLDEN_DURATION_NS
    assert golden_document["warmup_ns"] == GOLDEN_WARMUP_NS


def test_all_figure_configs_are_pinned(golden_document, harvested_configs):
    """Every config a figure submits has a golden entry, and vice versa."""
    current_keys = {config_cache_key(config) for config in harvested_configs}
    golden_keys = set(golden_document["digests"])
    assert current_keys == golden_keys
    assert len(golden_keys) >= 100


def test_result_digests_are_byte_identical(golden_document, harvested_configs):
    """Run every pinned config and compare result digests against golden."""
    digests = golden_document["digests"]
    mismatches = []
    for config in harvested_configs:
        key, digest = digest_config(config)
        expected = digests[key]["result_sha256"]
        if digest != expected:
            mismatches.append((digests[key]["summary"], expected, digest))
    assert not mismatches, (
        f"{len(mismatches)} of {len(harvested_configs)} configs diverged "
        f"from golden digests; first: {mismatches[0]}"
    )
