"""repro lint against the real tree: clean baseline, and regression traps.

The second half mutates real source files (in memory, never on disk) into
the shapes of bugs each checker exists to prevent, and asserts the mutation
is caught as a NEW finding — i.e. one the committed baseline does not
absorb. This is the proof that the gate would have fired on the historical
bug, not merely that the checker runs.
"""

from pathlib import Path

from repro.analysis.baseline import load_baseline
from repro.analysis.lint import run_lint
from repro.analysis.project import Project

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def load_tree_sources() -> dict:
    return {
        path.relative_to(SRC).as_posix(): path.read_text()
        for path in sorted(SRC.rglob("*.py"))
    }


def run_on(sources: dict):
    return run_lint(Project.from_sources(sources))


class TestCleanTree:
    def test_committed_baseline_keeps_tree_green(self):
        report = run_lint()
        assert report.syntax_errors == []
        assert [f.render() for f in report.baseline.new] == []
        assert report.baseline.stale == []
        assert report.exit_code == 0

    def test_baseline_entries_all_carry_reasons(self):
        for entry in load_baseline():
            assert entry.reason, f"baseline entry without a reason: {entry}"

    def test_baseline_is_express_fallbacks_only(self):
        # Today's accepted debt is exactly the gated wheel fallbacks of the
        # express lane; anything else appearing here deserves review.
        entries = load_baseline()
        assert {e.rule for e in entries} == {"express-wheel-schedule"}


class TestHistoricalBugShapes:
    def test_deleting_express_from_cache_key_excluded_is_caught(self):
        sources = load_tree_sources()
        target = 'CACHE_KEY_EXCLUDED = frozenset({"frame_trains", "express"})'
        assert target in sources["config.py"]
        sources["config.py"] = sources["config.py"].replace(
            target, 'CACHE_KEY_EXCLUDED = frozenset({"frame_trains"})'
        )
        report = run_on(sources)
        new = [f for f in report.baseline.new if f.rule == "key-marked-not-declared"]
        assert len(new) == 1
        assert "express" in new[0].message
        assert report.exit_code == 1

    def test_wallclock_in_engine_is_caught(self):
        sources = load_tree_sources()
        sources["sim/engine.py"] += (
            "\n\nimport time\n\n"
            "def _drift_stamp():\n"
            "    return time.time()\n"
        )
        report = run_on(sources)
        new = [
            f
            for f in report.baseline.new
            if f.rule == "det-wallclock" and f.path == "src/repro/sim/engine.py"
        ]
        assert [f.symbol for f in new] == ["_drift_stamp"]
        assert report.exit_code == 1

    def test_wheel_schedule_in_express_callback_is_caught(self):
        sources = load_tree_sources()
        anchor = "def _rto_express_fire(self, serial: int) -> None:"
        assert anchor in sources["kernel/tcp/endpoint.py"]
        sources["kernel/tcp/endpoint.py"] = sources["kernel/tcp/endpoint.py"].replace(
            anchor,
            anchor + "\n        self.engine.schedule(1, self._rto_fire)",
        )
        report = run_on(sources)
        new = [
            f
            for f in report.baseline.new
            if f.rule == "express-wheel-schedule"
            and f.symbol == "TcpEndpoint._rto_express_fire"
        ]
        assert new, "direct wheel scheduling inside the lane callback not caught"
        assert report.exit_code == 1

    def test_dropped_slot_assignment_in_frame_fast_path_is_caught(self):
        sources = load_tree_sources()
        target = "            frame.trace_ns = None\n"
        assert target in sources["kernel/tcp/endpoint.py"]
        sources["kernel/tcp/endpoint.py"] = sources["kernel/tcp/endpoint.py"].replace(
            target, "", 1
        )
        report = run_on(sources)
        new = [
            f
            for f in report.baseline.new
            if f.rule == "slots-incomplete-new"
            and f.path == "src/repro/kernel/tcp/endpoint.py"
        ]
        assert len(new) == 1
        assert "trace_ns" in new[0].message

    def test_unsorted_glob_in_cache_is_caught(self):
        sources = load_tree_sources()
        target = 'candidates = sorted(directory.glob("*.tmp.*"))'
        assert target in sources["core/cache.py"]
        sources["core/cache.py"] = sources["core/cache.py"].replace(
            target, 'candidates = list(directory.glob("*.tmp.*"))'
        )
        report = run_on(sources)
        new = [f for f in report.baseline.new if f.rule == "det-fs-order"]
        assert [f.path for f in new] == ["src/repro/core/cache.py"]


class TestCliGate:
    def test_lint_subcommand_exit_codes(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 new" in out

        # Against an empty baseline the accepted findings become new again:
        # the gate must go red.
        empty = tmp_path / "empty-baseline.json"
        assert main(["lint", "--baseline", str(empty)]) == 1
        out = capsys.readouterr().out
        assert "express-wheel-schedule" in out
