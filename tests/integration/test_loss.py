"""Integration tests for in-network congestion (Fig 9)."""

import pytest

from repro.config import ExperimentConfig, LinkConfig
from repro.core.taxonomy import Category

from .conftest import run


@pytest.fixture(scope="module")
def loss_results():
    return {
        p: run(
            ExperimentConfig(link=LinkConfig(loss_rate=p, has_switch=True)),
            warmup_ms=12,
        )
        for p in (0.0, 1.5e-3, 1.5e-2)
    }


def test_throughput_collapses_with_loss(loss_results):
    assert (
        loss_results[1.5e-2].total_throughput_gbps
        < loss_results[1.5e-3].total_throughput_gbps
        < loss_results[0.0].total_throughput_gbps
    )


def test_losses_cause_retransmissions(loss_results):
    assert loss_results[0.0].retransmits == 0
    assert loss_results[1.5e-2].retransmits > loss_results[1.5e-3].retransmits > 0


def test_wire_drops_match_configured_rate(loss_results):
    result = loss_results[1.5e-2]
    assert result.wire_drops > 0


def test_tcp_and_netdev_fractions_grow_with_loss(loss_results):
    """Fig 9c/9d: ACK processing and retransmissions eat into data copy."""
    clean = loss_results[0.0].receiver_breakdown
    lossy = loss_results[1.5e-2].receiver_breakdown
    assert lossy.fraction(Category.TCPIP) > clean.fraction(Category.TCPIP)
    assert lossy.fraction(Category.NETDEV) > clean.fraction(Category.NETDEV)
    assert lossy.fraction(Category.DATA_COPY) < clean.fraction(Category.DATA_COPY)


def test_receiver_utilization_falls_with_loss(loss_results):
    """Fig 9b: the receiver idles as the sender throttles."""
    assert (
        loss_results[1.5e-2].receiver_utilization_cores
        < 0.7 * loss_results[0.0].receiver_utilization_cores
    )


def test_sender_receiver_gap_narrows(loss_results):
    """Fig 9b: the sender does the retransmission heavy lifting."""
    def gap(result):
        return result.receiver_utilization_cores / max(
            result.sender_utilization_cores, 1e-9
        )

    assert gap(loss_results[1.5e-2]) < gap(loss_results[0.0])
