"""Integration tests for NUMA placement (Fig 4), DCA and IOMMU (Fig 12)."""

import pytest

from repro.config import ExperimentConfig, HostConfig, NumaPolicy
from repro.core.taxonomy import Category

from .conftest import run


@pytest.fixture(scope="module")
def remote_numa_result():
    return run(ExperimentConfig(numa_policy=NumaPolicy.NIC_REMOTE))


@pytest.fixture(scope="module")
def dca_off_result():
    return run(ExperimentConfig(host=HostConfig(dca_enabled=False)))


@pytest.fixture(scope="module")
def iommu_result():
    return run(ExperimentConfig(host=HostConfig(iommu_enabled=True)))


def test_remote_numa_drops_throughput(single_flow_result, remote_numa_result):
    """Paper: ~20% throughput-per-core drop on a NIC-remote node."""
    ratio = (
        remote_numa_result.throughput_per_core_gbps
        / single_flow_result.throughput_per_core_gbps
    )
    assert 0.70 <= ratio <= 0.92


def test_remote_numa_misses_everything(remote_numa_result):
    """DCA cannot reach a remote node's L3 (§3.1, Fig 4)."""
    assert remote_numa_result.receiver_cache_miss_rate > 0.95


def test_dca_off_drops_throughput(single_flow_result, dca_off_result):
    """Paper: ~19% degradation with DDIO disabled (§3.8)."""
    ratio = (
        dca_off_result.throughput_per_core_gbps
        / single_flow_result.throughput_per_core_gbps
    )
    assert 0.70 <= ratio <= 0.92
    assert dca_off_result.receiver_cache_miss_rate > 0.95


def test_dca_off_does_not_shift_breakdown(single_flow_result, dca_off_result):
    """Fig 12b/c: disabling DCA changes costs, not the category mix."""
    for result in (single_flow_result, dca_off_result):
        assert result.receiver_breakdown.top()[0] is Category.DATA_COPY


def test_iommu_drops_throughput(single_flow_result, iommu_result):
    """Paper: ~26% degradation with the IOMMU enabled (§3.9)."""
    ratio = (
        iommu_result.throughput_per_core_gbps
        / single_flow_result.throughput_per_core_gbps
    )
    assert 0.60 <= ratio <= 0.85


def test_iommu_inflates_memory_management(single_flow_result, iommu_result):
    """Fig 12c: per-page map/unmap lands in the memory category (~30%)."""
    base = single_flow_result.receiver_breakdown.fraction(Category.MEMORY)
    with_iommu = iommu_result.receiver_breakdown.fraction(Category.MEMORY)
    assert with_iommu > base + 0.10
    assert with_iommu > 0.25
