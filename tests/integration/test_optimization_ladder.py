"""Integration tests for Fig 3a's incremental optimization ladder."""

from repro.core.taxonomy import Category


def test_ladder_is_monotonically_increasing(ladder_results):
    ordered = ["No Opt.", "+TSO/GRO", "+Jumbo", "+aRFS"]
    values = [ladder_results[label].throughput_per_core_gbps for label in ordered]
    assert values == sorted(values)


def test_no_opt_is_an_order_of_magnitude_slower(ladder_results):
    no_opt = ladder_results["No Opt."].throughput_per_core_gbps
    all_opt = ladder_results["+aRFS"].throughput_per_core_gbps
    assert no_opt < 12  # paper: ~8Gbps
    assert all_opt / no_opt > 3.5  # paper: ~5x


def test_no_opt_bottleneck_is_protocol_processing(ladder_results):
    """Without aggregation, TCP/IP per-skb costs dominate (§3.1)."""
    breakdown = ladder_results["No Opt."].receiver_breakdown
    assert breakdown.fraction(Category.TCPIP) > breakdown.fraction(Category.DATA_COPY)


def test_no_opt_lock_contention_visible(ladder_results):
    """App and softirq contexts on different cores contend on the socket."""
    no_opt = ladder_results["No Opt."].receiver_breakdown
    all_opt = ladder_results["+aRFS"].receiver_breakdown
    assert no_opt.fraction(Category.LOCK) > all_opt.fraction(Category.LOCK)


def test_jumbo_reduces_gro_cost(ladder_results):
    """Fewer, larger frames cut the netdev (GRO) share (§3.1)."""
    tso_gro = ladder_results["+TSO/GRO"].receiver_breakdown
    jumbo = ladder_results["+Jumbo"].receiver_breakdown
    assert jumbo.fraction(Category.NETDEV) < tso_gro.fraction(Category.NETDEV)


def test_arfs_lifts_cache_hits(ladder_results):
    """Only aRFS lets the app copy from the (NIC-local) L3 via DCA."""
    assert ladder_results["+Jumbo"].receiver_cache_miss_rate > 0.95
    assert ladder_results["+aRFS"].receiver_cache_miss_rate < 0.8


def test_copy_fraction_grows_along_ladder(ladder_results):
    """As packet processing gets cheaper, data copy takes over."""
    fractions = [
        ladder_results[label].receiver_breakdown.fraction(Category.DATA_COPY)
        for label in ("No Opt.", "+TSO/GRO", "+Jumbo")
    ]
    assert fractions == sorted(fractions)
