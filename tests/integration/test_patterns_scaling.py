"""Integration tests for multi-flow traffic patterns (Figs 5-8)."""

import pytest

from repro.config import ExperimentConfig, TrafficPattern
from repro.core.taxonomy import Category

from .conftest import run


@pytest.fixture(scope="module")
def one2one():
    return {
        n: run(
            ExperimentConfig(pattern=TrafficPattern.ONE_TO_ONE, num_flows=n),
            warmup_ms=12,
        )
        for n in (8, 24)
    }


@pytest.fixture(scope="module")
def all2all():
    return {
        x: run(
            ExperimentConfig(pattern=TrafficPattern.ALL_TO_ALL, num_flows=x),
            warmup_ms=12,
        )
        for x in (8, 24)
    }


@pytest.fixture(scope="module")
def outcast8():
    return run(
        ExperimentConfig(pattern=TrafficPattern.OUTCAST, num_flows=8), warmup_ms=12
    )


# --- one-to-one (Fig 5) ------------------------------------------------------


def test_one2one_saturates_the_link(one2one):
    assert one2one[8].total_throughput_gbps > 90
    assert one2one[24].total_throughput_gbps > 90


def test_one2one_per_core_decreases_with_flows(single_flow_result, one2one):
    single = single_flow_result.throughput_per_core_gbps
    assert one2one[8].throughput_per_core_gbps <= single * 1.25
    assert one2one[24].throughput_per_core_gbps < one2one[8].throughput_per_core_gbps
    assert one2one[24].throughput_per_core_gbps < 0.85 * single


def test_one2one_scheduling_overhead_rises(single_flow_result, one2one):
    """Fig 5c: idling receivers sleep/wake constantly at 24 flows."""
    base = single_flow_result.receiver_breakdown.fraction(Category.SCHED)
    at24 = one2one[24].receiver_breakdown.fraction(Category.SCHED)
    assert at24 > base + 0.05


def test_one2one_memory_overhead_falls(single_flow_result, one2one):
    """Fig 5c: lower per-core traffic lets pagesets recycle."""
    base = single_flow_result.receiver_breakdown.fraction(Category.MEMORY)
    at24 = one2one[24].receiver_breakdown.fraction(Category.MEMORY)
    assert at24 < base


# --- incast (Fig 6) -----------------------------------------------------------


def test_incast_miss_rate_grows_with_flows(incast_results):
    """Fig 6c: 48% -> 78% as flows go 1 -> 8 (we accept any clear growth)."""
    assert (
        incast_results[8].receiver_cache_miss_rate
        > incast_results[1].receiver_cache_miss_rate + 0.10
    )


def test_incast_per_core_drops_with_flows(incast_results):
    """Fig 6a: ~19% drop at 8 flows."""
    ratio = (
        incast_results[8].throughput_per_core_gbps
        / incast_results[1].throughput_per_core_gbps
    )
    assert ratio < 0.95


def test_incast_breakdown_stable(incast_results):
    """Fig 6b: category mix does not shift much with incast flows."""
    f1 = incast_results[1].receiver_breakdown.fraction(Category.DATA_COPY)
    f8 = incast_results[8].receiver_breakdown.fraction(Category.DATA_COPY)
    assert abs(f1 - f8) < 0.15


# --- outcast (Fig 7) ------------------------------------------------------------


def test_outcast_sender_efficiency(outcast8):
    """Paper: a single sender core sustains ~89Gbps."""
    assert outcast8.throughput_per_sender_core_gbps > 70


def test_sender_pipeline_beats_receiver_pipeline(outcast8, incast_results):
    """Paper: outcast sender ~2.1x more CPU-efficient than incast receiver."""
    ratio = (
        outcast8.throughput_per_sender_core_gbps
        / incast_results[8].throughput_per_receiver_core_gbps
    )
    assert ratio > 1.6


def test_outcast_sender_cache_stays_warm(outcast8):
    """Fig 7c: sender-side misses stay low (~11% at 24 flows)."""
    assert outcast8.sender_cache_miss_rate < 0.25


# --- all-to-all (Fig 8) -----------------------------------------------------------


def test_all2all_per_core_collapses(single_flow_result, all2all):
    """Fig 8a: ~67% reduction going to 24x24."""
    ratio = (
        all2all[24].throughput_per_core_gbps
        / single_flow_result.throughput_per_core_gbps
    )
    assert ratio < 0.55


def test_all2all_skbs_shrink(single_flow_result, all2all):
    """Fig 8c: post-GRO skb sizes collapse with 576 flows."""
    assert all2all[24].mean_rx_skb_bytes() < 0.5 * single_flow_result.mean_rx_skb_bytes()
    assert all2all[24].mean_rx_skb_bytes() < all2all[8].mean_rx_skb_bytes() * 1.05


def test_all2all_more_flows_lower_per_core(all2all):
    assert (
        all2all[24].throughput_per_core_gbps < all2all[8].throughput_per_core_gbps
    )
