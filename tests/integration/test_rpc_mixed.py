"""Integration tests for short-flow RPCs (Fig 10) and mixed workloads (Fig 11)."""

import pytest

from repro.config import (
    ExperimentConfig,
    NumaPolicy,
    TrafficPattern,
    WorkloadConfig,
)
from repro.core.taxonomy import Category
from repro.units import kb

from .conftest import run


def rpc_config(size_kb, numa=NumaPolicy.NIC_LOCAL_FIRST):
    return ExperimentConfig(
        pattern=TrafficPattern.RPC_INCAST,
        num_flows=16,
        workload=WorkloadConfig(rpc_size_bytes=kb(size_kb)),
        numa_policy=numa,
    )


@pytest.fixture(scope="module")
def rpc_results():
    return {size: run(rpc_config(size), warmup_ms=12) for size in (4, 64)}


def test_rpc_throughput_grows_with_message_size(rpc_results):
    """Fig 10a: throughput-per-core increases with RPC size."""
    assert (
        rpc_results[64].throughput_per_receiver_core_gbps
        > 2 * rpc_results[4].throughput_per_receiver_core_gbps
    )


def test_small_rpcs_copy_not_dominant(rpc_results):
    """Fig 10b: at 4KB, TCP/IP + scheduling beat data copy."""
    breakdown = rpc_results[4].receiver_breakdown
    copy = breakdown.fraction(Category.DATA_COPY)
    assert breakdown.fraction(Category.TCPIP) > copy or copy < 0.30


def test_large_rpcs_look_like_long_flows(rpc_results):
    """Fig 10b: with 64KB RPCs, data copy dominates again."""
    assert rpc_results[64].receiver_breakdown.top()[0] is Category.DATA_COPY


def test_server_core_is_saturated(rpc_results):
    assert rpc_results[4].receiver_utilization_cores > 0.9


def test_numa_placement_barely_matters_for_small_rpcs():
    """Fig 10c: unlike long flows, 4KB RPCs lose little on remote NUMA."""
    local = run(rpc_config(4), warmup_ms=12)
    remote = run(rpc_config(4, numa=NumaPolicy.NIC_REMOTE), warmup_ms=12)
    ratio = (
        remote.throughput_per_receiver_core_gbps
        / local.throughput_per_receiver_core_gbps
    )
    assert ratio > 0.85  # long flows lose ~20%; short flows are marginal


# --- mixed long + short flows (Fig 11) ----------------------------------------


def mixed_config(num_short, include_long=True):
    return ExperimentConfig(
        pattern=TrafficPattern.MIXED,
        workload=WorkloadConfig(
            num_rpc_flows=num_short, include_long_flow=include_long
        ),
    )


@pytest.fixture(scope="module")
def mixed_results():
    return {n: run(mixed_config(n), warmup_ms=12) for n in (0, 16)}


def test_mixing_degrades_per_core_throughput(mixed_results):
    """Fig 11a: ~43% drop with 16 colocated short flows."""
    ratio = (
        mixed_results[16].throughput_per_core_gbps
        / mixed_results[0].throughput_per_core_gbps
    )
    assert ratio < 0.75


def test_both_classes_lose_when_mixed(mixed_results):
    """§3.7: long and short flows each do worse mixed than isolated."""
    long_alone = mixed_results[0].throughput_by_tag_gbps["long"]
    short_alone = run(mixed_config(16, include_long=False), warmup_ms=12)
    short_alone_gbps = short_alone.throughput_by_tag_gbps["short"]
    mixed = mixed_results[16].throughput_by_tag_gbps
    assert mixed["long"] < 0.8 * long_alone
    assert mixed["short"] < 0.9 * short_alone_gbps


def test_mixing_raises_scheduling_pressure(mixed_results):
    base = mixed_results[0].receiver_breakdown.fraction(Category.SCHED)
    mixed = mixed_results[16].receiver_breakdown.fraction(Category.SCHED)
    assert mixed > base
