"""Integration tests for the §3.1 single-flow headline results."""

from repro.core.taxonomy import Category


def test_throughput_per_core_in_paper_band(single_flow_result):
    """The paper reports ~42Gbps-per-core; we accept the 35-60 band."""
    assert 35 <= single_flow_result.throughput_per_core_gbps <= 60


def test_receiver_is_the_bottleneck(single_flow_result):
    assert single_flow_result.bottleneck_side == "receiver"
    assert (
        single_flow_result.receiver_utilization_cores
        > 1.5 * single_flow_result.sender_utilization_cores
    )


def test_receiver_core_fully_utilized(single_flow_result):
    assert single_flow_result.receiver_utilization_cores > 0.95


def test_data_copy_dominates_receiver_cycles(single_flow_result):
    category, fraction = single_flow_result.receiver_breakdown.top()
    assert category is Category.DATA_COPY
    assert fraction > 0.40


def test_single_flow_sees_high_cache_misses(single_flow_result):
    """§3.1's surprise: ~49% L3 misses even without cache contention."""
    assert 0.35 <= single_flow_result.receiver_cache_miss_rate <= 0.80


def test_sender_copy_mostly_hits(single_flow_result):
    assert single_flow_result.sender_cache_miss_rate < 0.15


def test_stack_latency_reflects_standing_queue(single_flow_result):
    """Host latency from NAPI to copy is hundreds of microseconds."""
    avg_us = single_flow_result.copy_latency.avg_ns / 1000
    assert 100 <= avg_us <= 3000
    assert single_flow_result.copy_latency.p99_ns >= single_flow_result.copy_latency.avg_ns


def test_no_losses_on_clean_direct_link(single_flow_result):
    assert single_flow_result.wire_drops == 0
    assert single_flow_result.retransmits == 0
