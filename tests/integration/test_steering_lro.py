"""Integration tests for steering-mechanism and LRO extensions."""

import pytest

from repro.config import ExperimentConfig, OptimizationConfig, SteeringMode
from repro.core.taxonomy import Category

from .conftest import run


@pytest.fixture(scope="module")
def steering_results(single_flow_result):
    out = {"arfs": single_flow_result}
    out["rfs"] = run(
        ExperimentConfig(
            opts=OptimizationConfig.tso_gro_jumbo(),
            worst_case_irq_mapping=False,
            steering=SteeringMode.RFS,
        )
    )
    out["rss"] = run(
        ExperimentConfig(
            opts=OptimizationConfig.tso_gro_jumbo(),
            worst_case_irq_mapping=False,
            steering=SteeringMode.RSS,
        )
    )
    return out


def test_arfs_beats_software_steering(steering_results):
    """Only aRFS co-locates IRQ+TCP+app and unlocks DCA."""
    assert (
        steering_results["arfs"].throughput_per_core_gbps
        > steering_results["rfs"].throughput_per_core_gbps
    )
    assert (
        steering_results["arfs"].throughput_per_core_gbps
        > steering_results["rss"].throughput_per_core_gbps
    )


def test_software_steering_cannot_use_dca(steering_results):
    assert steering_results["rfs"].receiver_cache_miss_rate > 0.9
    assert steering_results["rss"].receiver_cache_miss_rate > 0.9


def test_rfs_avoids_socket_lock_contention(steering_results):
    """RFS runs TCP on the app core, so lock costs stay uncontended."""
    rfs_lock = steering_results["rfs"].receiver_breakdown.fraction(Category.LOCK)
    arfs_lock = steering_results["arfs"].receiver_breakdown.fraction(Category.LOCK)
    assert rfs_lock == pytest.approx(arfs_lock, abs=0.02)


@pytest.fixture(scope="module")
def lro_result():
    return run(
        ExperimentConfig(
            opts=OptimizationConfig(tso_gro=True, jumbo=True, arfs=True, lro=True)
        )
    )


def test_lro_beats_gro_per_core(single_flow_result, lro_result):
    """Footnote 3: LRO reaches ~55Gbps by moving the merge into the NIC."""
    assert (
        lro_result.throughput_per_core_gbps
        > single_flow_result.throughput_per_core_gbps
    )


def test_lro_removes_gro_cycles(single_flow_result, lro_result):
    gro_share = single_flow_result.receiver_breakdown.fraction(Category.NETDEV)
    lro_share = lro_result.receiver_breakdown.fraction(Category.NETDEV)
    assert lro_share < gro_share
