"""Property-based tests for DCA cache invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cache import DcaRegion

operations = st.lists(
    st.tuples(
        st.sampled_from(["write", "consume", "discard"]),
        st.integers(min_value=0, max_value=30),      # region id
        st.integers(min_value=1, max_value=20_000),  # bytes
    ),
    max_size=200,
)


@given(ops=operations, capacity=st.integers(min_value=1000, max_value=100_000))
@settings(max_examples=100, deadline=None)
def test_occupancy_always_within_bounds(ops, capacity):
    dca = DcaRegion(0, capacity, rng=random.Random(0))
    for kind, region_id, nbytes in ops:
        if kind == "write":
            dca.dma_write(region_id, nbytes)
        elif kind == "consume":
            dca.consume(region_id, nbytes)
        else:
            dca.discard(region_id)
        assert dca.occupancy >= 0
        # hard capacity backstop (one in-flight region may exceed it briefly
        # only if it is the sole resident region)
        assert dca.occupancy <= max(dca.effective_capacity, max(
            dca._resident.values(), default=0))


@given(ops=operations)
@settings(max_examples=100, deadline=None)
def test_hits_never_exceed_consumed_bytes(ops):
    dca = DcaRegion(0, 50_000, rng=random.Random(1))
    for kind, region_id, nbytes in ops:
        if kind == "write":
            dca.dma_write(region_id, nbytes)
        elif kind == "consume":
            hit, miss = dca.consume(region_id, nbytes)
            assert hit + miss == nbytes
            assert hit >= 0 and miss >= 0
        else:
            dca.discard(region_id)


@given(ops=operations)
@settings(max_examples=50, deadline=None)
def test_internal_index_consistent(ops):
    dca = DcaRegion(0, 50_000, rng=random.Random(2))
    for kind, region_id, nbytes in ops:
        if kind == "write":
            dca.dma_write(region_id, nbytes)
        elif kind == "consume":
            dca.consume(region_id, nbytes)
        else:
            dca.discard(region_id)
        assert set(dca._keys) == set(dca._resident)
        assert len(dca._keys) == len(dca._key_index)
        assert dca.occupancy == sum(dca._resident.values())
