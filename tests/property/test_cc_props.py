"""Property-based tests for congestion-controller invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CongestionControl
from repro.kernel.tcp.cc import make_congestion_controller

MSS = 8960

events = st.lists(
    st.tuples(
        st.sampled_from(["ack", "dup", "loss", "timeout", "exit"]),
        st.integers(min_value=1, max_value=20),        # acked segments
        st.booleans(),                                 # ecn echo
        st.integers(min_value=10_000, max_value=500_000),  # rtt ns
    ),
    max_size=120,
)


@st.composite
def algo_and_events(draw):
    algo = draw(st.sampled_from(list(CongestionControl)))
    return algo, draw(events)


@given(algo_and_events())
@settings(max_examples=150, deadline=None)
def test_cwnd_stays_at_least_one_mss(case):
    algo, sequence = case
    cc = make_congestion_controller(algo, MSS, 10)
    now = 0
    for kind, segments, ecn, rtt in sequence:
        now += rtt
        if kind == "ack":
            cc.on_ack(segments * MSS, rtt, ecn, now)
        elif kind == "dup":
            cc.on_dup_ack(now)
        elif kind == "loss":
            cc.on_loss(now)
        elif kind == "timeout":
            cc.on_timeout(now)
        else:
            cc.on_recovery_exit(now)
        assert cc.cwnd_bytes >= MSS
        assert cc.cwnd_bytes < 10**10  # no runaway growth


@given(algo_and_events())
@settings(max_examples=100, deadline=None)
def test_loss_never_increases_window(case):
    algo, sequence = case
    cc = make_congestion_controller(algo, MSS, 50)
    now = 0
    for kind, segments, ecn, rtt in sequence:
        now += rtt
        if kind == "ack":
            cc.on_ack(segments * MSS, rtt, ecn, now)
        elif kind == "loss":
            before = cc.cwnd_bytes
            cc.on_loss(now)
            assert cc.cwnd_bytes <= before
        elif kind == "timeout":
            cc.on_timeout(now)
        elif kind == "exit":
            cc.on_recovery_exit(now)
