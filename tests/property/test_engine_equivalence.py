"""Timer-wheel engine vs a reference heap engine, on random programs.

The block-wheel engine in ``repro.sim.engine`` promises exactly the semantics
of a plain (time, schedule-order) binary heap: events fire in nondecreasing
time, and events sharing a timestamp fire in the order they were scheduled —
regardless of which wheel level, overflow heap, or freelist-recycled Event
object serves them. This test interprets randomized programs of
schedule / cancel / re-arm operations (including scheduling and cancelling
*during* event callbacks, and delays large enough to land in the overflow
heap) against both engines and requires identical fire logs.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine


class _RefEvent:
    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time, seq, fn):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self):
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)


class _RefEngine:
    """Minimal binary-heap engine: the semantics the wheel must reproduce."""

    def __init__(self):
        self._heap = []
        self._seq = 0
        self.now = 0

    def schedule_at(self, time, fn):
        self._seq += 1
        event = _RefEvent(time, self._seq, fn)
        heapq.heappush(self._heap, event)
        return event

    def schedule(self, delay, fn):
        return self.schedule_at(self.now + delay, fn)

    def run(self):
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.fn()


#: Delays spanning every wheel level plus the overflow heap (>2^40 ns).
_delays = st.integers(min_value=0, max_value=2**42)
#: What a fired event does: schedule a child (possibly at its own timestamp)
#: or cancel the oldest still-pending event.
_fire_actions = st.lists(
    st.one_of(
        st.tuples(st.just("child"), st.integers(min_value=0, max_value=2**20)),
        st.just(("cancel_oldest",)),
    ),
    max_size=3,
)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("sched"), _delays, _fire_actions),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10**6)),
        st.tuples(st.just("resched"), st.integers(min_value=0, max_value=10**6), _delays),
    ),
    max_size=50,
)


def _interpret(engine, program):
    """Run ``program`` against ``engine``; return the (time, id) fire log.

    All decisions (which event a cancel/resched targets, what a callback
    does) depend only on mirrored driver state, never on engine internals,
    so both engines see byte-identical instruction streams.
    """
    log = []
    live = {}  # id -> event handle, insertion-ordered
    next_id = [0]

    def apply_action(action):
        if action[0] == "child":
            do_schedule(action[1], ())
        elif live:  # cancel_oldest
            eid = next(iter(live))
            live.pop(eid).cancel()

    def do_schedule(delay, actions):
        eid = next_id[0]
        next_id[0] += 1

        def fire():
            log.append((engine.now, eid))
            live.pop(eid, None)
            for action in actions:
                apply_action(action)

        live[eid] = engine.schedule(delay, fire)

    for op in program:
        if op[0] == "sched":
            do_schedule(op[1], op[2])
        elif op[0] == "cancel":
            if live:
                keys = list(live)
                live.pop(keys[op[1] % len(keys)]).cancel()
        else:  # resched: cancel one live event, schedule a replacement
            if live:
                keys = list(live)
                live.pop(keys[op[1] % len(keys)]).cancel()
            do_schedule(op[2], ())
    engine.run()
    return log


@given(program=_ops)
@settings(max_examples=200, deadline=None)
def test_wheel_matches_reference_heap(program):
    wheel_log = _interpret(Engine(), program)
    heap_log = _interpret(_RefEngine(), program)
    assert wheel_log == heap_log


@given(program=_ops)
@settings(max_examples=50, deadline=None)
def test_wheel_is_deterministic_across_runs(program):
    assert _interpret(Engine(), program) == _interpret(Engine(), program)
