"""Property-based tests for the event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine


@given(delays=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                       max_size=50))
@settings(max_examples=50, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(delays):
    engine = Engine()
    fired_times = []
    for delay in delays:
        engine.schedule(delay, lambda: fired_times.append(engine.now))
    engine.run()
    assert fired_times == sorted(fired_times)
    assert len(fired_times) == len(delays)


@given(
    delays=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=30),
    cutoff=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_run_until_fires_exactly_events_at_or_before_cutoff(delays, cutoff):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, fired.append, delay)
    engine.run(until=cutoff)
    assert sorted(fired) == sorted(d for d in delays if d <= cutoff)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_cancelled_subset_never_fires(data):
    delays = data.draw(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20)
    )
    engine = Engine()
    fired = []
    events = [engine.schedule(d, fired.append, i) for i, d in enumerate(delays)]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(events) - 1))
    )
    for index in to_cancel:
        events[index].cancel()
    engine.run()
    assert set(fired) == set(range(len(events))) - to_cancel


def _assert_exact_bookkeeping(engine):
    """pending_events() must agree with an exact recount, and never go
    negative — the event-queue-hygiene invariant the auditor enforces."""
    counts = engine.audit_counts()
    assert counts["pending"] >= 0
    assert counts["cancelled_tracked"] == counts["cancelled_recount"]
    assert counts["pending"] == counts["queued"] - counts["cancelled_recount"]


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_interleaved_schedule_cancel_keeps_pending_exact(data):
    """Random interleavings of schedule / cancel / double-cancel / compact
    keep ``pending_events()`` exact at every step and through the drain."""
    engine = Engine()
    live = []
    steps = data.draw(
        st.lists(st.sampled_from(["schedule", "cancel", "recancel", "compact"]),
                 min_size=1, max_size=60)
    )
    expected_pending = 0
    for step in steps:
        if step == "schedule":
            delay = data.draw(st.integers(min_value=0, max_value=50))
            live.append(engine.schedule(delay, lambda: None))
            expected_pending += 1
        elif step == "cancel" and live:
            index = data.draw(st.integers(min_value=0, max_value=len(live) - 1))
            live.pop(index).cancel()
            expected_pending -= 1
        elif step == "recancel" and live:
            # cancelling twice must not decrement the counter twice
            index = data.draw(st.integers(min_value=0, max_value=len(live) - 1))
            event = live.pop(index)
            event.cancel()
            event.cancel()
            expected_pending -= 1
        elif step == "compact":
            engine._compact()
        assert engine.pending_events() == expected_pending
        _assert_exact_bookkeeping(engine)
    engine.run()
    assert engine.pending_events() == 0
    _assert_exact_bookkeeping(engine)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_cancel_from_within_callback_keeps_pending_exact(data):
    """Callbacks that cancel other queued events (TCP re-arms timers from
    inside handlers constantly) must leave the lazy counter consistent."""
    num_events = data.draw(st.integers(min_value=2, max_value=15))
    engine = Engine()
    events = []
    fired = []

    def make_callback(index):
        def callback():
            fired.append(index)
            victim = index + 1 + (index % 3)
            if victim < len(events):
                events[victim].cancel()
            _assert_exact_bookkeeping(engine)
        return callback

    for index in range(num_events):
        delay = data.draw(st.integers(min_value=0, max_value=30))
        events.append(engine.schedule(delay, make_callback(index)))
    engine.run()
    assert engine.pending_events() == 0
    _assert_exact_bookkeeping(engine)


def test_cancel_after_fire_is_a_noop_for_bookkeeping():
    """Cancelling an event that already fired (or was already popped) must
    not decrement the cancelled counter — the event left the queue live."""
    engine = Engine()
    event = engine.schedule(5, lambda: None)
    bystander = engine.schedule(10, lambda: None)
    engine.run(until=7)  # `event` fires, `bystander` still queued
    event.cancel()
    counts = engine.audit_counts()
    assert counts["cancelled_tracked"] == 0
    assert engine.pending_events() == 1
    bystander.cancel()
    assert engine.pending_events() == 0
    engine.run()
    _assert_exact_bookkeeping(engine)


def test_compaction_threshold_preserves_pending_count():
    """Crossing the in-place compaction threshold must not change
    pending_events() or lose live events."""
    from repro.sim.engine import _COMPACT_MIN_CANCELLED

    engine = Engine()
    doomed = [engine.schedule(1, lambda: None)
              for _ in range(_COMPACT_MIN_CANCELLED + 10)]
    fired = []
    survivors = 7
    for index in range(survivors):
        engine.schedule(2, fired.append, index)
    for event in doomed:
        event.cancel()  # crosses the threshold and compacts mid-loop
    assert engine.pending_events() == survivors
    _assert_exact_bookkeeping(engine)
    engine.run()
    assert sorted(fired) == list(range(survivors))
