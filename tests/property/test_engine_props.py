"""Property-based tests for the event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine


@given(delays=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                       max_size=50))
@settings(max_examples=50, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(delays):
    engine = Engine()
    fired_times = []
    for delay in delays:
        engine.schedule(delay, lambda: fired_times.append(engine.now))
    engine.run()
    assert fired_times == sorted(fired_times)
    assert len(fired_times) == len(delays)


@given(
    delays=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=30),
    cutoff=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_run_until_fires_exactly_events_at_or_before_cutoff(delays, cutoff):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, fired.append, delay)
    engine.run(until=cutoff)
    assert sorted(fired) == sorted(d for d in delays if d <= cutoff)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_cancelled_subset_never_fires(data):
    delays = data.draw(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20)
    )
    engine = Engine()
    fired = []
    events = [engine.schedule(d, fired.append, i) for i, d in enumerate(delays)]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(events) - 1))
    )
    for index in to_cancel:
        events[index].cancel()
    engine.run()
    assert set(fired) == set(range(len(events))) - to_cancel
