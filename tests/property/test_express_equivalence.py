"""Steady-state express lane vs wheel path, four-way, on random configs.

The express lane (``Engine.express_at`` + the quiescence gate in
``repro.kernel.tcp.express``) fast-forwards whole ACK-clocked rounds of
quiescent bulk flows by dispatching CPU job completions and lazily-chased RTO
deadlines straight off a deadline-sorted side heap, skipping timer-wheel
insertion and cascade for the events that dominate steady state. The promise
is the same as the frame-train pipeline's: *bit-identical results* — every
exported metric, every latency reservoir sample, every RNG draw — for any
configuration, with fewer engine events fired.

Because the express lane composes with frame trains (trains batch the wire,
the express lane batches the clock), these tests run each random config in
all FOUR mode combinations — express/no-express x train/no-train — and
require full observable agreement across the square, plus a clean
conservation audit in every mode.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    CongestionControl,
    ExperimentConfig,
    LinkConfig,
    OptimizationConfig,
    TcpConfig,
    TrafficPattern,
    WorkloadConfig,
)
from repro.core.experiment import Experiment
from repro.core.export import result_to_dict
from repro.units import msec


def _run_mode(config: ExperimentConfig, express: bool, frame_trains: bool):
    experiment = Experiment(
        config.replace(express=express, frame_trains=frame_trains), audit=True
    )
    result = experiment.run()
    payload = result_to_dict(result)
    reservoirs = {
        host: (
            list(experiment.metrics.side(host).latency_samples),
            experiment.metrics.side(host).latency_dropped,
        )
        for host in ("sender", "receiver")
    }
    engine = experiment.engine
    return payload, reservoirs, engine.events_fired, engine.express_fired


_OPTS = [
    OptimizationConfig.none(),
    OptimizationConfig.tso_gro_only(),
    OptimizationConfig.all(),
    OptimizationConfig(tso_gro=True, jumbo=True, arfs=True, lro=True),
]

_PATTERNS = [
    (TrafficPattern.SINGLE, 1),
    (TrafficPattern.ONE_TO_ONE, 2),
    (TrafficPattern.INCAST, 3),
    (TrafficPattern.MIXED, 1),
]

# Express aborts are where the bugs live: loss perturbs quiescence via
# dupacks/recovery, DCTCP perturbs it via ECN-driven cwnd moves, BBR's pacing
# gate exercises cc.quiescent(), and MIXED adds RPC flows that never qualify.
_CCS = [CongestionControl.CUBIC, CongestionControl.DCTCP, CongestionControl.BBR]


@st.composite
def express_configs(draw):
    pattern, num_flows = draw(st.sampled_from(_PATTERNS))
    opts = draw(st.sampled_from(_OPTS))
    lossy = draw(st.booleans())
    link = LinkConfig(
        loss_rate=draw(st.sampled_from([2e-4, 1e-3])) if lossy else 0.0,
        has_switch=lossy,
    )
    tcp = TcpConfig(congestion_control=draw(st.sampled_from(_CCS)))
    workload = WorkloadConfig()
    if pattern is TrafficPattern.MIXED:
        workload = WorkloadConfig(num_rpc_flows=draw(st.integers(1, 2)))
    return ExperimentConfig(
        pattern=pattern,
        num_flows=num_flows,
        duration_ns=msec(1),
        warmup_ns=msec(1),
        seed=draw(st.integers(1, 5)),
        opts=opts,
        tcp=tcp,
        link=link,
        workload=workload,
    )


@settings(max_examples=8, deadline=None)
@given(config=express_configs())
def test_express_lane_is_observably_identical_four_ways(config):
    # (express, frame_trains) over the full square. The (False, False) cell is
    # the legacy per-event pipeline — the reference everything must equal.
    modes = {
        (express, trains): _run_mode(config, express, trains)
        for express in (True, False)
        for trains in (True, False)
    }
    ref_payload, ref_samples, ref_events, _ = modes[(False, False)]
    ref_audit = ref_payload.pop("audit")
    assert ref_audit["ok"], ref_audit

    for key, (payload, samples, events, express_fired) in modes.items():
        if key == (False, False):
            continue
        audit = payload.pop("audit")
        # Every exported number — throughput, breakdowns, cache rates,
        # latency summary, drop/retransmit counters — must match exactly.
        assert payload == ref_payload, key
        # Raw reservoirs too: same samples in the same order means every
        # recording happened at the same instant with the same RNG state.
        assert samples == ref_samples, key
        assert audit["ok"], (key, audit)
        # The point of the fast paths: same physics, never more events.
        assert events <= ref_events, key

    # With the lane off, nothing may route through it; with it on, steady
    # state should actually use it (every config sustains a bulk flow long
    # enough for at least one quiescent completion to ride the side heap).
    assert modes[(False, True)][3] == 0
    assert modes[(False, False)][3] == 0
    assert modes[(True, True)][3] > 0
    assert modes[(True, False)][3] > 0

    # Express + trains is the shipping default and must be the cheapest cell
    # of the square in events fired.
    assert modes[(True, True)][2] <= modes[(False, True)][2]
    assert modes[(True, False)][2] <= modes[(False, False)][2]
