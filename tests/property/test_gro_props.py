"""Property-based tests for GRO invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.calibration import default_cost_model
from repro.kernel.gro import GroEngine
from repro.kernel.skb import Skb


def frame(flow, seq, size):
    return Skb(flow_id=flow, seq=seq, payload_bytes=size, nframes=1,
               pages=1, page_node=0, regions=[((flow, seq), size)])


#: streams of (flow, size) tuples; sequence numbers are made contiguous
#: per flow so merging is possible but interleaving is arbitrary.
streams = st.lists(
    st.tuples(st.integers(min_value=1, max_value=5),
              st.integers(min_value=100, max_value=9000)),
    max_size=150,
)


def run_gro(stream, enabled=True):
    gro = GroEngine(default_cost_model(), enabled=enabled)
    next_seq = {}
    out = []
    total_in = 0
    for flow, size in stream:
        seq = next_seq.get(flow, 0)
        next_seq[flow] = seq + size
        total_in += size
        _, flushed = gro.receive(frame(flow, seq, size))
        out.extend(flushed)
    _, flushed = gro.flush_all()
    out.extend(flushed)
    return total_in, out


@given(stream=streams)
@settings(max_examples=100, deadline=None)
def test_bytes_conserved_through_gro(stream):
    total_in, out = run_gro(stream)
    assert sum(skb.payload_bytes for skb in out) == total_in


@given(stream=streams)
@settings(max_examples=100, deadline=None)
def test_merged_skbs_are_seq_contiguous_per_flow(stream):
    _, out = run_gro(stream)
    by_flow = {}
    for skb in out:
        by_flow.setdefault(skb.flow_id, []).append(skb)
    for skbs in by_flow.values():
        skbs.sort(key=lambda s: s.seq)
        expected = 0
        for skb in skbs:
            assert skb.seq == expected
            expected = skb.end_seq


@given(stream=streams)
@settings(max_examples=50, deadline=None)
def test_merge_never_exceeds_64kb(stream):
    _, out = run_gro(stream)
    assert all(skb.payload_bytes <= 64 * 1024 for skb in out)


@given(stream=streams)
@settings(max_examples=50, deadline=None)
def test_disabled_gro_is_identity(stream):
    total_in, out = run_gro(stream, enabled=False)
    assert len(out) == len(stream)
    assert sum(s.payload_bytes for s in out) == total_in


@given(stream=streams)
@settings(max_examples=50, deadline=None)
def test_regions_follow_payload(stream):
    _, out = run_gro(stream)
    for skb in out:
        assert sum(nbytes for _, nbytes in skb.regions) == skb.payload_bytes
