"""Property-based tests for the page allocator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.calibration import default_cost_model
from repro.kernel.mem import PageAllocator

CORE = ("h", 0)

operations = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "free_local", "free_remote"]),
        st.integers(min_value=1, max_value=600),
    ),
    max_size=150,
)


@given(ops=operations, capacity=st.integers(min_value=1, max_value=512))
@settings(max_examples=100, deadline=None)
def test_pageset_level_always_bounded(ops, capacity):
    allocator = PageAllocator(default_cost_model(), capacity=capacity, batch=64)
    for kind, npages in ops:
        if kind == "alloc":
            allocator.alloc(CORE, npages)
        elif kind == "free_local":
            allocator.free(CORE, 0, npages, 0)
        else:
            allocator.free(CORE, 0, npages, 1)
        assert 0 <= allocator.pageset_level(CORE) <= capacity


@given(ops=operations)
@settings(max_examples=50, deadline=None)
def test_charges_always_nonnegative(ops):
    allocator = PageAllocator(default_cost_model(), capacity=128, batch=32)
    for kind, npages in ops:
        if kind == "alloc":
            items = allocator.alloc(CORE, npages)
        else:
            items = allocator.free(CORE, 0, npages, 0 if kind == "free_local" else 1)
        assert all(cycles >= 0 for _, cycles in items)


@given(ops=operations)
@settings(max_examples=50, deadline=None)
def test_counters_are_consistent(ops):
    allocator = PageAllocator(default_cost_model(), capacity=128, batch=32)
    allocs = frees = 0
    for kind, npages in ops:
        if kind == "alloc":
            allocator.alloc(CORE, npages)
            allocs += npages
        else:
            allocator.free(CORE, 0, npages, 0 if kind == "free_local" else 1)
            frees += npages
    assert allocator.pcp_allocs + allocator.global_allocs == allocs
    assert allocator.local_frees + allocator.remote_frees == frees
