"""Property-based tests for socket-queue invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.skb import Skb
from repro.kernel.socket import Socket


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=65536), max_size=50),
    reads=st.lists(st.integers(min_value=1, max_value=131072), max_size=80),
)
@settings(max_examples=100, deadline=None)
def test_drain_conserves_bytes(sizes, reads):
    sock = Socket(1, 10**9)
    seq = 0
    for size in sizes:
        sock.enqueue(Skb(flow_id=1, seq=seq, payload_bytes=size))
        seq += size
    enqueued = sum(sizes)
    drained = 0
    for read in reads:
        taken, portions = sock.drain(read)
        assert taken <= read
        assert taken == sum(p[1] for p in portions)
        drained += taken
    assert drained + sock.available() == enqueued


@given(sizes=st.lists(st.integers(min_value=1, max_value=9000), max_size=40))
@settings(max_examples=50, deadline=None)
def test_window_accounting_consistent(sizes):
    buffer_bytes = 200_000
    sock = Socket(1, buffer_bytes)
    seq = 0
    for size in sizes:
        sock.enqueue(Skb(flow_id=1, seq=seq, payload_bytes=size))
        seq += size
        assert sock.free_space() == max(0, buffer_bytes - sock.unread_bytes)
        assert 0 <= sock.advertised_window() <= buffer_bytes // 2


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=9000), min_size=1, max_size=30)
)
@settings(max_examples=50, deadline=None)
def test_full_drain_returns_everything_in_order(sizes):
    sock = Socket(1, 10**9)
    seq = 0
    for size in sizes:
        sock.enqueue(Skb(flow_id=1, seq=seq, payload_bytes=size))
        seq += size
    taken, portions = sock.drain(10**9)
    assert taken == sum(sizes)
    seqs = [skb.seq for skb, _, _ in portions]
    assert seqs == sorted(seqs)
    assert sock.available() == 0
