"""Tracing is observably free, and trace results are wire-mode invariant.

Two promises back the ``repro trace`` front door (DESIGN.md §12):

* **Zero perturbation** — turning ``ExperimentConfig.trace`` on must not
  change a single exported number. The hooks only *read* virtual time; if a
  traced run differed anywhere outside its ``trace`` payload, the hooks would
  be leaking into the simulation.
* **Wire-mode invariance** — the per-stage histograms themselves must be
  byte-identical with and without the frame-train fast path. The train
  pipeline replays per-frame effects lazily at the original virtual times, so
  stamps taken inside ``serialize_at`` / ``_rx_ingest`` (which use passed-in
  virtual times, never ``engine.now``) land on the same nanoseconds either
  way.

Both are checked on random configs across the dimensions that stress the
stamping rules: loss (dropped frames must not record wire stages), LRO
(ring completions merge), RPC interleave (both directions tracing), DCTCP.
The telescoping identity and the auditor's cross-checks must hold in every
mode.
"""

from hypothesis import given, settings

from repro.core.experiment import Experiment
from repro.core.export import result_to_dict

from .test_train_equivalence import train_configs


def _run(config, trace, frame_trains):
    experiment = Experiment(
        config.replace(trace=trace, frame_trains=frame_trains), audit=True
    )
    result = experiment.run()
    return result, result_to_dict(result)


@settings(max_examples=8, deadline=None)
@given(config=train_configs())
def test_tracing_perturbs_nothing_and_is_train_invariant(config):
    _, untraced = _run(config, trace=False, frame_trains=True)
    traced_result, traced = _run(config, trace=True, frame_trains=True)
    _, traced_legacy = _run(config, trace=True, frame_trains=False)

    # Wire-mode invariance: the full traced payload — simulation results AND
    # per-stage histograms — is identical with and without frame trains.
    audit_train = traced.pop("audit")
    audit_legacy = traced_legacy.pop("audit")
    assert traced == traced_legacy

    # Zero perturbation: strip the trace payload and the traced run must
    # equal the untraced run exactly, key for key.
    untraced.pop("audit")
    trace_payload = traced.pop("trace")
    assert traced == untraced

    # The telescoping identity survives export and both wire modes, and the
    # auditor (which also cross-checks e2e against the copy-latency metric)
    # passed in both traced runs.
    checks, violations = traced_result.trace.check_identity()
    assert checks > 0 and violations == []
    from repro.trace import TraceReport

    round_tripped = TraceReport.from_dict(trace_payload)
    assert round_tripped.check_identity()[1] == []
    assert audit_train["ok"], audit_train
    assert audit_legacy["ok"], audit_legacy
