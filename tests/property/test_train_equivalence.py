"""Frame-train fast path vs legacy per-event pipeline, on random configs.

The train pipeline (``repro.hardware.train``) carries each Tx drain batch as
one in-flight object and replays its per-frame observable effects lazily, at
the original virtual times, only when something could notice. The promise is
*bit-identical results* — not "statistically close": every metric, every
latency reservoir sample, every drop counter must match the legacy per-event
pipeline exactly, for any configuration.

These tests draw random configurations across the dimensions that stress the
settle logic — loss (arrival gaps + branch flips), ECN/DCTCP (marking embedded
in train frames), small MTU (multi-frame trains), RPC interleave (both
directions active, pipelined finishes), aRFS on/off (steering targets), LRO
(NIC-side merge settles per-train) — and require the two modes to agree on the
full exported payload, the raw latency reservoirs, and a clean conservation
audit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    CongestionControl,
    ExperimentConfig,
    LinkConfig,
    OptimizationConfig,
    TcpConfig,
    TrafficPattern,
    WorkloadConfig,
)
from repro.core.experiment import Experiment
from repro.core.export import result_to_dict
from repro.units import msec


def _run_mode(config: ExperimentConfig, frame_trains: bool):
    experiment = Experiment(
        config.replace(frame_trains=frame_trains), audit=True
    )
    result = experiment.run()
    payload = result_to_dict(result)
    reservoirs = {
        host: (
            list(experiment.metrics.side(host).latency_samples),
            experiment.metrics.side(host).latency_dropped,
        )
        for host in ("sender", "receiver")
    }
    return payload, reservoirs, experiment.engine.events_fired


_OPTS = [
    OptimizationConfig.none(),
    OptimizationConfig.tso_gro_only(),
    OptimizationConfig.tso_gro_jumbo(),
    OptimizationConfig.all(),
    OptimizationConfig(tso_gro=True, jumbo=True, arfs=True, lro=True),
]

_PATTERNS = [
    (TrafficPattern.SINGLE, 1),
    (TrafficPattern.ONE_TO_ONE, 2),
    (TrafficPattern.INCAST, 3),
    (TrafficPattern.MIXED, 1),
]


@st.composite
def train_configs(draw):
    pattern, num_flows = draw(st.sampled_from(_PATTERNS))
    opts = draw(st.sampled_from(_OPTS))
    lossy = draw(st.booleans())
    link = LinkConfig(
        loss_rate=draw(st.sampled_from([2e-4, 1e-3])) if lossy else 0.0,
        has_switch=lossy,
    )
    dctcp = draw(st.booleans())
    tcp = TcpConfig(
        congestion_control=(
            CongestionControl.DCTCP if dctcp else CongestionControl.CUBIC
        )
    )
    workload = WorkloadConfig()
    if pattern is TrafficPattern.MIXED:
        workload = WorkloadConfig(num_rpc_flows=draw(st.integers(1, 2)))
    return ExperimentConfig(
        pattern=pattern,
        num_flows=num_flows,
        duration_ns=msec(1),
        warmup_ns=msec(1),
        seed=draw(st.integers(1, 5)),
        opts=opts,
        tcp=tcp,
        link=link,
        workload=workload,
    )


@settings(max_examples=10, deadline=None)
@given(config=train_configs())
def test_train_pipeline_is_observably_identical(config):
    train_payload, train_samples, train_events = _run_mode(config, True)
    legacy_payload, legacy_samples, legacy_events = _run_mode(config, False)

    # Every exported number — throughput, breakdowns, cache rates, latency
    # summary, drop/retransmit counters, per-flow rates — must match exactly.
    audit_train = train_payload.pop("audit")
    audit_legacy = legacy_payload.pop("audit")
    assert train_payload == legacy_payload

    # The raw latency reservoirs (not just their summaries): same samples in
    # the same order means every recording happened at the same instant with
    # the same reservoir RNG state.
    assert train_samples == legacy_samples

    # Both modes conserve: the auditor's byte/cycle/frame identities hold on
    # the train path exactly as on the per-event path.
    assert audit_train["ok"], audit_train
    assert audit_legacy["ok"], audit_legacy

    # The entire point of the fast path: same physics, fewer engine events.
    assert train_events <= legacy_events
