"""Unit tests for the application bodies (iperf/netperf models)."""

from repro.config import ExperimentConfig, TrafficPattern, WorkloadConfig
from repro.core.experiment import Experiment
from repro.kernel.syscall import RecvOp, SendOp
from repro.units import kb, msec
from repro.workloads.apps import (
    rpc_client,
    rpc_server,
    streaming_receiver,
    streaming_sender,
)


def make_endpoint():
    experiment = Experiment(ExperimentConfig(duration_ns=msec(1)))
    return experiment.sender.endpoints[1]


def test_streaming_sender_yields_sends():
    endpoint = make_endpoint()
    body = streaming_sender(endpoint, 4096)(None)
    for _ in range(3):
        op = body.send(None)
        assert isinstance(op, SendOp)
        assert op.nbytes == 4096


def test_streaming_receiver_yields_recvs():
    endpoint = make_endpoint()
    body = streaming_receiver(endpoint, 8192)(None)
    op = body.send(None)
    assert isinstance(op, RecvOp)
    assert op.max_bytes == 8192
    assert op.min_bytes == 1


def test_rpc_client_alternates_send_and_recv():
    endpoint = make_endpoint()
    body = rpc_client(endpoint, 4096)(None)
    first = body.send(None)
    assert isinstance(first, SendOp) and first.nbytes == 4096
    second = body.send(None)
    assert isinstance(second, RecvOp)
    # partial response: client keeps reading until the message completes
    third = body.send((endpoint, 1000))
    assert isinstance(third, RecvOp) and third.max_bytes == 3096
    fourth = body.send((endpoint, 3096))
    assert isinstance(fourth, SendOp)  # next request


def test_rpc_server_responds_after_full_request():
    endpoint = make_endpoint()
    body = rpc_server([endpoint], 4096)(None)
    op = body.send(None)
    assert isinstance(op, RecvOp)
    # half a request: keep reading
    op = body.send((endpoint, 2048))
    assert isinstance(op, RecvOp)
    # request completes: respond
    op = body.send((endpoint, 2048))
    assert isinstance(op, SendOp) and op.nbytes == 4096


def test_rpc_server_tracks_progress_per_connection():
    experiment = Experiment(
        ExperimentConfig(
            pattern=TrafficPattern.RPC_INCAST,
            num_flows=2,
            duration_ns=msec(1),
            workload=WorkloadConfig(rpc_size_bytes=kb(4)),
        )
    )
    eps = list(experiment.receiver.endpoints.values())
    body = rpc_server(eps, 4096)(None)
    body.send(None)
    # interleave partial requests from two connections
    op = body.send((eps[0], 2048))
    assert isinstance(op, RecvOp)
    op = body.send((eps[1], 4096))      # second connection completes first
    assert isinstance(op, SendOp)
