"""Unit tests for the conservation-invariant auditor.

The auditor's job is to notice when the simulator's bookkeeping stops being
conservative, so beyond the happy path these tests *inject* accounting bugs
(double-charged cycles, conjured bytes, drifted cancellation counters) and
assert each one is caught and localized.
"""

import pytest

from repro.config import ExperimentConfig, TrafficPattern
from repro.core.audit import (
    AuditError,
    AuditReport,
    AuditViolation,
    audit_experiment,
    merge_reports,
)
from repro.core.experiment import Experiment
from repro.units import msec


def run_experiment(**kwargs):
    config = ExperimentConfig(duration_ns=msec(1), warmup_ns=msec(2), **kwargs)
    experiment = Experiment(config)
    experiment.run()
    return experiment


@pytest.fixture(scope="module")
def finished():
    """One finished single-flow experiment, shared by the tamper tests (each
    audits a fresh copy of the counters' state or restores what it mutates)."""
    return run_experiment()


def violated(report, invariant):
    return [v for v in report.violations if v.invariant == invariant]


# --- report mechanics ---------------------------------------------------------


def test_report_ok_render_and_strict():
    report = AuditReport(checks_run=3)
    assert report.ok
    assert "3 conservation checks passed" in report.render()
    report.raise_if_violations()  # no-op when clean

    report.violations.append(
        AuditViolation("byte.tx_half", "flow 0 @ sender", 10, 12, "detail")
    )
    assert not report.ok
    assert "byte.tx_half" in report.render()
    with pytest.raises(AuditError, match="byte.tx_half"):
        report.raise_if_violations()


def test_report_dict_round_trip():
    report = AuditReport(
        checks_run=7,
        violations=[AuditViolation("cycle.core", "core ('sender', 0)", 1.0, 2.0)],
    )
    clone = AuditReport.from_dict(report.to_dict())
    assert clone.checks_run == 7
    assert clone.to_dict() == report.to_dict()
    assert not clone.ok


def test_merge_reports_skips_none_and_accumulates():
    a = AuditReport(checks_run=5)
    b = AuditReport(checks_run=3, violations=[AuditViolation("x", "y", 0, 1)])
    merged = merge_reports([a, None, b])
    assert merged.checks_run == 8
    assert len(merged.violations) == 1


# --- clean experiments pass ----------------------------------------------------


def test_clean_experiment_passes(finished):
    report = audit_experiment(finished)
    assert report.ok, report.render()
    assert report.checks_run > 20


def test_audit_flag_attaches_report_to_result():
    config = ExperimentConfig(duration_ns=msec(1), warmup_ns=msec(2))
    result = Experiment(config, audit=True).run()
    assert result.audit_report is not None
    assert result.audit_report.ok, result.audit_report.render()

    unaudited = Experiment(config).run()
    assert unaudited.audit_report is None


def test_audited_result_survives_export_round_trip():
    from repro.core.export import result_from_dict, result_to_dict

    config = ExperimentConfig(duration_ns=msec(1), warmup_ns=msec(2))
    result = Experiment(config, audit=True).run()
    payload = result_to_dict(result)
    assert "audit" in payload
    restored = result_from_dict(payload)
    assert restored.audit_report is not None
    assert restored.audit_report.checks_run == result.audit_report.checks_run
    assert result_to_dict(restored) == payload  # lossless both ways


# --- injected accounting bugs are caught -----------------------------------------


def test_injected_cycle_double_charge_is_caught(finished):
    """A profiler charge with no matching core busy time — the classic
    double-charge, e.g. charging an op both inside and outside a Job — must
    break per-core and per-host cycle conservation."""
    core = finished.receiver.topology.cores[0]
    finished.profiler.charge(core, "tcp_rcv_established", 12345.0)
    try:
        report = audit_experiment(finished)
        assert violated(report, "cycle.core"), report.render()
        assert violated(report, "cycle.host")
        assert any(str(core.key) in v.where for v in violated(report, "cycle.core"))
    finally:
        finished.profiler._cycles[core.key]["tcp_rcv_established"] -= 12345.0


def test_injected_double_charge_strict_mode_raises(finished):
    core = finished.sender.topology.cores[0]
    finished.profiler.charge(core, "__schedule", 999.0)
    try:
        with pytest.raises(AuditError, match="cycle.core"):
            audit_experiment(finished, strict=True)
    finally:
        finished.profiler._cycles[core.key]["__schedule"] -= 999.0


def test_unclassifiable_operation_is_caught(finished):
    """Cycles charged to an op outside the Table-1 taxonomy would silently
    vanish from the breakdown; the auditor flags them."""
    core = finished.receiver.topology.cores[0]
    core.charge_inline("not_a_real_kernel_function", 50.0)
    try:
        report = audit_experiment(finished)
        bad = violated(report, "cycle.taxonomy_total")
        assert bad and "not_a_real_kernel_function" in bad[0].detail
    finally:
        core.busy_cycles -= 50.0
        del finished.profiler._cycles[core.key]["not_a_real_kernel_function"]


def test_injected_byte_conjuring_is_caught(finished):
    """Bytes appearing in the stream with no application write must break
    the transmit-half identity (and the cross-host stream identity)."""
    endpoint = next(iter(finished.sender.endpoints.values()))
    endpoint.app_bytes_written += 4096
    try:
        report = audit_experiment(finished)
        assert violated(report, "byte.tx_half"), report.render()
        assert violated(report, "byte.stream")
    finally:
        endpoint.app_bytes_written -= 4096


def test_injected_rx_double_count_is_caught(finished):
    """A receive-side double count (delivering the same skb twice would bump
    app bytes without advancing rcv_nxt) breaks the receive-half identity."""
    endpoint = next(iter(finished.receiver.endpoints.values()))
    endpoint.app_bytes_read += 1500
    try:
        report = audit_experiment(finished)
        assert violated(report, "byte.rx_half"), report.render()
    finally:
        endpoint.app_bytes_read -= 1500


def test_injected_wire_frame_loss_is_caught(finished):
    """A frame vanishing between NIC and link counters breaks wire
    conservation on exactly that direction."""
    finished.link_to_receiver.frames_delivered -= 1
    try:
        report = audit_experiment(finished)
        bad = violated(report, "wire.frames") + violated(report, "wire.nic_rx")
        assert bad, report.render()
        assert all("snd->rcv" in v.where for v in bad)
    finally:
        finished.link_to_receiver.frames_delivered += 1


def test_engine_cancellation_drift_is_caught(finished):
    """A drifted lazy-cancellation counter (decremented twice, say) must be
    caught by the recount cross-check."""
    finished.engine._cancelled_in_queue += 1
    try:
        report = audit_experiment(finished)
        assert violated(report, "engine.cancelled"), report.render()
    finally:
        finished.engine._cancelled_in_queue -= 1


def test_metrics_per_flow_drift_is_caught(finished):
    metrics = finished.metrics
    metrics._per_flow_bytes[("receiver", 0)] += 10
    try:
        report = audit_experiment(finished)
        assert violated(report, "metrics.per_flow_sum"), report.render()
    finally:
        metrics._per_flow_bytes[("receiver", 0)] -= 10


# --- auditor coverage across workload shapes ------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"pattern": TrafficPattern.INCAST, "num_flows": 4},
        {"pattern": TrafficPattern.MIXED, "num_flows": 1},
    ],
    ids=["incast", "mixed"],
)
def test_multi_flow_patterns_conserve(kwargs):
    experiment = run_experiment(**kwargs)
    report = audit_experiment(experiment, strict=True)
    assert report.ok
