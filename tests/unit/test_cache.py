"""Unit tests for the L3/DCA cache model."""

import random

import pytest

from repro.hardware.cache import DcaRegion, L3CacheModel


def make_region(capacity=1000, dilution=0.25, enabled=True):
    return DcaRegion(0, capacity, dilution, enabled, rng=random.Random(42))


def test_write_then_consume_hits():
    dca = make_region()
    dca.dma_write(1, 100)
    hit, miss = dca.consume(1, 100)
    assert (hit, miss) == (100, 0)


def test_consume_unknown_region_misses():
    dca = make_region()
    hit, miss = dca.consume(99, 50)
    assert (hit, miss) == (0, 50)


def test_consume_removes_region():
    dca = make_region()
    dca.dma_write(1, 100)
    dca.consume(1, 100)
    assert dca.occupancy == 0
    hit, _ = dca.consume(1, 100)
    assert hit == 0


def test_discard_removes_without_consuming():
    dca = make_region()
    dca.dma_write(1, 100)
    dca.discard(1)
    assert dca.occupancy == 0


def test_disabled_region_never_holds_data():
    dca = make_region(enabled=False)
    dca.dma_write(1, 100)
    assert dca.occupancy == 0
    assert dca.consume(1, 100) == (0, 100)


def test_eviction_under_sustained_overflow():
    dca = make_region(capacity=1000)
    for region_id in range(100):
        dca.dma_write(region_id, 100)
    # 10x capacity written: most must have been evicted
    assert dca.occupancy <= 1000 + 100
    assert dca.bytes_evicted > 0


def test_hazard_eviction_is_partial_below_capacity_pressure():
    """A lightly-loaded region should keep most of its data."""
    dca = make_region(capacity=10_000)
    for region_id in range(10):
        dca.dma_write(region_id, 100)  # 10% occupancy
    hits = sum(dca.consume(region_id, 100)[0] for region_id in range(10))
    assert hits >= 800  # at most light hazard eviction


def test_effective_capacity_without_footprint_is_full():
    dca = make_region(capacity=1000)
    dca.set_descriptor_footprint(500)
    assert dca.effective_capacity == 1000


def test_effective_capacity_diluted_by_large_footprint():
    dca = make_region(capacity=1000, dilution=1.0)
    dca.set_descriptor_footprint(4000)
    assert dca.effective_capacity == 250


def test_dilution_exponent_softens_effect():
    hard = make_region(capacity=1000, dilution=1.0)
    soft = make_region(capacity=1000, dilution=0.25)
    hard.set_descriptor_footprint(16_000)
    soft.set_descriptor_footprint(16_000)
    assert soft.effective_capacity > hard.effective_capacity


def test_lro_growth_accumulates_into_one_region():
    dca = make_region()
    dca.dma_write(1, 100)
    dca.dma_write(1, 100)  # LRO appends to the same region
    hit, miss = dca.consume(1, 200)
    assert hit == 200 and miss == 0


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        DcaRegion(0, 0)


def test_sender_miss_rate_grows_with_working_set():
    model = L3CacheModel(
        num_nodes=2,
        l3_bytes=20 * 1024 * 1024,
        dca_capacity_bytes=3 * 1024 * 1024,
        nic_node=0,
        dca_enabled=True,
        dilution_exponent=0.25,
    )
    baseline = model.sender_miss_rate(0)
    model.register_working_set(0, 10 * 1024 * 1024)
    loaded = model.sender_miss_rate(0)
    assert loaded > baseline
    model.unregister_working_set(0, 10 * 1024 * 1024)
    assert model.sender_miss_rate(0) == pytest.approx(baseline)


def test_sender_miss_rate_capped():
    model = L3CacheModel(2, 1024, 512, 0, True, 0.25)
    model.register_working_set(0, 10**9)
    assert model.sender_miss_rate(0) <= 0.95
