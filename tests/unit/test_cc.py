"""Unit tests for the congestion control algorithms."""

import pytest

from repro.config import CongestionControl
from repro.kernel.tcp.cc import (
    BbrCC,
    CubicCC,
    DctcpCC,
    RenoCC,
    make_congestion_controller,
)

MSS = 8960
USEC = 1000


def test_factory_builds_each_algorithm():
    for algo, cls in [
        (CongestionControl.RENO, RenoCC),
        (CongestionControl.CUBIC, CubicCC),
        (CongestionControl.DCTCP, DctcpCC),
        (CongestionControl.BBR, BbrCC),
    ]:
        cc = make_congestion_controller(algo, MSS, 10)
        assert isinstance(cc, cls)
        assert cc.cwnd_bytes == 10 * MSS


def test_reno_slow_start_doubles():
    cc = RenoCC(MSS, 10)
    start = cc.cwnd_bytes
    cc.on_ack(start, rtt_ns=50 * USEC, ecn_echo=False, now_ns=0)
    assert cc.cwnd_bytes == 2 * start


def test_reno_congestion_avoidance_linear():
    cc = RenoCC(MSS, 10)
    cc.ssthresh_bytes = cc.cwnd_bytes  # leave slow start
    start = cc.cwnd_bytes
    cc.on_ack(start, 50 * USEC, False, 0)  # one full window acked
    assert cc.cwnd_bytes == start + MSS


def test_reno_loss_halves():
    cc = RenoCC(MSS, 100)
    before = cc.cwnd_bytes
    cc.on_loss(0)
    assert cc.cwnd_bytes == before // 2
    assert cc.in_recovery


def test_cwnd_never_below_one_mss():
    cc = RenoCC(MSS, 2)
    for _ in range(10):
        cc.on_loss(0)
        cc.on_recovery_exit(0)
    assert cc.cwnd_bytes >= MSS


def test_timeout_resets_to_one_mss():
    cc = CubicCC(MSS, 100)
    cc.on_timeout(0)
    assert cc.cwnd_bytes == MSS


def test_cubic_reduces_by_beta():
    cc = CubicCC(MSS, 100)
    before = cc.cwnd_bytes
    cc.on_loss(1_000_000)
    assert cc.cwnd_bytes == pytest.approx(before * 0.7, rel=0.01)


def test_cubic_regrows_after_loss():
    cc = CubicCC(MSS, 100)
    cc.on_loss(0)
    cc.on_recovery_exit(0)
    floor = cc.cwnd_bytes
    now = 0
    for _ in range(200):
        now += 50 * USEC
        cc.on_ack(cc.cwnd_bytes, 50 * USEC, False, now)
    assert cc.cwnd_bytes > floor


def test_cubic_frozen_during_recovery():
    cc = CubicCC(MSS, 100)
    cc.on_loss(0)
    during = cc.cwnd_bytes
    cc.on_ack(10 * MSS, 50 * USEC, False, 100)
    assert cc.cwnd_bytes == during


def test_dctcp_alpha_decays_without_marks():
    cc = DctcpCC(MSS, 100)
    assert cc.alpha == 1.0
    now = 0
    for _ in range(50):
        now += 50 * USEC
        cc.on_ack(cc.cwnd_bytes, 50 * USEC, False, now)
    assert cc.alpha < 0.1


def test_dctcp_marks_reduce_window_proportionally():
    cc = DctcpCC(MSS, 100)
    before = cc.cwnd_bytes
    now = 0
    for _ in range(30):
        now += 50 * USEC
        cc.on_ack(cc.cwnd_bytes, 50 * USEC, True, now)  # everything marked
    assert cc.cwnd_bytes < before


def test_bbr_tracks_bandwidth():
    cc = BbrCC(MSS, 10)
    now = 0
    for _ in range(50):
        now += 10 * USEC
        cc.on_ack(125_000, 50 * USEC, False, now)  # 12.5MB/ms == 100Gbps
    assert cc.btl_bw_bps > 10e9


def test_bbr_min_rtt_window_expires():
    cc = BbrCC(MSS, 10)
    cc.on_ack(10_000, 9 * USEC, False, 0)
    assert cc.min_rtt_ns == 9 * USEC
    # much later, only slower samples remain in the window
    later = BbrCC.MIN_RTT_WINDOW_NS + 1_000_000
    cc.on_ack(10_000, 80 * USEC, False, later)
    assert cc.min_rtt_ns == 80 * USEC


def test_bbr_ignores_isolated_loss():
    cc = BbrCC(MSS, 100)
    before = cc.cwnd_bytes
    cc.on_loss(0)
    assert cc.cwnd_bytes == before


def test_bbr_uses_pacing():
    assert BbrCC(MSS, 10).uses_pacing
    assert not CubicCC(MSS, 10).uses_pacing
    assert BbrCC(MSS, 10).pacing_rate_bps() > 0


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError):
        make_congestion_controller("not-an-algo", MSS, 10)


def test_invalid_mss_rejected():
    with pytest.raises(ValueError):
        RenoCC(0, 10)
