"""Unit tests for the CI perf gate (``tools/check_bench_regression.py``).

The gate itself re-measures figures cold, which is far too slow for unit
tests — so these tests stub the measurement layer with synthetic numbers
and exercise the decision logic: a healthy snapshot passes, each ceiling
and floor trips individually, ``--update`` rewrites the baseline without
being able to weaken the hard-coded floors, and calibration normalization
makes the verdict machine-independent.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_TOOL_PATH = Path(__file__).resolve().parents[2] / "tools" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _TOOL_PATH)
tool = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(tool)


ENGINE_METRICS = {
    "calibration_ops_per_sec": 10_000_000.0,
    "schedule_run_events_per_sec": 4_000_000.0,
    "schedule_run_normalized": 0.40,
    "cancel_churn_events_per_sec": 3_000_000.0,
    "cancel_churn_normalized": 0.30,
}

FIGURE_ROW = {
    "normalized_cost": 6_000_000.0,
    "normalized_cost_no_express": 6_500_000.0,
    "normalized_cost_legacy": 8_000_000.0,
    "events_fired": 4_000,
    "events_fired_no_express": 9_000,
    "events_fired_legacy": 20_000,
    "events_reduction": 0.80,
    "trace_overhead": 0.10,
}

BASELINE = {
    "schedule_run_normalized": 0.40,
    "cancel_churn_normalized": 0.30,
    "figures": {
        "fig3a": {
            "max_normalized_cost": 6_000_000.0,
            "max_normalized_cost_no_express": 6_500_000.0,
            "max_normalized_cost_legacy": 8_000_000.0,
            "min_events_reduction": tool.MIN_EVENTS_REDUCTION,
        }
    },
}


def _run_gate(tmp_path, monkeypatch, capsys, *, engine=None, row=None,
              baseline=BASELINE, update=False, figures="fig3a"):
    """Run ``main()`` with stubbed measurements; return (exit code, stderr)."""
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(baseline))
    engine = dict(ENGINE_METRICS if engine is None else engine)
    row = dict(FIGURE_ROW if row is None else row)

    monkeypatch.setattr(tool.bench, "engine_metrics", lambda repeat: engine)
    monkeypatch.setattr(
        tool, "_figure_metrics", lambda names, repeat, cal: {"fig3a": row}
    )
    argv = ["check_bench_regression.py", "--baseline", str(baseline_path),
            "--figures", figures]
    if update:
        argv.append("--update")
    monkeypatch.setattr(tool.sys, "argv", argv)
    code = tool.main()
    return code, capsys.readouterr().err


def test_healthy_snapshot_passes(tmp_path, monkeypatch, capsys):
    code, err = _run_gate(tmp_path, monkeypatch, capsys)
    assert code == 0
    assert "REGRESSION" not in err


def test_engine_throughput_floor_trips(tmp_path, monkeypatch, capsys):
    engine = dict(ENGINE_METRICS)
    engine["schedule_run_normalized"] = 0.40 * 0.5  # far below 25% tolerance
    code, err = _run_gate(tmp_path, monkeypatch, capsys, engine=engine)
    assert code == 1
    assert "schedule_run_normalized" in err


@pytest.mark.parametrize(
    "key",
    ["normalized_cost", "normalized_cost_no_express", "normalized_cost_legacy"],
)
def test_each_cost_ceiling_trips(tmp_path, monkeypatch, capsys, key):
    row = dict(FIGURE_ROW)
    row[key] = row[key] * 2.0  # well past the 25% headroom
    code, err = _run_gate(tmp_path, monkeypatch, capsys, row=row)
    assert code == 1
    assert key in err


def test_cost_within_tolerance_headroom_passes(tmp_path, monkeypatch, capsys):
    row = dict(FIGURE_ROW)
    row["normalized_cost"] = BASELINE["figures"]["fig3a"][
        "max_normalized_cost"
    ] * 1.20  # above baseline but inside the 25% tolerance
    code, _ = _run_gate(tmp_path, monkeypatch, capsys, row=row)
    assert code == 0


def test_events_reduction_floor_is_exact(tmp_path, monkeypatch, capsys):
    row = dict(FIGURE_ROW)
    row["events_reduction"] = tool.MIN_EVENTS_REDUCTION - 0.01
    code, err = _run_gate(tmp_path, monkeypatch, capsys, row=row)
    assert code == 1
    assert "events_reduction" in err
    # Exactly at the floor is acceptable: no tolerance in either direction.
    row["events_reduction"] = tool.MIN_EVENTS_REDUCTION
    code, _ = _run_gate(tmp_path, monkeypatch, capsys, row=row)
    assert code == 0


def test_trace_overhead_ceiling_trips(tmp_path, monkeypatch, capsys):
    row = dict(FIGURE_ROW)
    row["trace_overhead"] = tool.MAX_TRACE_OVERHEAD + 0.05
    code, err = _run_gate(tmp_path, monkeypatch, capsys, row=row)
    assert code == 1
    assert "tracing" in err


def test_missing_gated_figure_fails(tmp_path, monkeypatch, capsys):
    # fig9a is gated by the baseline and requested, but the measurement
    # layer (stubbed here) never produced a row for it.
    baseline = json.loads(json.dumps(BASELINE))
    baseline["figures"]["fig9a"] = baseline["figures"]["fig3a"]
    code, err = _run_gate(
        tmp_path, monkeypatch, capsys, baseline=baseline,
        figures="fig3a,fig9a",
    )
    assert code == 1
    assert "not measured" in err


def test_update_rewrites_baseline_with_hard_floor(tmp_path, monkeypatch, capsys):
    code, _ = _run_gate(tmp_path, monkeypatch, capsys, update=True)
    assert code == 0
    doc = json.loads((tmp_path / "baseline.json").read_text())
    fig = doc["figures"]["fig3a"]
    assert fig["max_normalized_cost"] == FIGURE_ROW["normalized_cost"]
    assert (
        fig["max_normalized_cost_no_express"]
        == FIGURE_ROW["normalized_cost_no_express"]
    )
    assert fig["max_normalized_cost_legacy"] == FIGURE_ROW["normalized_cost_legacy"]
    # --update can never weaken the events floor: it is the tool's constant,
    # not whatever this machine happened to measure.
    assert fig["min_events_reduction"] == tool.MIN_EVENTS_REDUCTION
    assert doc["schedule_run_normalized"] == ENGINE_METRICS["schedule_run_normalized"]
    # A gate run against the freshly written baseline passes.
    code, err = _run_gate(tmp_path, monkeypatch, capsys, baseline=doc)
    assert code == 0
    assert "REGRESSION" not in err


def test_calibration_normalization_is_machine_independent(monkeypatch):
    """A machine half as fast (walls x2, calibration /2) must produce the
    same normalized figure costs, so the committed ceilings transfer."""
    walls = {
        (True, True, False): 0.5,
        (True, False, False): 0.6,
        (False, False, False): 1.0,
        (True, True, True): 0.55,
    }

    def fake_time_figure(name, frame_trains, express, repeat, trace=False):
        return walls[(frame_trains, express, trace)] * scale, 1_000

    monkeypatch.setattr(tool, "_time_figure", fake_time_figure)
    scale = 1.0
    fast = tool._figure_metrics(["fig3a"], 1, 10_000_000.0)["fig3a"]
    scale = 2.0
    slow = tool._figure_metrics(["fig3a"], 1, 5_000_000.0)["fig3a"]
    for key in (
        "normalized_cost",
        "normalized_cost_no_express",
        "normalized_cost_legacy",
        "trace_overhead",
        "events_reduction",
    ):
        assert fast[key] == pytest.approx(slow[key])
