"""Unit tests for the command-line interface."""

import json

from repro.cli import _build_parser, _config_from_args, main
from repro.config import CongestionControl, NumaPolicy, TrafficPattern


def parse(args):
    return _build_parser().parse_args(args)


def test_run_defaults():
    config = _config_from_args(parse(["run"]))
    assert config.pattern is TrafficPattern.SINGLE
    assert config.opts.arfs and config.opts.tso_gro and config.opts.jumbo
    assert config.tcp.autotune_rx_buffer


def test_run_flag_mapping():
    config = _config_from_args(parse([
        "run", "--pattern", "incast", "--flows", "8", "--no-arfs",
        "--iommu", "--no-dca", "--numa-remote", "--cc", "bbr",
        "--loss", "0.001", "--rx-buffer-kb", "3200", "--ring", "512",
    ]))
    assert config.pattern is TrafficPattern.INCAST
    assert config.num_flows == 8
    assert not config.opts.arfs
    assert config.host.iommu_enabled and not config.host.dca_enabled
    assert config.numa_policy is NumaPolicy.NIC_REMOTE
    assert config.tcp.congestion_control is CongestionControl.BBR
    assert config.link.loss_rate == 0.001 and config.link.has_switch
    assert not config.tcp.autotune_rx_buffer
    assert config.nic.rx_descriptors == 512
    config.validate()


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig3a" in out and "table1" in out and "fig13c" in out


def test_figure_command_renders_table(capsys):
    assert main(["figure", "table1"]) == 0
    assert "CPU usage taxonomy" in capsys.readouterr().out


def test_figure_command_unknown_panel(capsys):
    assert main(["figure", "nope"]) == 2


def test_figure_export(tmp_path, capsys):
    path = tmp_path / "t2.csv"
    assert main(["figure", "table2", "--export", str(path)]) == 0
    assert "mechanism" in path.read_text()


def test_run_json_output(capsys):
    code = main([
        "run", "--duration-ms", "2", "--warmup-ms", "2", "--json",
    ])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["total_throughput_gbps"] > 0


def test_run_audit_flag_prints_clean_report(capsys):
    code = main([
        "run", "--duration-ms", "1", "--warmup-ms", "2", "--audit",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "conservation checks passed" in out


def test_run_audit_json_embeds_report(capsys):
    code = main([
        "run", "--duration-ms", "1", "--warmup-ms", "2", "--audit", "--json",
    ])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["audit"]["violations"] == []
    assert document["audit"]["checks_run"] > 20


def test_audit_flag_disables_cache():
    from repro.cli import _runner_settings

    args = parse(["run", "--audit"])
    jobs, cache, audit = _runner_settings(args)
    assert audit and cache is None

    args = parse(["figure", "fig3a", "--audit"])
    _, cache, audit = _runner_settings(args)
    assert audit and cache is None


def _shorten_figure_windows(monkeypatch):
    from repro.figures import base as figures_base
    from repro.units import msec

    monkeypatch.setattr(figures_base, "DURATION_NS", msec(1))
    monkeypatch.setattr(
        figures_base, "WARMUP_NS",
        {pattern: msec(2) for pattern in figures_base.WARMUP_NS},
    )


def test_audit_subcommand_reports_clean_panel(capsys, monkeypatch):
    _shorten_figure_windows(monkeypatch)
    assert main(["audit", "fig3a"]) == 0
    captured = capsys.readouterr()
    assert "conservation checks passed" in captured.out
    assert "experiments audited" in captured.err


def test_audit_subcommand_unknown_panel(capsys):
    assert main(["audit", "nope"]) == 2


def test_trace_subcommand_renders_stage_table(capsys, monkeypatch):
    _shorten_figure_windows(monkeypatch)
    assert main(["trace", "fig3a"]) == 0
    captured = capsys.readouterr()
    assert "per-stage latency" in captured.out
    assert "rx_copy" in captured.out and "e2e" in captured.out
    assert "trace identity ok" in captured.err


def test_trace_subcommand_export(capsys, monkeypatch, tmp_path):
    _shorten_figure_windows(monkeypatch)
    path = tmp_path / "trace.csv"
    assert main(["trace", "fig3a", "--export", str(path)]) == 0
    assert "rx_softirq" in path.read_text()


def test_trace_subcommand_unknown_panel(capsys):
    assert main(["trace", "nope"]) == 2


def test_figure_audit_exits_nonzero_on_violation(capsys, monkeypatch):
    """A violating report must turn into a non-zero exit for CI."""
    from repro.cli import _audit_exit_code
    from repro.core.audit import AuditReport, AuditViolation

    clean = AuditReport(checks_run=5)
    dirty = AuditReport(
        checks_run=5,
        violations=[AuditViolation("byte.tx_half", "flow 0", 1, 2)],
    )
    assert _audit_exit_code(None) == 0
    assert _audit_exit_code(clean) == 0
    assert _audit_exit_code(dirty) == 1
