"""Unit tests for experiment configuration."""

import pytest

from repro.config import (
    ExperimentConfig,
    LinkConfig,
    OptimizationConfig,
    TrafficPattern,
)
from repro.constants import DEFAULT_MTU, JUMBO_MTU


def test_default_config_is_valid():
    ExperimentConfig().validate()


def test_optimization_presets():
    none = OptimizationConfig.none()
    assert not none.tso_gro and not none.jumbo and not none.arfs
    allopt = OptimizationConfig.all()
    assert allopt.tso_gro and allopt.jumbo and allopt.arfs


def test_incremental_ladder_order():
    labels = [label for label, _ in OptimizationConfig.incremental_ladder()]
    assert labels == ["No Opt.", "+TSO/GRO", "+Jumbo", "+aRFS"]


def test_ladder_is_incremental():
    ladder = [opts for _, opts in OptimizationConfig.incremental_ladder()]
    enabled_counts = [
        sum((o.tso_gro, o.jumbo, o.arfs)) for o in ladder
    ]
    assert enabled_counts == [0, 1, 2, 3]


def test_mtu_follows_jumbo_flag():
    assert OptimizationConfig.none().mtu == DEFAULT_MTU
    assert OptimizationConfig.all().mtu == JUMBO_MTU


def test_replace_returns_modified_copy():
    config = ExperimentConfig()
    other = config.replace(num_flows=4, pattern=TrafficPattern.INCAST)
    assert other.num_flows == 4
    assert other.pattern is TrafficPattern.INCAST
    assert config.num_flows == 1  # original untouched


def test_validate_rejects_zero_flows():
    with pytest.raises(ValueError):
        ExperimentConfig(num_flows=0).validate()


def test_validate_rejects_nonpositive_duration():
    with pytest.raises(ValueError):
        ExperimentConfig(duration_ns=0).validate()


def test_validate_rejects_negative_warmup():
    with pytest.raises(ValueError):
        ExperimentConfig(warmup_ns=-1).validate()


def test_validate_rejects_more_flows_than_cores():
    config = ExperimentConfig(pattern=TrafficPattern.ONE_TO_ONE, num_flows=25)
    with pytest.raises(ValueError):
        config.validate()


def test_validate_rejects_loss_without_switch():
    config = ExperimentConfig(link=LinkConfig(loss_rate=0.01, has_switch=False))
    with pytest.raises(ValueError):
        config.validate()


def test_validate_rejects_loss_rate_of_one():
    with pytest.raises(ValueError):
        ExperimentConfig(link=LinkConfig(loss_rate=1.0, has_switch=True)).validate()
