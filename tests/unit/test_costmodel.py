"""Unit tests for the cost model and calibration profiles."""

import dataclasses

import pytest

from repro.costs.calibration import default_cost_model, zero_copy_cost_model
from repro.costs.model import CostModel


def test_default_model_validates():
    default_cost_model().validate()


def test_replace_overrides_single_field():
    model = default_cost_model()
    other = model.replace(copy_per_byte_l3_hit=0.5)
    assert other.copy_per_byte_l3_hit == 0.5
    assert model.copy_per_byte_l3_hit != 0.5


def test_negative_cost_rejected():
    with pytest.raises(ValueError):
        default_cost_model().replace(irq_cycles=-1).validate()


def test_miss_costs_exceed_hit_costs():
    model = default_cost_model()
    assert model.copy_per_byte_l3_miss > model.copy_per_byte_l3_hit
    assert model.page_alloc_global_cycles > model.page_alloc_pcp_cycles
    assert model.sock_lock_contended > model.sock_lock_uncontended
    assert model.page_free_remote_cycles > model.page_free_local_cycles


def test_zero_copy_profile_removes_per_byte_costs():
    model = zero_copy_cost_model()
    assert model.copy_per_byte_l3_hit == 0.0
    assert model.copy_per_byte_l3_miss == 0.0
    assert model.copy_per_call > 0  # pinning overhead remains


def test_all_fields_are_floats():
    for field in dataclasses.fields(CostModel):
        assert isinstance(getattr(default_cost_model(), field.name), float)
