"""Unit tests for the CPU core model."""

from repro.core.profiler import CpuProfiler
from repro.costs.calibration import default_cost_model
from repro.hardware.cpu import PRIORITY_APP, PRIORITY_SOFTIRQ, Core, Job
from repro.sim.engine import Engine


def make_core(freq=1e9):
    engine = Engine()
    profiler = CpuProfiler()
    costs = default_cost_model()
    core = Core(engine, profiler, costs, "receiver", 0, 0, freq)
    return engine, profiler, core


def test_job_duration_matches_cycles():
    engine, profiler, core = make_core(freq=1e9)  # 1 cycle == 1ns
    done_at = []
    core.submit_work("ctx", [("copy_to_user", 500.0)], lambda: done_at.append(engine.now))
    engine.run()
    assert done_at == [500]
    assert profiler.core_cycles(core.key) == 500


def test_jobs_serialize():
    engine, _, core = make_core(freq=1e9)
    finish = []
    core.submit_work("a", [("copy_to_user", 100.0)], lambda: finish.append(engine.now))
    core.submit_work("a", [("copy_to_user", 100.0)], lambda: finish.append(engine.now))
    engine.run()
    assert finish == [100, 200]


def test_softirq_priority_runs_first():
    engine, _, core = make_core()
    order = []
    # Occupy the core so both queued jobs are pending when it frees up.
    core.submit_work("busy", [("copy_to_user", 10.0)])
    core.submit_work("app", [("copy_to_user", 10.0)], lambda: order.append("app"),
                     PRIORITY_APP)
    core.submit_work(("softirq", 0), [("napi_poll", 10.0)],
                     lambda: order.append("softirq"), PRIORITY_SOFTIRQ)
    engine.run()
    assert order == ["softirq", "app"]


def test_context_switch_charged_between_contexts():
    engine, profiler, core = make_core()
    core.submit_work("a", [("copy_to_user", 10.0)])
    core.submit_work("b", [("copy_to_user", 10.0)])
    engine.run()
    assert core.context_switches == 1
    by_op = profiler._cycles[core.key]
    assert by_op["__schedule"] == core.costs.context_switch_cycles


def test_no_context_switch_within_same_context():
    engine, _, core = make_core()
    core.submit_work("same", [("copy_to_user", 10.0)])
    core.submit_work("same", [("copy_to_user", 10.0)])
    engine.run()
    assert core.context_switches == 0


def test_fifo_within_priority():
    engine, _, core = make_core()
    order = []
    core.submit_work("busy", [("copy_to_user", 10.0)])
    for name in ("one", "two", "three"):
        core.submit_work(name, [("copy_to_user", 1.0)],
                         lambda n=name: order.append(n))
    engine.run()
    assert order == ["one", "two", "three"]


def test_queue_depth():
    engine, _, core = make_core()
    core.submit_work("a", [("copy_to_user", 100.0)])
    core.submit_work("b", [("copy_to_user", 100.0)])
    assert core.queue_depth() == 1  # one running, one queued
    engine.run()
    assert core.queue_depth() == 0


def test_job_total_cycles():
    job = Job("ctx", [("a_op", 10.0), ("b_op", 20.0)])
    assert job.total_cycles() == 30.0


def test_busy_flag():
    engine, _, core = make_core()
    assert not core.busy
    core.submit_work("a", [("copy_to_user", 100.0)])
    assert core.busy
    engine.run()
    assert not core.busy
