"""Unit-level tests of TCP endpoint mechanics, driven through a tiny
two-host experiment so every dependency is real."""

import pytest

from repro.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.kernel.skb import Skb
from repro.units import msec


def run_experiment(**kwargs):
    config = ExperimentConfig(
        duration_ns=kwargs.pop("duration_ns", msec(3)),
        warmup_ns=kwargs.pop("warmup_ns", msec(1)),
        **kwargs,
    )
    experiment = Experiment(config)
    result = experiment.run()
    return experiment, result


def test_sequence_space_consistency():
    experiment, _ = run_experiment()
    snd = experiment.sender.endpoints[1]
    rcv = experiment.receiver.endpoints[1]
    assert snd.snd_una <= snd.snd_nxt
    assert rcv.rcv_nxt <= snd.snd_nxt
    assert snd.snd_una <= rcv.rcv_nxt  # never ack what wasn't received


def test_inflight_bounded_by_windows():
    experiment, _ = run_experiment()
    snd = experiment.sender.endpoints[1]
    window = min(snd.cc.cwnd_bytes, max(snd.rwnd_bytes, 1))
    # allow one in-flight burst of slack for the tx job granularity
    assert snd.inflight_bytes() <= window + 256 * 1024


def test_delivered_bytes_not_exceeding_received():
    experiment, _ = run_experiment()
    rcv = experiment.receiver.endpoints[1]
    delivered = experiment.metrics.flow_bytes("receiver", 1)
    assert delivered <= rcv.rcv_nxt


def test_rtt_estimate_positive():
    experiment, _ = run_experiment()
    snd = experiment.sender.endpoints[1]
    assert snd.srtt_ns > 0


def test_acks_flow_back():
    experiment, _ = run_experiment()
    rcv = experiment.receiver.endpoints[1]
    assert rcv.acks_sent > 0


def test_no_retransmits_on_clean_link():
    experiment, result = run_experiment()
    assert result.retransmits == 0
    assert result.timeouts == 0


def test_autotune_grows_buffer_for_fast_flow():
    experiment, _ = run_experiment(duration_ns=msec(6), warmup_ns=msec(2))
    rcv = experiment.receiver.endpoints[1]
    assert rcv.socket.rx_buffer_bytes > 64 * 1024


def test_ooo_trim_front():
    experiment, _ = run_experiment(duration_ns=msec(1), warmup_ns=msec(0))
    rcv = experiment.receiver.endpoints[1]
    skb = Skb(flow_id=1, seq=0, payload_bytes=1000, pages=1,
              regions=[(999_991, 400), (999_992, 600)])
    rcv._trim_skb_front(skb, 400)
    assert skb.seq == 400
    assert skb.payload_bytes == 600
    assert skb.regions == [(999_992, 600)]


def test_current_holes_from_ooo_queue():
    experiment, _ = run_experiment(duration_ns=msec(1), warmup_ns=msec(0))
    rcv = experiment.receiver.endpoints[1]
    rcv._ooo = [
        Skb(flow_id=1, seq=rcv.rcv_nxt + 5000, payload_bytes=1000),
        Skb(flow_id=1, seq=rcv.rcv_nxt + 9000, payload_bytes=1000),
    ]
    holes = rcv._current_holes()
    assert holes[0] == (rcv.rcv_nxt, rcv.rcv_nxt + 5000)
    assert holes[1] == (rcv.rcv_nxt + 6000, rcv.rcv_nxt + 9000)


def test_sendmsg_rejects_nonpositive():
    experiment, _ = run_experiment(duration_ns=msec(1), warmup_ns=msec(0))
    snd = experiment.sender.endpoints[1]
    with pytest.raises(ValueError):
        snd.sendmsg(None, 0, lambda n: None)
