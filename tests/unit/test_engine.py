"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine


def test_time_starts_at_zero():
    assert Engine().now == 0


def test_schedule_and_run_in_order():
    engine = Engine()
    order = []
    engine.schedule(30, order.append, "c")
    engine.schedule(10, order.append, "a")
    engine.schedule(20, order.append, "b")
    engine.run()
    assert order == ["a", "b", "c"]


def test_same_timestamp_fifo_order():
    engine = Engine()
    order = []
    for name in "abcde":
        engine.schedule(5, order.append, name)
    engine.run()
    assert order == list("abcde")


def test_clock_advances_to_event_time():
    engine = Engine()
    engine.schedule(123, lambda: None)
    engine.run()
    assert engine.now == 123


def test_run_until_stops_before_later_events():
    engine = Engine()
    fired = []
    engine.schedule(10, fired.append, 1)
    engine.schedule(100, fired.append, 2)
    engine.run(until=50)
    assert fired == [1]
    assert engine.now == 50  # clock lands exactly on the boundary


def test_run_until_can_resume():
    engine = Engine()
    fired = []
    engine.schedule(10, fired.append, 1)
    engine.schedule(100, fired.append, 2)
    engine.run(until=50)
    engine.run(until=200)
    assert fired == [1, 2]


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(10, fired.append, "x")
    event.cancel()
    engine.run()
    assert fired == []


def test_cancel_is_idempotent():
    engine = Engine()
    event = engine.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    engine.run()


def test_schedule_in_past_raises():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.schedule_at(5, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(ValueError):
        Engine().schedule(-1, lambda: None)


def test_events_scheduled_during_run_fire():
    engine = Engine()
    order = []

    def first():
        order.append("first")
        engine.schedule(5, order.append, "nested")

    engine.schedule(10, first)
    engine.run()
    assert order == ["first", "nested"]
    assert engine.now == 15


def test_stop_halts_processing():
    engine = Engine()
    fired = []

    def stopper():
        fired.append("stop")
        engine.stop()

    engine.schedule(1, stopper)
    engine.schedule(2, fired.append, "after")
    engine.run()
    assert fired == ["stop"]


def test_pending_events_counts_noncancelled():
    engine = Engine()
    engine.schedule(1, lambda: None)
    event = engine.schedule(2, lambda: None)
    event.cancel()
    assert engine.pending_events() == 1


def test_zero_delay_event_fires_now():
    engine = Engine()
    fired = []
    engine.schedule(0, fired.append, True)
    engine.run()
    assert fired == [True] and engine.now == 0
