"""Unit tests for result/table export."""

import csv
import io
import json

import pytest

from repro.core.export import (
    export_table,
    result_to_dict,
    result_to_json,
    table_to_csv,
    table_to_json,
)
from repro.core.report import Table

from .test_results import make_result


def test_result_to_dict_round_trips_through_json():
    payload = result_to_dict(make_result(total=42.0))
    again = json.loads(json.dumps(payload))
    assert again["total_throughput_gbps"] == 42.0
    assert again["bottleneck_side"] == "receiver"
    assert set(again["receiver_breakdown"]) == {
        "data_copy", "tcpip", "netdev", "skb_mgmt",
        "memory", "lock", "sched", "etc",
    }


def test_result_to_json_is_valid_json():
    document = json.loads(result_to_json(make_result()))
    assert "copy_latency_ns" in document


def make_table():
    table = Table("t", ["name", "value"])
    table.add_row("a", 1.5)
    table.add_row("b", 2.5)
    return table


def test_table_to_csv():
    rows = list(csv.reader(io.StringIO(table_to_csv(make_table()))))
    assert rows[0] == ["name", "value"]
    assert rows[1] == ["a", "1.5"]


def test_table_to_json():
    document = json.loads(table_to_json(make_table()))
    assert document["title"] == "t"
    assert document["rows"][1] == {"name": "b", "value": 2.5}


def test_export_table_writes_files(tmp_path):
    table = make_table()
    csv_path = tmp_path / "out.csv"
    json_path = tmp_path / "out.json"
    export_table(table, str(csv_path))
    export_table(table, str(json_path))
    assert "name,value" in csv_path.read_text()
    assert json.loads(json_path.read_text())["title"] == "t"


def test_export_table_rejects_unknown_suffix(tmp_path):
    with pytest.raises(ValueError):
        export_table(make_table(), str(tmp_path / "out.xlsx"))
