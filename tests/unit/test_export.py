"""Unit tests for result/table export."""

import csv
import io
import json

import pytest

from repro.core.export import (
    export_table,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
    table_to_csv,
    table_to_json,
)
from repro.core.metrics import LatencyStats
from repro.core.report import Table
from repro.core.taxonomy import Category

from .test_results import make_result


def test_result_to_dict_round_trips_through_json():
    payload = result_to_dict(make_result(total=42.0))
    again = json.loads(json.dumps(payload))
    assert again["total_throughput_gbps"] == 42.0
    assert again["bottleneck_side"] == "receiver"
    assert set(again["receiver_breakdown"]) == {
        "data_copy", "tcpip", "netdev", "skb_mgmt",
        "memory", "lock", "sched", "etc",
    }


def test_result_to_json_is_valid_json():
    document = json.loads(result_to_json(make_result()))
    assert "copy_latency_ns" in document


def rich_result():
    """A result exercising every field the round-trip must preserve."""
    result = make_result(total=33.0, skb_sizes={1500: 3, 9000: 7, 65536: 2})
    result.copy_latency = LatencyStats(
        count=12, avg_ns=810.5, p50_ns=700.0, p99_ns=2100.0, max_ns=2500.0,
        dropped_samples=3, retained=9,
    )
    result.retransmits = 4
    result.timeouts = 1
    result.nic_rx_drops = 2
    result.wire_drops = 3
    result.acks_received_sender_side = 99
    result.throughput_by_tag_gbps = {"long": 20.0, "short": 13.0}
    result.per_flow_gbps = {0: 20.0, 7: 13.0}
    return result


def test_result_from_dict_is_lossless_inverse():
    payload = result_to_dict(rich_result())
    assert result_to_dict(result_from_dict(payload)) == payload


def test_result_from_dict_survives_json_round_trip():
    payload = json.loads(json.dumps(result_to_dict(rich_result())))
    rebuilt = result_from_dict(payload)
    assert rebuilt.rx_skb_sizes == {1500: 3, 9000: 7, 65536: 2}  # int keys again
    assert rebuilt.per_flow_gbps == {0: 20.0, 7: 13.0}
    assert rebuilt.copy_latency.p99_ns == 2100.0
    assert rebuilt.acks_received_sender_side == 99
    assert rebuilt.sender_breakdown.fraction(Category.DATA_COPY) == 0.5


def test_result_from_dict_recomputes_derived_metrics():
    rebuilt = result_from_dict(result_to_dict(rich_result()))
    assert rebuilt.bottleneck_side == "receiver"
    assert rebuilt.throughput_per_core_gbps == rich_result().throughput_per_core_gbps


def test_result_from_json_inverts_result_to_json():
    result = rich_result()
    assert result_to_dict(result_from_json(result_to_json(result))) == \
        result_to_dict(result)


def test_latency_retained_round_trips():
    payload = result_to_dict(rich_result())
    assert payload["copy_latency_ns"]["count"] == 12
    assert payload["copy_latency_ns"]["retained"] == 9
    assert payload["copy_latency_ns"]["dropped"] == 3
    rebuilt = result_from_dict(payload)
    assert rebuilt.copy_latency.retained == 9
    assert rebuilt.copy_latency.count == 12


def test_pre_v3_payload_defaults_retained_to_count():
    """Cache payloads written before schema v3 have no ``retained`` key; back
    then ``count`` meant the retained sample count, so it doubles as the
    fallback."""
    payload = result_to_dict(rich_result())
    del payload["copy_latency_ns"]["retained"]
    assert result_from_dict(payload).copy_latency.retained == 12


def test_trace_report_round_trips_through_export():
    from repro.trace import TraceHub

    hub = TraceHub()
    hub.side("receiver").stage("e2e").record(1500)
    hub.side("sender").stage("tx_queue").record(40)
    result = rich_result()
    result.trace = hub.report()

    payload = json.loads(json.dumps(result_to_dict(result)))
    rebuilt = result_from_dict(payload)
    assert rebuilt.trace == result.trace
    assert result_to_dict(rebuilt) == payload


def test_untraced_result_exports_without_trace_key():
    payload = result_to_dict(rich_result())
    assert "trace" not in payload
    assert result_from_dict(payload).trace is None


def make_table():
    table = Table("t", ["name", "value"])
    table.add_row("a", 1.5)
    table.add_row("b", 2.5)
    return table


def test_table_to_csv():
    rows = list(csv.reader(io.StringIO(table_to_csv(make_table()))))
    assert rows[0] == ["name", "value"]
    assert rows[1] == ["a", "1.5"]


def test_table_to_json():
    document = json.loads(table_to_json(make_table()))
    assert document["title"] == "t"
    assert document["rows"][1] == {"name": "b", "value": 2.5}


def test_export_table_writes_files(tmp_path):
    table = make_table()
    csv_path = tmp_path / "out.csv"
    json_path = tmp_path / "out.json"
    export_table(table, str(csv_path))
    export_table(table, str(json_path))
    assert "name,value" in csv_path.read_text()
    assert json.loads(json_path.read_text())["title"] == "t"


def test_export_table_rejects_unknown_suffix(tmp_path):
    with pytest.raises(ValueError):
        export_table(make_table(), str(tmp_path / "out.xlsx"))
