"""Unit tests for the engine's express lane (``express_at``/``reserve_serial``).

The express lane is a deadline-sorted side heap that dispatches entries
without creating wheel events when they run strictly ahead of all wheel
traffic, and materializes them into the active 256 ns block — at their
original (time, serial) position — whenever wheel events share the block.
These tests pin down the ordering contract the steady-state fast path
depends on (see DESIGN.md §13 and tests/property/test_express_equivalence.py
for the end-to-end guarantee).
"""

import pytest

from repro.sim.engine import Engine


def test_express_entry_fires_at_its_time():
    engine = Engine()
    fired = []
    engine.express_at(500, fired.append, "x")
    engine.run()
    assert fired == ["x"]
    assert engine.now == 500
    assert engine.express_registered == 1
    assert engine.express_fired == 1
    # Direct dispatch: no wheel event was ever created for it.
    assert engine.express_materialized == 0
    assert engine.events_fired == 0


def test_express_without_arg_calls_bare():
    engine = Engine()
    fired = []
    engine.express_at(100, lambda: fired.append("bare"))
    engine.run()
    assert fired == ["bare"]


def test_express_entries_sort_by_time():
    engine = Engine()
    order = []
    engine.express_at(3000, order.append, "c")
    engine.express_at(1000, order.append, "a")
    engine.express_at(2000, order.append, "b")
    engine.run()
    assert order == ["a", "b", "c"]


def test_express_cannot_schedule_in_the_past():
    engine = Engine()
    engine.schedule(100, lambda: None)
    engine.run()
    assert engine.now == 100
    with pytest.raises(ValueError):
        engine.express_at(50, lambda: None)


def test_same_instant_wheel_and_express_fire_in_registration_order():
    # A wheel event and an express entry at the same instant must interleave
    # by their scheduling tickets — exactly as two wheel events would.
    engine = Engine()
    order = []
    engine.schedule(1000, order.append, "wheel")
    engine.express_at(1000, order.append, "express")
    engine.run()
    assert order == ["wheel", "express"]
    assert engine.express_materialized == 1  # shared block -> wheel event

    engine = Engine()
    order = []
    engine.express_at(1000, order.append, "express")
    engine.schedule(1000, order.append, "wheel")
    engine.run()
    assert order == ["express", "wheel"]


def test_reserved_serial_restores_legacy_position():
    # The chased-timer pattern: a producer reserves its ticket at arm time
    # and registers the lane entry later. The entry must fire where the
    # legacy schedule call would have — before anything ticketed after the
    # reservation — regardless of registration order.
    engine = Engine()
    order = []
    serial = engine.reserve_serial()
    engine.schedule(1000, order.append, "later-ticket")
    engine.express_at(
        1000, order.append, "reserved", serial=serial, inserted_at=engine.now
    )
    engine.run()
    assert order == ["reserved", "later-ticket"]


def test_express_registered_mid_drain_fires_in_same_pass():
    # An entry registered from inside a callback, for the very block being
    # drained, materializes into the active bucket and fires in this pass —
    # after "second", because it draws its ticket at registration time,
    # exactly where a legacy ``schedule(0, ...)`` from inside ``first``
    # would have landed.
    engine = Engine()
    order = []

    def first():
        order.append("first")
        engine.express_at(engine.now, order.append, "chained")

    engine.schedule(1000, first)
    engine.schedule(1000, order.append, "second")
    engine.run()
    assert order == ["first", "second", "chained"]
    assert engine.now == 1000


def test_express_ahead_of_wheel_block_dispatches_off_heap():
    # Entry in a block strictly before any wheel event: direct fire, then the
    # wheel event runs normally.
    engine = Engine()
    order = []
    engine.schedule(10_000, order.append, "wheel")
    engine.express_at(1_000, order.append, "express")
    before = engine.events_fired
    engine.run()
    assert order == ["express", "wheel"]
    assert engine.express_fired == 1
    assert engine.events_fired == before + 1  # only the wheel event counted


def test_run_until_does_not_fire_future_express_entries():
    engine = Engine()
    fired = []
    engine.express_at(10, fired.append, 1)
    engine.express_at(1000, fired.append, 2)
    engine.run(until=100)
    assert fired == [1]
    assert engine.now == 100
    engine.run(until=2000)
    assert fired == [1, 2]
