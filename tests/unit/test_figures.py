"""Unit tests for the figure-generator plumbing (structure, not sweeps)."""

from repro.core.report import Table
from repro.core.taxonomy import Category
from repro.figures import ALL_FIGURES, fig11, fig3, fig4, tables


def test_registry_covers_every_evaluation_figure():
    names = set(ALL_FIGURES)
    assert {f"fig{i}" for i in range(3, 14)} <= names
    assert "tables" in names


def test_table1_structure():
    table = tables.table1()
    assert isinstance(table, Table)
    assert len(table.rows) == len(Category)
    assert table.column("component")[0] == "data copy"


def test_table2_lists_all_mechanisms():
    table = tables.table2()
    assert table.column("mechanism") == ["RPS", "RFS", "RSS", "ARFS"]


def test_fig3f_small_sweep_structure():
    table = fig3.fig3f(buffers_kb=(400,))
    assert table.columns == [
        "rx_buffer_kb", "avg_latency_us", "p99_latency_us", "thpt_gbps"
    ]
    assert len(table.rows) == 1
    assert table.rows[0][0] == 400
    assert table.rows[0][3] > 0


def test_fig4_two_placements():
    table = fig4.fig4()
    assert [row[0] for row in table.rows] == ["NIC-local NUMA", "NIC-remote NUMA"]


def test_fig11_isolation_table_shape():
    table = fig11.isolation_comparison(num_short=1)
    assert len(table.rows) == 2
    assert table.columns == ["workload", "long_gbps", "short_gbps"]


def test_every_figure_module_has_a_generate_all_or_panel():
    for name, module in ALL_FIGURES.items():
        if name == "tables":
            continue
        has_panels = any(attr.startswith("fig") for attr in dir(module))
        assert has_panels, f"{name} exposes no panels"
