"""Unit tests for the GRO engine."""

from repro.costs.calibration import default_cost_model
from repro.kernel.gro import GRO_MAX_HELD_FLOWS, GroEngine
from repro.kernel.skb import Skb


def frame_skb(flow=1, seq=0, size=9000, region=None, node=0):
    return Skb(
        flow_id=flow,
        seq=seq,
        payload_bytes=size,
        nframes=1,
        pages=3,
        page_node=node,
        regions=[(region if region is not None else seq, size)],
    )


def make_gro(enabled=True, **kwargs):
    return GroEngine(default_cost_model(), enabled, **kwargs)


def test_in_sequence_frames_merge():
    gro = make_gro()
    gro.receive(frame_skb(seq=0))
    _, flushed = gro.receive(frame_skb(seq=9000))
    assert list(flushed) == []
    _, flushed = gro.flush_all()
    assert len(flushed) == 1
    assert flushed[0].payload_bytes == 18000
    assert flushed[0].nframes == 2
    assert len(flushed[0].regions) == 2


def test_out_of_sequence_flushes_held():
    gro = make_gro()
    gro.receive(frame_skb(seq=0))
    _, flushed = gro.receive(frame_skb(seq=50_000))  # gap
    assert len(flushed) == 1
    assert flushed[0].seq == 0


def test_size_limit_respected():
    gro = make_gro(max_merged_bytes=64 * 1024)
    flushed_total = []
    for i in range(10):
        _, flushed = gro.receive(frame_skb(seq=i * 9000))
        flushed_total.extend(flushed)
    _, flushed = gro.flush_all()
    flushed_total.extend(flushed)
    assert all(skb.payload_bytes <= 64 * 1024 for skb in flushed_total)
    assert sum(skb.payload_bytes for skb in flushed_total) == 90_000


def test_different_flows_held_separately():
    gro = make_gro()
    gro.receive(frame_skb(flow=1, seq=0))
    gro.receive(frame_skb(flow=2, seq=0))
    gro.receive(frame_skb(flow=1, seq=9000))
    _, flushed = gro.flush_all()
    sizes = sorted(skb.payload_bytes for skb in flushed)
    assert sizes == [9000, 18000]


def test_held_flow_limit_evicts_oldest():
    gro = make_gro(max_held_flows=2)
    gro.receive(frame_skb(flow=1, seq=0))
    gro.receive(frame_skb(flow=2, seq=0))
    _, flushed = gro.receive(frame_skb(flow=3, seq=0))
    assert len(flushed) == 1
    assert flushed[0].flow_id == 1  # oldest evicted


def test_default_held_limit_matches_kernel():
    assert GRO_MAX_HELD_FLOWS == 64


def test_disabled_gro_passes_through():
    gro = make_gro(enabled=False)
    items, flushed = gro.receive(frame_skb(seq=0))
    assert list(items) == []
    assert len(flushed) == 1 and flushed[0].nframes == 1


def test_cross_numa_frames_not_merged():
    gro = make_gro()
    gro.receive(frame_skb(seq=0, node=0))
    _, flushed = gro.receive(frame_skb(seq=9000, node=1))
    assert len(flushed) == 1  # node change forces a flush


def test_ecn_mark_propagates_through_merge():
    gro = make_gro()
    gro.receive(frame_skb(seq=0))
    marked = frame_skb(seq=9000)
    marked.ecn = True
    gro.receive(marked)
    _, flushed = gro.flush_all()
    assert flushed[0].ecn


def test_byte_conservation():
    gro = make_gro()
    total_in = 0
    out = []
    for i in range(25):
        skb = frame_skb(seq=i * 9000, size=9000)
        total_in += skb.payload_bytes
        _, flushed = gro.receive(skb)
        out.extend(flushed)
    _, flushed = gro.flush_all()
    out.extend(flushed)
    assert sum(skb.payload_bytes for skb in out) == total_in


def test_statistics():
    gro = make_gro()
    for i in range(4):
        gro.receive(frame_skb(seq=i * 9000))
    gro.flush_all()
    assert gro.frames_in == 4
    assert gro.merges == 3
    assert gro.skbs_out == 1
