"""Unit tests for transmit-side segmentation (GSO/TSO)."""

from repro.costs.calibration import default_cost_model
from repro.kernel.gso import frames_for, segmentation_charges


def test_frames_for_exact_multiple():
    assert frames_for(18000, 9000) == 2


def test_frames_for_rounds_up():
    assert frames_for(9001, 9000) == 2


def test_frames_for_empty():
    assert frames_for(0, 9000) == 0


def test_tso_offload_is_free():
    items, nframes = segmentation_charges(64 * 1024, 8960, tso=True,
                                          costs=default_cost_model())
    assert items == []
    assert nframes == 8


def test_software_gso_charges_per_segment():
    costs = default_cost_model()
    items, nframes = segmentation_charges(64 * 1024, 8960, tso=False, costs=costs)
    assert nframes == 8
    ops = {op for op, _ in items}
    assert ops == {"gso_segment", "skb_segment", "mlx5e_xmit"}
    gso_cycles = dict(items)["gso_segment"]
    assert gso_cycles == nframes * costs.gso_segment_per_frame


def test_single_frame_needs_no_segmentation():
    items, nframes = segmentation_charges(1000, 9000, tso=False,
                                          costs=default_cost_model())
    assert items == [] and nframes == 1
