"""Unit tests for per-host wiring (steering policies, utilization math)."""

import pytest

from repro.config import ExperimentConfig, OptimizationConfig
from repro.core.metrics import MetricsHub
from repro.core.profiler import CpuProfiler
from repro.costs.calibration import default_cost_model
from repro.kernel.host import Host
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams


def make_host(config=None):
    config = config or ExperimentConfig()
    engine = Engine()
    profiler = CpuProfiler()
    return Host(engine, "receiver", config, default_cost_model(), profiler,
                MetricsHub(), RngStreams(1)), profiler


def test_host_has_one_rx_queue_per_core():
    host, _ = make_host()
    assert len(host.nic.queues) == 24
    assert all(q.irq_core is host.core(i) for i, q in enumerate(host.nic.queues))


def test_arfs_steers_to_app_core():
    host, _ = make_host(ExperimentConfig(opts=OptimizationConfig.all()))
    endpoint = host.add_endpoint(1, host.core(3))
    assert endpoint.softirq_core is host.core(3)
    assert host.steering.queue_for(1).irq_core is host.core(3)


def test_worst_case_mapping_pins_remote_node():
    host, _ = make_host(ExperimentConfig(opts=OptimizationConfig.none()))
    endpoint = host.add_endpoint(1, host.core(0))
    assert endpoint.softirq_core.numa_node != host.core(0).numa_node


def test_arfs_table_overflow_falls_back_to_rss():
    config = ExperimentConfig()
    config.nic.arfs_table_capacity = 1
    host, _ = make_host(config)
    first = host.add_endpoint(1, host.core(0))
    second = host.add_endpoint(2, host.core(1))
    assert first.softirq_core is host.core(0)
    # second flow could hash anywhere; it must at least be consistent
    assert host.steering.queue_for(2).irq_core is second.softirq_core
    assert host.steering.arfs_install_failures == 1


def test_duplicate_flow_id_rejected():
    host, _ = make_host()
    host.add_endpoint(1, host.core(0))
    with pytest.raises(ValueError):
        host.add_endpoint(1, host.core(1))


def test_utilization_from_profiler_cycles():
    host, profiler = make_host()
    core = host.core(0)
    profiler.charge(core, "copy_to_user", 3.4e9 / 100)  # 1% of a second
    util = host.utilization_cores(elapsed_ns=10_000_000)  # over 10ms
    assert util == pytest.approx(1.0)


def test_utilization_zero_elapsed():
    host, _ = make_host()
    assert host.utilization_cores(0) == 0.0


def test_dca_consume_when_disabled_misses():
    config = ExperimentConfig()
    config.host.dca_enabled = False
    host, _ = make_host(config)
    assert host.dca_consume(1, 100) == (0, 100)
