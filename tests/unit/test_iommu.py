"""Unit tests for the IOMMU model."""

from repro.costs.calibration import default_cost_model
from repro.hardware.iommu import IommuModel


def test_disabled_iommu_charges_nothing():
    iommu = IommuModel(False, default_cost_model())
    assert list(iommu.map_charges(10)) == []
    assert list(iommu.unmap_charges(10)) == []
    assert iommu.pages_mapped == 0


def test_enabled_iommu_charges_per_page():
    costs = default_cost_model()
    iommu = IommuModel(True, costs)
    (op, cycles), = iommu.map_charges(4)
    assert op == "iommu_map_page"
    assert cycles == 4 * costs.iommu_map_per_page


def test_unmap_charges_and_counts():
    costs = default_cost_model()
    iommu = IommuModel(True, costs)
    (op, cycles), = iommu.unmap_charges(3)
    assert op == "iommu_unmap_page"
    assert cycles == 3 * costs.iommu_unmap_per_page
    assert iommu.pages_unmapped == 3


def test_zero_pages_is_noop():
    iommu = IommuModel(True, default_cost_model())
    assert list(iommu.map_charges(0)) == []
    assert list(iommu.unmap_charges(0)) == []
