"""Unit tests for the link / switch model."""

import random

from repro.hardware.link import Frame, Link
from repro.sim.engine import Engine


def data_frame(flow=1, seq=0, payload=1000, wire=1058):
    return Frame(flow, Frame.KIND_DATA, seq, payload, wire)


def make_link(engine, **kwargs):
    defaults = dict(
        bandwidth_bps=100e9,
        propagation_ns=1000,
        rng=random.Random(1),
    )
    defaults.update(kwargs)
    return Link(engine, "test", **defaults)


def test_delivery_after_serialization_and_propagation():
    engine = Engine()
    link = make_link(engine)
    arrivals = []
    link.transmit([data_frame(wire=12500)], lambda frames: arrivals.append(engine.now))
    engine.run()
    # 12500B at 100Gbps = 1000ns serialization + 1000ns propagation
    assert arrivals == [2000]


def test_batch_delivered_in_one_event_in_order():
    engine = Engine()
    link = make_link(engine)
    received = []
    frames = [data_frame(seq=i) for i in range(5)]
    link.transmit(frames, received.extend)
    engine.run()
    assert [f.seq for f in received] == [0, 1, 2, 3, 4]


def test_backlog_reflects_queued_bytes():
    engine = Engine()
    link = make_link(engine)
    link.transmit([data_frame(wire=125_000)], lambda frames: None)
    assert link.backlog_bytes() > 0


def test_serialization_is_cumulative_across_transmits():
    engine = Engine()
    link = make_link(engine)
    arrivals = []
    link.transmit([data_frame(wire=12500)], lambda f: arrivals.append(engine.now))
    link.transmit([data_frame(wire=12500)], lambda f: arrivals.append(engine.now))
    engine.run()
    assert arrivals == [2000, 3000]  # second waits behind the first


def test_loss_requires_switch():
    engine = Engine()
    link = make_link(engine, loss_rate=1.0, has_switch=False)
    received = []
    link.transmit([data_frame()], received.extend)
    engine.run()
    assert len(received) == 1  # no switch => no drops


def test_switch_drops_at_rate_one():
    engine = Engine()
    link = make_link(engine, loss_rate=1.0, has_switch=True)
    received = []
    link.transmit([data_frame() for _ in range(10)], received.extend)
    engine.run()
    assert received == []
    assert link.frames_dropped == 10


def test_switch_drops_statistically():
    engine = Engine()
    link = make_link(engine, loss_rate=0.5, has_switch=True)
    received = []
    link.transmit([data_frame(seq=i) for i in range(2000)], received.extend)
    engine.run()
    assert 700 <= len(received) <= 1300


def test_ecn_marking_when_backlogged():
    engine = Engine()
    link = make_link(engine, has_switch=True, ecn_threshold_bytes=10_000)
    received = []
    frames = [data_frame(seq=i, wire=9000) for i in range(50)]
    link.transmit(frames, received.extend)
    engine.run()
    assert any(f.ecn_marked for f in received)
    assert not received[0].ecn_marked  # first frame saw an empty queue


def test_counters():
    engine = Engine()
    link = make_link(engine)
    link.transmit([data_frame(wire=1000), data_frame(wire=2000)], lambda f: None)
    engine.run()
    assert link.frames_sent == 2
    assert link.bytes_sent == 3000
