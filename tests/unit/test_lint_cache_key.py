"""Cache-key checker: ExperimentConfig fields vs CACHE_KEY_EXCLUDED sync."""

from repro.analysis.checkers import cache_key
from repro.analysis.project import Project

CLEAN_CONFIG = """\
from dataclasses import dataclass, field, fields

@dataclass
class ExperimentConfig:
    seed: int = 0
    trace: bool = False
    frame_trains: bool = field(default=True, metadata={"cache_key": False})

CACHE_KEY_EXCLUDED = frozenset({"frame_trains"})

def _canonicalize(value):
    return {
        f.name: getattr(value, f.name)
        for f in fields(value)
        if f.metadata.get("cache_key", True) and f.name not in CACHE_KEY_EXCLUDED
    }
"""


def check_config(source):
    return cache_key.check(Project.from_sources({"config.py": source}))


def test_clean_config_has_no_findings():
    assert check_config(CLEAN_CONFIG) == []


def test_marked_field_missing_from_declared_set():
    # The historical bug shape: field carries metadata={"cache_key": False}
    # but CACHE_KEY_EXCLUDED forgot it (or it was deleted from the set).
    source = CLEAN_CONFIG.replace(
        'CACHE_KEY_EXCLUDED = frozenset({"frame_trains"})',
        "CACHE_KEY_EXCLUDED = frozenset()",
    ).replace("frozenset()", 'frozenset(())')
    findings = check_config(source)
    assert [f.rule for f in findings] == ["key-marked-not-declared"]
    assert "frame_trains" in findings[0].message
    # Anchored at the field definition line.
    assert findings[0].line == 7


def test_declared_field_missing_metadata_marker():
    source = CLEAN_CONFIG.replace(
        'frame_trains: bool = field(default=True, metadata={"cache_key": False})',
        "frame_trains: bool = True",
    )
    findings = check_config(source)
    assert [f.rule for f in findings] == ["key-declared-not-marked"]
    assert "frame_trains" in findings[0].message


def test_unknown_field_in_declared_set():
    source = CLEAN_CONFIG.replace(
        'frozenset({"frame_trains"})',
        'frozenset({"frame_trains", "not_a_field"})',
    )
    findings = check_config(source)
    assert [f.rule for f in findings] == ["key-unknown-field"]
    assert "not_a_field" in findings[0].message


def test_missing_declaration_entirely():
    source = CLEAN_CONFIG.replace(
        'CACHE_KEY_EXCLUDED = frozenset({"frame_trains"})\n', ""
    )
    findings = check_config(source)
    rules = {f.rule for f in findings}
    assert "key-not-enforced" in rules
    # The metadata-marked field is now declared nowhere.
    assert "key-marked-not-declared" in rules


def test_non_literal_declaration_flagged():
    source = CLEAN_CONFIG.replace(
        'CACHE_KEY_EXCLUDED = frozenset({"frame_trains"})',
        "CACHE_KEY_EXCLUDED = frozenset(_computed())",
    )
    findings = check_config(source)
    assert "key-not-enforced" in {f.rule for f in findings}


def test_canonicalize_not_consulting_the_set():
    source = CLEAN_CONFIG.replace(
        'f.metadata.get("cache_key", True) and f.name not in CACHE_KEY_EXCLUDED',
        'f.metadata.get("cache_key", True)',
    )
    findings = check_config(source)
    assert [f.rule for f in findings] == ["key-not-enforced"]
    assert findings[0].symbol == "_canonicalize"


def test_fixture_without_config_is_out_of_scope():
    project = Project.from_sources({"other.py": "x = 1\n"})
    assert cache_key.check(project) == []


def test_real_tree_is_clean():
    assert cache_key.check(Project.from_dir()) == []
