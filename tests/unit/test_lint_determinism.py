"""Determinism checker: seeded fixture violations with exact locations."""

from repro.analysis.checkers import determinism
from repro.analysis.project import Project


def findings_for(sources):
    return determinism.check(Project.from_sources(sources))


def rules_at(findings, path_suffix):
    return [(f.rule, f.line) for f in findings if f.path.endswith(path_suffix)]


class TestWallclock:
    def test_time_calls_flagged_with_line(self):
        findings = findings_for(
            {
                "sim/clock.py": (
                    "import time\n"
                    "from time import perf_counter\n"
                    "def f():\n"
                    "    a = time.time()\n"
                    "    b = perf_counter()\n"
                    "    return a + b\n"
                )
            }
        )
        assert rules_at(findings, "sim/clock.py") == [
            ("det-wallclock", 4),
            ("det-wallclock", 5),
        ]

    def test_datetime_now_flagged(self):
        findings = findings_for(
            {"x.py": "import datetime\nstamp = datetime.datetime.now()\n"}
        )
        assert [f.rule for f in findings] == ["det-wallclock"]

    def test_bench_is_allowlisted(self):
        findings = findings_for(
            {"bench.py": "import time\ndef f():\n    return time.perf_counter()\n"}
        )
        assert findings == []

    def test_engine_now_attribute_not_confused(self):
        # engine.now is virtual time, not a wall-clock call.
        findings = findings_for(
            {"sim/x.py": "def f(engine):\n    return engine.now\n"}
        )
        assert findings == []


class TestEntropyAndRandom:
    def test_urandom_uuid_secrets(self):
        findings = findings_for(
            {
                "x.py": (
                    "import os, uuid, secrets\n"
                    "a = os.urandom(8)\n"
                    "b = uuid.uuid4()\n"
                    "c = secrets.token_bytes(8)\n"
                )
            }
        )
        assert [f.rule for f in findings] == ["det-urandom"] * 3

    def test_global_random_module(self):
        findings = findings_for(
            {
                "x.py": (
                    "import random\n"
                    "from random import randint\n"
                    "a = random.random()\n"
                    "b = randint(0, 9)\n"
                )
            }
        )
        assert [(f.rule, f.line) for f in findings] == [
            ("det-global-random", 3),
            ("det-global-random", 4),
        ]

    def test_seeded_random_instance_ok_unseeded_flagged(self):
        findings = findings_for(
            {
                "x.py": (
                    "import random\n"
                    "good = random.Random(42)\n"
                    "bad = random.Random()\n"
                )
            }
        )
        assert [(f.rule, f.line) for f in findings] == [("det-unseeded-rng", 3)]

    def test_numpy_global_rng_and_default_rng(self):
        findings = findings_for(
            {
                "x.py": (
                    "import numpy as np\n"
                    "a = np.random.rand(3)\n"
                    "b = np.random.default_rng()\n"
                    "c = np.random.default_rng(7)\n"
                )
            }
        )
        assert [(f.rule, f.line) for f in findings] == [
            ("det-unseeded-rng", 2),
            ("det-unseeded-rng", 3),
        ]


class TestIdOrdering:
    def test_id_as_sort_key(self):
        findings = findings_for({"x.py": "xs = sorted(items, key=id)\n"})
        assert [f.rule for f in findings] == ["det-id-order"]

    def test_id_in_lambda_key(self):
        findings = findings_for(
            {"x.py": "xs = sorted(items, key=lambda o: (id(o), o))\n"}
        )
        assert [f.rule for f in findings] == ["det-id-order"]

    def test_id_in_ordering_comparison(self):
        findings = findings_for({"x.py": "flag = id(a) < id(b)\n"})
        assert [f.rule for f in findings] == ["det-id-order"]

    def test_id_equality_is_fine(self):
        findings = findings_for({"x.py": "flag = id(a) == id(b)\n"})
        assert findings == []


class TestSetIteration:
    def test_set_iterated_on_sim_path(self):
        findings = findings_for(
            {
                "kernel/x.py": (
                    "def f():\n"
                    "    pending = {1, 2, 3}\n"
                    "    for item in pending:\n"
                    "        use(item)\n"
                )
            }
        )
        assert [(f.rule, f.line) for f in findings] == [("det-set-iter", 3)]

    def test_sorted_set_is_exempt(self):
        findings = findings_for(
            {
                "kernel/x.py": (
                    "def f():\n"
                    "    pending = {1, 2, 3}\n"
                    "    for item in sorted(pending):\n"
                    "        use(item)\n"
                )
            }
        )
        assert findings == []

    def test_self_attribute_set(self):
        findings = findings_for(
            {
                "hardware/x.py": (
                    "class Nic:\n"
                    "    def __init__(self):\n"
                    "        self.active = set()\n"
                    "    def drain(self):\n"
                    "        return [q for q in self.active]\n"
                )
            }
        )
        assert [(f.rule, f.line) for f in findings] == [("det-set-iter", 5)]

    def test_list_materialization_of_set(self):
        findings = findings_for(
            {
                "sim/x.py": (
                    "def f():\n"
                    "    live = frozenset((1, 2))\n"
                    "    return list(live)\n"
                )
            }
        )
        assert [(f.rule, f.line) for f in findings] == [("det-set-iter", 3)]

    def test_non_sim_path_sets_are_fine(self):
        findings = findings_for(
            {
                "figures/x.py": (
                    "def f():\n"
                    "    pending = {1, 2}\n"
                    "    for item in pending:\n"
                    "        use(item)\n"
                )
            }
        )
        assert findings == []

    def test_dict_iteration_is_fine(self):
        findings = findings_for(
            {
                "sim/x.py": (
                    "def f():\n"
                    "    table = {1: 'a'}\n"
                    "    for key in table:\n"
                    "        use(key)\n"
                )
            }
        )
        assert findings == []


class TestFilesystemOrder:
    def test_unsorted_glob_flagged(self):
        findings = findings_for(
            {"x.py": "def f(d):\n    return [p for p in d.glob('*.json')]\n"}
        )
        assert [f.rule for f in findings] == ["det-fs-order"]

    def test_sorted_glob_exempt(self):
        findings = findings_for(
            {"x.py": "def f(d):\n    return sorted(d.glob('*.json'))\n"}
        )
        assert findings == []

    def test_os_listdir(self):
        findings = findings_for(
            {"x.py": "import os\ndef f(d):\n    return os.listdir(d)\n"}
        )
        assert [f.rule for f in findings] == ["det-fs-order"]


class TestRealTreeExpectations:
    def test_rationales_cover_every_rule(self):
        emitted = set()
        for sources in (
            {"x.py": "import time\nt = time.time()\n"},
            {"x.py": "import os\nb = os.urandom(4)\n"},
        ):
            emitted |= {f.rule for f in findings_for(sources)}
        for rule in emitted:
            assert determinism.RATIONALES[rule]
