"""Express-purity checker: call-graph walk from lane entry points."""

from repro.analysis.checkers import express
from repro.analysis.project import Project


def findings_for(sources):
    return express.check(Project.from_sources(sources))


CALLBACK_SCHEDULES = """\
class Core:
    def kick(self):
        self.engine.express_at(10, self._finish, None)

    def _finish(self, arg):
        self._next()

    def _next(self):
        self.engine.schedule_at(20, self._finish, None)
"""


def test_schedule_reachable_from_callback():
    findings = findings_for({"hardware/cpu.py": CALLBACK_SCHEDULES})
    assert [(f.rule, f.symbol, f.line) for f in findings] == [
        ("express-wheel-schedule", "Core._next", 9)
    ]
    assert "callback Core._finish" in findings[0].message


def test_clean_callback_has_no_findings():
    source = CALLBACK_SCHEDULES.replace(
        "self.engine.schedule_at(20, self._finish, None)", "self.count += 1"
    )
    assert findings_for({"hardware/cpu.py": source}) == []


def test_event_allocation_under_callback():
    source = """\
from ..sim.engine import Event

class Timer:
    def arm(self):
        self.engine.express_at(5, self._fire, 0)

    def _fire(self, serial):
        self.pending = Event(1, 2, None, None)
"""
    findings = findings_for({"kernel/timer.py": source})
    assert [(f.rule, f.symbol) for f in findings] == [
        ("express-event-alloc", "Timer._fire")
    ]


def test_event_name_from_elsewhere_not_flagged():
    source = """\
from .records import Event

class Timer:
    def arm(self):
        self.engine.express_at(5, self._fire, 0)

    def _fire(self, serial):
        self.pending = Event(1, 2, None, None)
"""
    assert findings_for({"kernel/timer.py": source}) == []


def test_reserve_serial_marks_producer():
    source = """\
class Endpoint:
    def _arm(self):
        serial = self.engine.reserve_serial()
        self.engine.schedule(30, self._fire)
"""
    findings = findings_for({"kernel/endpoint.py": source})
    assert [(f.rule, f.symbol) for f in findings] == [
        ("express-wheel-schedule", "Endpoint._arm")
    ]
    assert "producer Endpoint._arm" in findings[0].message


def test_nested_closure_is_traversed():
    source = """\
class Endpoint:
    def kick(self):
        self.engine.express_at(10, self._fire, 0)

    def _fire(self, serial):
        def done():
            self.engine.schedule(5, self._fire)
        self.submit(done)
"""
    findings = findings_for({"kernel/endpoint.py": source})
    assert [(f.rule, f.symbol) for f in findings] == [
        ("express-wheel-schedule", "Endpoint._fire.done")
    ]


def test_module_function_edge():
    source = """\
def helper(engine):
    engine.schedule_at(9, helper, engine)

class Core:
    def kick(self):
        self.engine.express_at(10, self._finish, None)

    def _finish(self, arg):
        helper(self.engine)
"""
    findings = findings_for({"hardware/cpu.py": source})
    assert [(f.rule, f.symbol) for f in findings] == [
        ("express-wheel-schedule", "helper")
    ]


def test_unreachable_schedule_not_flagged():
    source = """\
class Core:
    def kick(self):
        self.engine.express_at(10, self._finish, None)

    def _finish(self, arg):
        self.done = True

    def unrelated(self):
        self.engine.schedule(99, self._finish)
"""
    assert findings_for({"hardware/cpu.py": source}) == []


def test_engine_module_is_exempt():
    source = """\
class Engine:
    def express_at(self, time, fn, arg):
        self._register(time, fn, arg)

    def _register(self, time, fn, arg):
        self.schedule(time, fn, arg)
"""
    assert findings_for({"sim/engine.py": source}) == []


def test_real_tree_findings_match_gated_fallbacks():
    findings = express.check(Project.from_dir())
    assert {(f.path, f.rule, f.symbol) for f in findings} == {
        (
            "src/repro/hardware/cpu.py",
            "express-wheel-schedule",
            "Core._start_next",
        ),
        (
            "src/repro/kernel/tcp/endpoint.py",
            "express-wheel-schedule",
            "TcpEndpoint._arm_rto",
        ),
    }
