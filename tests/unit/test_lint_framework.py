"""Framework-level tests for repro lint: findings, pragmas, baseline, driver."""

import json

import pytest

from repro.analysis.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.lint import LintReport, render_json, render_text, run_lint
from repro.analysis.project import Project, SourceFile, const_str_elements


def make_finding(**overrides):
    base = dict(
        path="src/repro/sim/engine.py",
        line=10,
        rule="det-wallclock",
        symbol="Engine.run",
        message="wall-clock call time.time()",
        rationale="why",
        checker="determinism",
    )
    base.update(overrides)
    return Finding(**base)


class TestFinding:
    def test_identity_excludes_line(self):
        a = make_finding(line=10)
        b = make_finding(line=99)
        assert a.identity() == b.identity()

    def test_render_includes_location_rule_symbol(self):
        text = make_finding().render()
        assert "src/repro/sim/engine.py:10" in text
        assert "[det-wallclock]" in text
        assert "Engine.run" in text

    def test_render_omits_module_symbol(self):
        text = make_finding(symbol="<module>").render()
        assert "<module>" not in text

    def test_ordering_is_stable(self):
        findings = [make_finding(line=5), make_finding(line=1)]
        assert sorted(findings)[0].line == 1


class TestPragmas:
    def test_same_line_pragma(self):
        f = SourceFile(
            "src/repro/x.py",
            "x.py",
            "import time\nnow = time.time()  # repro-lint: allow[det-wallclock] ok\n",
        )
        assert "det-wallclock" in f.allowed_rules(2)
        assert f.allowed_rules(1) == frozenset()

    def test_standalone_comment_covers_next_line(self):
        f = SourceFile(
            "src/repro/x.py",
            "x.py",
            "# repro-lint: allow[det-wallclock] justified\nnow = 1\n",
        )
        assert "det-wallclock" in f.allowed_rules(2)

    def test_multiple_rules_one_pragma(self):
        f = SourceFile(
            "src/repro/x.py",
            "x.py",
            "y = 0  # repro-lint: allow[det-wallclock, det-fs-order]\n",
        )
        assert f.allowed_rules(1) == {"det-wallclock", "det-fs-order"}

    def test_no_pragma_no_allowance(self):
        f = SourceFile("src/repro/x.py", "x.py", "x = 1\n")
        assert f.allowed_rules(1) == frozenset()


class TestProject:
    def test_from_sources_and_lookup(self):
        project = Project.from_sources({"sim/engine.py": "x = 1\n"})
        assert project.file("sim/engine.py") is not None
        assert project.file_by_path("src/repro/sim/engine.py") is not None
        assert project.file_by_path("elsewhere/sim/engine.py") is None

    def test_syntax_error_is_captured_not_raised(self):
        project = Project.from_sources({"bad.py": "def broken(:\n"})
        file = project.file("bad.py")
        assert file.tree is None
        assert file.syntax_error is not None

    def test_import_map_resolution(self):
        f = SourceFile(
            "src/repro/x.py",
            "x.py",
            "import numpy as np\nfrom time import perf_counter\n",
        )
        assert f.imports["np"] == "numpy"
        assert f.imports["perf_counter"] == "time.perf_counter"

    def test_const_str_elements_forms(self):
        import ast

        for source in (
            "frozenset({'a', 'b'})",
            "{'a', 'b'}",
            "('a', 'b')",
            "['a', 'b']",
        ):
            node = ast.parse(source, mode="eval").body
            values = {name for name, _ in const_str_elements(node)}
            assert values == {"a", "b"}, source
        non_literal = ast.parse("frozenset(x)", mode="eval").body
        assert const_str_elements(non_literal) is None


class TestBaseline:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []

    def test_roundtrip_preserves_reasons(self, tmp_path):
        path = tmp_path / "baseline.json"
        finding = make_finding()
        write_baseline([finding], path=path)
        entries = load_baseline(path)
        assert len(entries) == 1
        assert entries[0].reason == ""
        reasoned = BaselineEntry(
            rule=entries[0].rule,
            path=entries[0].path,
            symbol=entries[0].symbol,
            message=entries[0].message,
            reason="accepted because reasons",
        )
        write_baseline([finding], path=path, previous=[reasoned])
        assert load_baseline(path)[0].reason == "accepted because reasons"

    def test_apply_splits_new_suppressed_stale(self):
        covered = make_finding()
        fresh = make_finding(rule="det-urandom", message="other")
        entry = BaselineEntry(
            rule=covered.rule,
            path=covered.path,
            symbol=covered.symbol,
            message=covered.message,
        )
        stale = BaselineEntry(
            rule="gone", path="src/repro/x.py", symbol="f", message="m"
        )
        result = apply_baseline([covered, fresh], [entry, stale])
        assert result.suppressed == [covered]
        assert result.new == [fresh]
        assert result.stale == [stale]

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(path)


class TestDriver:
    def test_exit_codes(self):
        clean = LintReport()
        assert clean.exit_code == 0
        dirty = LintReport()
        dirty.baseline.new.append(make_finding())
        assert dirty.exit_code == 1
        broken = LintReport(syntax_errors=["src/repro/bad.py: boom"])
        assert broken.exit_code == 2

    def test_stale_baseline_fails_ratchet(self):
        project = Project.from_sources({"clean.py": "x = 1\n"})
        report = run_lint(
            project,
            baseline_entries=[
                BaselineEntry(
                    rule="gone", path="src/repro/x.py", symbol="f", message="m"
                )
            ],
        )
        assert report.exit_code == 1
        assert len(report.baseline.stale) == 1

    def test_pragma_suppression_applied_by_driver(self):
        project = Project.from_sources(
            {
                "sim/clock.py": (
                    "import time\n"
                    "def f():\n"
                    "    return time.time()  # repro-lint: allow[det-wallclock] tested\n"
                )
            }
        )
        report = run_lint(project, baseline_entries=[])
        assert report.baseline.new == []
        assert [f.rule for f in report.pragma_suppressed] == ["det-wallclock"]

    def test_render_text_and_json(self):
        project = Project.from_sources(
            {"sim/clock.py": "import time\ndef f():\n    return time.time()\n"}
        )
        report = run_lint(project, baseline_entries=[])
        text = render_text(report)
        assert "det-wallclock" in text
        assert "1 new" in text
        payload = json.loads(render_json(report))
        assert payload["exit_code"] == 1
        assert payload["new"][0]["rule"] == "det-wallclock"
