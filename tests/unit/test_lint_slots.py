"""Slots-discipline checker: fast-constructor completeness, stray writes."""

from repro.analysis.checkers import slots
from repro.analysis.project import Project


def findings_for(sources):
    return slots.check(Project.from_sources(sources))


FRAME_CLASS = """\
class Frame:
    __slots__ = ("flow_id", "seq", "payload")

    def __init__(self, flow_id, seq, payload):
        self.flow_id = flow_id
        self.seq = seq
        self.payload = payload
"""


def test_complete_fast_construction_is_clean():
    source = FRAME_CLASS + """\

def build():
    frame = Frame.__new__(Frame)
    frame.flow_id = 1
    frame.seq = 2
    frame.payload = 3
    return frame
"""
    assert findings_for({"kernel/frame.py": source}) == []


def test_incomplete_fast_construction_lists_missing_slots():
    source = FRAME_CLASS + """\

def build():
    frame = Frame.__new__(Frame)
    frame.flow_id = 1
    frame.seq = 2
    return frame
"""
    findings = findings_for({"kernel/frame.py": source})
    assert [(f.rule, f.symbol, f.line) for f in findings] == [
        ("slots-incomplete-new", "build", 10)
    ]
    assert "payload" in findings[0].message


def test_hoisted_alias_fast_construction():
    source = FRAME_CLASS + """\

def build_many(n):
    frame_new = Frame.__new__
    out = []
    for _ in range(n):
        frame = frame_new(Frame)
        frame.flow_id = 1
        frame.seq = 2
        out.append(frame)
    return out
"""
    findings = findings_for({"kernel/frame.py": source})
    assert [(f.rule, f.line) for f in findings] == [("slots-incomplete-new", 13)]
    assert "payload" in findings[0].message


def test_stray_write_through_constructed_local():
    source = FRAME_CLASS + """\

def build():
    frame = Frame(1, 2, 3)
    frame.paylaod = 9
    return frame
"""
    findings = findings_for({"kernel/frame.py": source})
    assert [(f.rule, f.line) for f in findings] == [("slots-stray-write", 11)]
    assert "paylaod" in findings[0].message


def test_stray_write_through_annotated_parameter():
    source = FRAME_CLASS + """\

def retag(frame: Frame):
    frame.tag = "x"
"""
    findings = findings_for({"kernel/frame.py": source})
    assert [f.rule for f in findings] == ["slots-stray-write"]


def test_stray_write_through_self_in_method():
    source = """\
class Frame:
    __slots__ = ("flow_id",)

    def __init__(self, flow_id):
        self.flow_id = flow_id

    def poke(self):
        self.scratch = 1
"""
    findings = findings_for({"kernel/frame.py": source})
    assert [(f.rule, f.symbol) for f in findings] == [
        ("slots-stray-write", "Frame.poke")
    ]


def test_init_may_write_any_declared_slot():
    assert findings_for({"kernel/frame.py": FRAME_CLASS}) == []


def test_valid_slot_write_in_method_is_fine():
    source = """\
class Frame:
    __slots__ = ("flow_id",)

    def __init__(self, flow_id):
        self.flow_id = flow_id

    def retag(self, flow_id):
        self.flow_id = flow_id
"""
    assert findings_for({"kernel/frame.py": source}) == []


def test_unslotted_classes_are_ignored():
    source = """\
class Bag:
    def __init__(self):
        self.anything = 1

def build():
    bag = Bag()
    bag.whatever = 2
    return bag
"""
    assert findings_for({"kernel/bag.py": source}) == []


def test_real_tree_is_clean_modulo_pragma():
    # The only accepted finding (napi.py's lazily-stamped trace_ns) is
    # suppressed by an inline pragma at the site, not by baseline.
    from repro.analysis.lint import run_lint

    report = run_lint(Project.from_dir(), baseline_entries=[])
    slot_rules = {"slots-incomplete-new", "slots-stray-write"}
    assert [f for f in report.baseline.new if f.rule in slot_rules] == []
    pragma_slots = [
        f for f in report.pragma_suppressed if f.rule in slot_rules
    ]
    assert [f.path for f in pragma_slots] == ["src/repro/kernel/napi.py"]
    assert "trace_ns" in pragma_slots[0].message
