"""Unit tests for the page allocator (pagesets over a global free list)."""

import pytest

from repro.costs.calibration import default_cost_model
from repro.kernel.mem import PageAllocator

CORE = ("receiver", 0)


def make_allocator(capacity=64, batch=16):
    return PageAllocator(default_cost_model(), capacity=capacity, batch=batch)


def ops_of(items):
    return [op for op, _ in items]


def test_alloc_from_full_pageset_is_cheap():
    allocator = make_allocator()
    items = allocator.alloc(CORE, 10)
    assert ops_of(items) == ["page_pool_alloc_pages"]
    assert allocator.pcp_allocs == 10
    assert allocator.global_allocs == 0


def test_alloc_beyond_pageset_goes_global():
    allocator = make_allocator(capacity=8)
    items = allocator.alloc(CORE, 20)
    assert "page_pool_alloc_pages" in ops_of(items)
    assert "__alloc_pages_nodemask" in ops_of(items)
    assert allocator.global_allocs == 12


def test_global_alloc_charges_batches():
    costs = default_cost_model()
    allocator = PageAllocator(costs, capacity=16, batch=16)
    allocator.alloc(CORE, 16)  # drain the pageset
    items = allocator.alloc(CORE, 32)  # exactly two refill batches
    (_, cycles), = items
    expected = 32 * costs.page_alloc_global_cycles + 2 * costs.page_alloc_global_batch_cycles
    assert cycles == pytest.approx(expected)


def test_free_local_vs_remote_cost():
    costs = default_cost_model()
    allocator = make_allocator()
    allocator.alloc(CORE, 10)
    (_, local_cycles), = allocator.free(CORE, core_node=0, npages=5, page_node=0)
    (_, remote_cycles), = allocator.free(CORE, core_node=0, npages=5, page_node=1)
    assert local_cycles == 5 * costs.page_free_local_cycles
    assert remote_cycles == 5 * costs.page_free_remote_cycles
    assert allocator.local_frees == 5
    assert allocator.remote_frees == 5


def test_pageset_overflow_flushes_to_global():
    allocator = make_allocator(capacity=8)
    items = allocator.free(CORE, core_node=0, npages=20, page_node=0)
    assert "free_pcppages_bulk" in ops_of(items)
    assert allocator.global_flushes == 20  # started full: everything overflows
    assert allocator.pageset_level(CORE) == 8


def test_recycling_keeps_level_balanced():
    allocator = make_allocator(capacity=64)
    allocator.alloc(CORE, 32)
    allocator.free(CORE, core_node=0, npages=32, page_node=0)
    assert allocator.pageset_level(CORE) == 64
    # steady state alloc/free cycles never touch the global list
    before = allocator.global_allocs
    for _ in range(10):
        allocator.alloc(CORE, 16)
        allocator.free(CORE, core_node=0, npages=16, page_node=0)
    assert allocator.global_allocs == before


def test_zero_pages_noop():
    allocator = make_allocator()
    assert allocator.alloc(CORE, 0) == []
    assert allocator.free(CORE, 0, 0, 0) == []


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        PageAllocator(default_cost_model(), capacity=0, batch=0)
