"""Unit tests for metric collection."""

import pytest

from repro.core.metrics import LatencyStats, MetricsHub


def test_latency_stats_basic():
    stats = LatencyStats.from_samples([100, 200, 300, 400])
    assert stats.count == 4
    assert stats.avg_ns == 250
    assert stats.max_ns == 400
    assert stats.p50_ns == 200


def test_latency_stats_p99():
    stats = LatencyStats.from_samples(list(range(1, 101)))
    assert stats.p99_ns == 99


def test_latency_stats_empty():
    stats = LatencyStats.from_samples([])
    assert stats.count == 0 and stats.avg_ns == 0.0


def test_delivered_accumulates_per_host_and_flow():
    hub = MetricsHub()
    hub.record_delivered("receiver", 1, 1000)
    hub.record_delivered("receiver", 1, 500)
    hub.record_delivered("sender", 2, 200)
    assert hub.side("receiver").delivered_bytes == 1500
    assert hub.flow_bytes("receiver", 1) == 1500
    assert hub.total_delivered_bytes() == 1700


def test_delivered_by_tag():
    hub = MetricsHub()
    hub.register_flow(1, "long")
    hub.register_flow(2, "short")
    hub.record_delivered("receiver", 1, 1000)
    hub.record_delivered("receiver", 2, 100)
    hub.record_delivered("sender", 2, 100)
    assert hub.delivered_by_tag() == {"long": 1000, "short": 200}


def test_cache_miss_rate():
    hub = MetricsHub()
    hub.record_receiver_copy("receiver", hit=300, miss=700)
    assert hub.side("receiver").cache_miss_rate() == pytest.approx(0.7)


def test_miss_rate_with_no_traffic_is_zero():
    assert MetricsHub().side("receiver").cache_miss_rate() == 0.0


def test_reset_clears_measurements_but_keeps_tags():
    hub = MetricsHub()
    hub.register_flow(1, "long")
    hub.record_delivered("receiver", 1, 1000)
    hub.reset()
    assert hub.total_delivered_bytes() == 0
    hub.record_delivered("receiver", 1, 10)
    assert hub.delivered_by_tag() == {"long": 10}


def test_rx_skb_histogram():
    hub = MetricsHub()
    hub.record_rx_skb("receiver", 9000)
    hub.record_rx_skb("receiver", 9000)
    hub.record_rx_skb("receiver", 64 * 1024)
    assert hub.side("receiver").rx_skb_sizes[9000] == 2
