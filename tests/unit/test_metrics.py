"""Unit tests for metric collection."""

import pytest

from repro.core.metrics import LatencyStats, MetricsHub


def test_latency_stats_basic():
    stats = LatencyStats.from_samples([100, 200, 300, 400])
    assert stats.count == 4
    assert stats.avg_ns == 250
    assert stats.max_ns == 400
    assert stats.p50_ns == 200


def test_latency_stats_p99():
    stats = LatencyStats.from_samples(list(range(1, 101)))
    assert stats.p99_ns == 99


def test_latency_stats_empty():
    stats = LatencyStats.from_samples([])
    assert stats.count == 0 and stats.avg_ns == 0.0


def test_delivered_accumulates_per_host_and_flow():
    hub = MetricsHub()
    hub.record_delivered("receiver", 1, 1000)
    hub.record_delivered("receiver", 1, 500)
    hub.record_delivered("sender", 2, 200)
    assert hub.side("receiver").delivered_bytes == 1500
    assert hub.flow_bytes("receiver", 1) == 1500
    assert hub.total_delivered_bytes() == 1700


def test_delivered_by_tag():
    hub = MetricsHub()
    hub.register_flow(1, "long")
    hub.register_flow(2, "short")
    hub.record_delivered("receiver", 1, 1000)
    hub.record_delivered("receiver", 2, 100)
    hub.record_delivered("sender", 2, 100)
    assert hub.delivered_by_tag() == {"long": 1000, "short": 200}


def test_delivered_by_tag_per_host_does_not_double_count():
    """Regression: RPC flows record deliveries on *both* hosts (requests on
    the server, responses on the client). Per-tag throughput must come from
    one side, or the tag total double-counts relative to per-host totals."""
    hub = MetricsHub()
    hub.register_flow(1, "short")
    hub.record_delivered("receiver", 1, 4096)  # request, recorded by server
    hub.record_delivered("sender", 1, 4096)    # response, recorded by client
    assert hub.delivered_by_tag("receiver") == {"short": 4096}
    assert hub.delivered_by_tag("sender") == {"short": 4096}
    assert sum(hub.delivered_by_tag("receiver").values()) == (
        hub.side("receiver").delivered_bytes
    )


def test_per_flow_delivered_matches_side_totals():
    hub = MetricsHub()
    hub.record_delivered("receiver", 1, 100)
    hub.record_delivered("receiver", 2, 50)
    hub.record_delivered("sender", 1, 7)
    assert hub.per_flow_delivered("receiver") == {1: 100, 2: 50}
    assert sum(hub.per_flow_delivered("receiver").values()) == 150
    assert hub.per_flow_delivered("sender") == {1: 7}


def test_cache_miss_rate():
    hub = MetricsHub()
    hub.record_receiver_copy("receiver", hit=300, miss=700)
    assert hub.side("receiver").cache_miss_rate() == pytest.approx(0.7)


def test_miss_rate_with_no_traffic_is_zero():
    assert MetricsHub().side("receiver").cache_miss_rate() == 0.0


def test_reset_clears_measurements_but_keeps_tags():
    hub = MetricsHub()
    hub.register_flow(1, "long")
    hub.record_delivered("receiver", 1, 1000)
    hub.reset()
    assert hub.total_delivered_bytes() == 0
    hub.record_delivered("receiver", 1, 10)
    assert hub.delivered_by_tag() == {"long": 10}


def test_rx_skb_histogram():
    hub = MetricsHub()
    hub.record_rx_skb("receiver", 9000)
    hub.record_rx_skb("receiver", 9000)
    hub.record_rx_skb("receiver", 64 * 1024)
    assert hub.side("receiver").rx_skb_sizes[9000] == 2


def test_latency_under_cap_is_stored_verbatim():
    hub = MetricsHub()
    for value in (5, 3, 9):
        hub.record_copy_latency("receiver", value)
    stats = hub.latency_stats("receiver")
    assert stats.count == 3
    assert stats.dropped_samples == 0
    assert stats.max_ns == 9


def test_latency_past_cap_uses_reservoir_not_truncation(monkeypatch):
    """Regression: samples past the cap used to be silently discarded,
    pinning p99/max to early steady state. The reservoir keeps late samples
    reachable and reports how many recordings exceeded the cap."""
    import repro.core.metrics as metrics_mod

    monkeypatch.setattr(metrics_mod, "MAX_LATENCY_SAMPLES", 10)
    hub = MetricsHub()
    for value in range(10):
        hub.record_copy_latency("receiver", value)
    # 90 late samples, all much larger than anything in the initial window.
    for value in range(1000, 1090):
        hub.record_copy_latency("receiver", value)
    stats = hub.latency_stats("receiver")
    assert stats.count == 100  # every observation counted...
    assert stats.retained == 10  # ...with storage staying at the cap
    assert stats.dropped_samples == 90
    assert stats.max_ns >= 1000  # late samples displaced early ones


def test_latency_reservoir_is_deterministic(monkeypatch):
    import repro.core.metrics as metrics_mod

    monkeypatch.setattr(metrics_mod, "MAX_LATENCY_SAMPLES", 8)

    def fill(hub):
        for value in range(200):
            hub.record_copy_latency("receiver", value)
        return hub.side("receiver").latency_samples

    assert fill(MetricsHub()) == fill(MetricsHub())

    # reset() reseeds, so post-warmup sampling repeats too
    hub = MetricsHub()
    first = list(fill(hub))
    hub.reset()
    assert fill(hub) == first


def test_reservoir_invariant_to_cross_host_interleaving(monkeypatch):
    """Regression: a hub-wide reservoir RNG made each host's retained sample
    set depend on how the *other* host's recordings interleaved with its own.
    With per-host RNG streams, any interleaving of the same two per-host
    sequences retains identical samples."""
    import repro.core.metrics as metrics_mod

    monkeypatch.setattr(metrics_mod, "MAX_LATENCY_SAMPLES", 8)
    receiver_seq = list(range(100))
    sender_seq = list(range(1000, 1100))

    def retained(interleave):
        hub = MetricsHub()
        for host, value in interleave:
            hub.record_copy_latency(host, value)
        return (
            list(hub.side("receiver").latency_samples),
            list(hub.side("sender").latency_samples),
        )

    sequential = retained(
        [("receiver", v) for v in receiver_seq]
        + [("sender", v) for v in sender_seq]
    )
    alternating = retained(
        [pair for r, s in zip(receiver_seq, sender_seq)
         for pair in (("receiver", r), ("sender", s))]
    )
    assert sequential == alternating


def test_latency_count_is_retained_plus_dropped(monkeypatch):
    import repro.core.metrics as metrics_mod

    monkeypatch.setattr(metrics_mod, "MAX_LATENCY_SAMPLES", 16)
    hub = MetricsHub()
    total = 0
    for value in range(50):
        hub.record_copy_latency("receiver", value)
        total += value
    stats = hub.latency_stats("receiver")
    assert stats.count == stats.retained + stats.dropped_samples == 50
    assert hub.side("receiver").latency_total_ns == total


def test_empty_samples_with_drops_is_rejected():
    with pytest.raises(ValueError):
        LatencyStats.from_samples([], dropped_samples=5)
