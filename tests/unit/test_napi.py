"""Unit tests for NAPI (IRQ coalescing, polling, budget, forwarding)."""

from repro.config import ExperimentConfig, OptimizationConfig, SteeringMode
from repro.constants import IRQ_COALESCE_NS, NAPI_BUDGET_FRAMES
from repro.core.experiment import Experiment
from repro.hardware.link import Frame
from repro.units import msec


def make_experiment(**kwargs):
    """Build an experiment but cancel its application threads, so injected
    frames are the only traffic and NAPI behaviour is observable in
    isolation."""
    experiment = Experiment(ExperimentConfig(duration_ns=msec(1), **kwargs))
    for event in list(experiment.engine._iter_queued()):
        if getattr(event.fn, "__name__", "") == "start":
            event.cancel()
    return experiment


def inject_frames(experiment, count, flow_id=1, size=8960):
    frames = [
        Frame(flow_id, Frame.KIND_DATA, i * size, size, size + 58)
        for i in range(count)
    ]
    experiment.receiver.nic.handle_rx(frames)


def napi_for_flow(experiment, flow_id=1):
    endpoint = experiment.receiver.endpoints[flow_id]
    queue = experiment.receiver.steering.queue_for(flow_id)
    return queue.napi, endpoint


def test_first_frame_after_idle_polls_immediately():
    experiment = make_experiment()
    napi, _ = napi_for_flow(experiment)
    inject_frames(experiment, 1)
    assert napi.scheduled
    experiment.engine.run(until=5_000)  # 5us: well inside the coalesce window
    assert napi.polls >= 1  # idle queue -> latency mode, no coalescing delay


def test_steady_traffic_coalesces_interrupts():
    experiment = make_experiment()
    napi, _ = napi_for_flow(experiment)
    inject_frames(experiment, 1)
    experiment.engine.run(until=10_000)
    polls_before = napi.polls
    inject_frames(experiment, 2, size=1000)  # small follow-up burst
    assert napi.scheduled
    # within the coalescing window nothing fires...
    experiment.engine.run(until=experiment.engine.now + IRQ_COALESCE_NS // 2)
    assert napi.polls == polls_before
    # ...but the timer eventually does
    experiment.engine.run(until=experiment.engine.now + 2 * IRQ_COALESCE_NS)
    assert napi.polls > polls_before


def test_poll_respects_budget():
    experiment = make_experiment()
    napi, _ = napi_for_flow(experiment)
    inject_frames(experiment, NAPI_BUDGET_FRAMES + 50)
    experiment.engine.run(until=msec(1))
    # all frames processed eventually, across more than one poll
    assert napi.polls >= 2
    assert len(napi.rxq.pending) == 0


def test_processing_advances_tcp_state():
    experiment = make_experiment()
    napi, endpoint = napi_for_flow(experiment)
    inject_frames(experiment, 4)
    experiment.engine.run(until=msec(1))
    assert endpoint.rcv_nxt == 4 * 8960


def test_descriptors_replenished_after_poll():
    experiment = make_experiment()
    napi, _ = napi_for_flow(experiment)
    queue = napi.rxq
    inject_frames(experiment, 10)
    assert queue.avail_descriptors == queue.capacity - 10
    experiment.engine.run(until=msec(1))
    assert queue.avail_descriptors == queue.capacity


def test_rfs_forwards_tcp_processing_to_app_core():
    experiment = make_experiment(
        opts=OptimizationConfig.tso_gro_jumbo(),
        worst_case_irq_mapping=False,
        steering=SteeringMode.RFS,
    )
    endpoint = experiment.receiver.endpoints[1]
    irq_core = experiment.receiver.steering.queue_for(1).irq_core
    # RFS: TCP runs on the app core even when IRQs land elsewhere
    assert endpoint.softirq_core is endpoint.app_core
    inject_frames(experiment, 4)
    experiment.engine.run(until=msec(1))
    assert endpoint.rcv_nxt == 4 * 8960
    if irq_core is not endpoint.app_core:
        # the app core burned TCP cycles
        assert experiment.profiler.core_cycles(endpoint.app_core.key) > 0
