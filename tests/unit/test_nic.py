"""Unit tests for the NIC model (Rx descriptors, DMA/DCA, LRO, Tx interleave)."""

import random

from repro.config import SteeringMode
from repro.core.profiler import CpuProfiler
from repro.costs.calibration import default_cost_model
from repro.hardware.cache import DcaRegion
from repro.hardware.cpu import Core
from repro.hardware.link import Frame, Link
from repro.hardware.nic import Nic
from repro.hardware.steering import SteeringEngine
from repro.sim.engine import Engine


def make_nic(engine=None, descriptors=8, mtu=9000, lro=False, dca=None, queues=1):
    engine = engine or Engine()
    steering = SteeringEngine(SteeringMode.RSS, random.Random(1), 64)
    nic = Nic(engine, "nic", 0, mtu, tso=True, lro=lro,
              rx_descriptors=descriptors, steering=steering, dca=dca)
    profiler, costs = CpuProfiler(), default_cost_model()
    for i in range(queues):
        nic.add_rx_queue(Core(engine, profiler, costs, "h", i, 0, 3.4e9))
    return engine, nic


def data_frame(flow=1, seq=0, payload=9000):
    return Frame(flow, Frame.KIND_DATA, seq, payload, payload + 58)


def test_frames_land_in_pending():
    _, nic = make_nic()
    nic.handle_rx([data_frame(seq=0), data_frame(seq=9000)])
    assert len(nic.queues[0].pending) == 2
    assert nic.rx_frames == 2


def test_descriptor_exhaustion_drops():
    _, nic = make_nic(descriptors=3)
    nic.handle_rx([data_frame(seq=i * 9000) for i in range(5)])
    assert len(nic.queues[0].pending) == 3
    assert nic.total_rx_drops() == 2


def test_replenish_restores_descriptors():
    _, nic = make_nic(descriptors=3)
    queue = nic.queues[0]
    nic.handle_rx([data_frame(seq=i * 9000) for i in range(3)])
    queue.replenish(3)
    assert queue.avail_descriptors == 3


def test_replenish_capped_at_capacity():
    _, nic = make_nic(descriptors=3)
    nic.queues[0].replenish(100)
    assert nic.queues[0].avail_descriptors == 3


def test_dma_writes_into_dca_for_local_queue():
    dca = DcaRegion(0, 1_000_000, rng=random.Random(1))
    _, nic = make_nic(dca=dca)
    nic.handle_rx([data_frame()])
    assert dca.occupancy == 9000


def test_ack_frames_do_not_touch_dca():
    dca = DcaRegion(0, 1_000_000, rng=random.Random(1))
    _, nic = make_nic(dca=dca)
    nic.handle_rx([Frame(1, Frame.KIND_ACK, 0, 0, 64)])
    assert dca.occupancy == 0


def test_lro_merges_consecutive_frames():
    _, nic = make_nic(lro=True)
    nic.handle_rx([data_frame(seq=0), data_frame(seq=9000), data_frame(seq=18000)])
    queue = nic.queues[0]
    assert len(queue.pending) == 1
    record = queue.pending[0]
    assert record.frame.payload_bytes == 27000
    assert record.nframes == 3


def test_lro_does_not_merge_across_flows():
    _, nic = make_nic(lro=True)
    nic.handle_rx([data_frame(flow=1, seq=0), data_frame(flow=2, seq=0)])
    assert len(nic.queues[0].pending) == 2


def test_dca_footprint_counts_only_active_queues():
    dca = DcaRegion(0, 1_000_000, rng=random.Random(1))
    _, nic = make_nic(dca=dca, queues=3, descriptors=100)
    assert dca._descriptor_footprint == 0  # nothing active yet
    nic.handle_rx([data_frame()])
    assert dca._descriptor_footprint == 100 * 9000  # one active queue


def test_tx_round_robin_interleaves_flows():
    engine = Engine()
    _, nic = make_nic(engine=engine)
    delivered = []
    link = Link(engine, "l", 100e9, 1000, random.Random(1))
    nic.attach_tx(link, delivered.extend)
    # two flows, each with a burst of 8 frames, queued back to back
    nic.transmit([data_frame(flow=1, seq=i * 9000) for i in range(8)])
    nic.transmit([data_frame(flow=2, seq=i * 9000) for i in range(8)])
    engine.run()
    flows = [f.flow_id for f in delivered]
    assert sorted(flows) == [1] * 8 + [2] * 8
    # flow 2 frames must appear before the last flow 1 frame (interleaved)
    assert flows.index(2) < len(flows) - 1 - flows[::-1].index(1)


def test_tx_preserves_per_flow_order():
    engine = Engine()
    _, nic = make_nic(engine=engine)
    delivered = []
    link = Link(engine, "l", 100e9, 1000, random.Random(1))
    nic.attach_tx(link, delivered.extend)
    nic.transmit([data_frame(flow=1, seq=i * 9000) for i in range(20)])
    engine.run()
    seqs = [f.seq for f in delivered if f.flow_id == 1]
    assert seqs == sorted(seqs)
