"""Unit tests for traffic-pattern builders."""

import pytest

from repro.config import ExperimentConfig, TrafficPattern, WorkloadConfig
from repro.workloads.flows import FlowSpec
from repro.workloads.patterns import build_flow_specs


def specs_for(pattern, flows=1, workload=None):
    config = ExperimentConfig(
        pattern=pattern, num_flows=flows,
        workload=workload or WorkloadConfig(),
    )
    return build_flow_specs(config)


def test_single():
    (spec,) = specs_for(TrafficPattern.SINGLE)
    assert (spec.sender_rank, spec.receiver_rank, spec.kind) == (0, 0, "stream")


def test_one_to_one_pairs_ranks():
    specs = specs_for(TrafficPattern.ONE_TO_ONE, 4)
    assert [(s.sender_rank, s.receiver_rank) for s in specs] == [
        (0, 0), (1, 1), (2, 2), (3, 3)
    ]


def test_incast_targets_rank_zero():
    specs = specs_for(TrafficPattern.INCAST, 4)
    assert all(s.receiver_rank == 0 for s in specs)
    assert sorted(s.sender_rank for s in specs) == [0, 1, 2, 3]


def test_outcast_sources_rank_zero():
    specs = specs_for(TrafficPattern.OUTCAST, 4)
    assert all(s.sender_rank == 0 for s in specs)
    assert sorted(s.receiver_rank for s in specs) == [0, 1, 2, 3]


def test_all_to_all_is_square():
    specs = specs_for(TrafficPattern.ALL_TO_ALL, 3)
    assert len(specs) == 9
    pairs = {(s.sender_rank, s.receiver_rank) for s in specs}
    assert len(pairs) == 9


def test_flow_ids_unique():
    specs = specs_for(TrafficPattern.ALL_TO_ALL, 4)
    ids = [s.flow_id for s in specs]
    assert len(set(ids)) == len(ids)


def test_rpc_incast_shares_server_thread():
    specs = specs_for(TrafficPattern.RPC_INCAST, 16)
    assert all(s.kind == "rpc" and s.shared_server_thread for s in specs)
    assert all(s.receiver_rank == 0 for s in specs)


def test_mixed_combines_long_and_short():
    specs = specs_for(
        TrafficPattern.MIXED, workload=WorkloadConfig(num_rpc_flows=3)
    )
    kinds = sorted(s.kind for s in specs)
    assert kinds == ["rpc", "rpc", "rpc", "stream"]
    assert all(s.sender_rank == 0 and s.receiver_rank == 0 for s in specs)


def test_mixed_without_long_flow():
    specs = specs_for(
        TrafficPattern.MIXED,
        workload=WorkloadConfig(num_rpc_flows=2, include_long_flow=False),
    )
    assert all(s.kind == "rpc" for s in specs)


def test_mixed_empty_rejected():
    with pytest.raises(ValueError):
        specs_for(
            TrafficPattern.MIXED,
            workload=WorkloadConfig(num_rpc_flows=0, include_long_flow=False),
        )


def test_invalid_flow_kind_rejected():
    with pytest.raises(ValueError):
        FlowSpec(1, "weird", 0, 0)
