"""Unit tests for the CPU profiler."""

import pytest

from repro.core.profiler import CpuProfiler
from repro.core.taxonomy import Category


class FakeCore:
    def __init__(self, host, core_id):
        self.key = (host, core_id)


def test_charge_accumulates():
    profiler = CpuProfiler()
    core = FakeCore("receiver", 0)
    profiler.charge(core, "copy_to_user", 100)
    profiler.charge(core, "copy_to_user", 50)
    assert profiler.core_cycles(core.key) == 150


def test_total_cycles_sums_cores_of_one_host():
    profiler = CpuProfiler()
    profiler.charge(FakeCore("receiver", 0), "copy_to_user", 100)
    profiler.charge(FakeCore("receiver", 1), "tcp_rcv_established", 40)
    profiler.charge(FakeCore("sender", 0), "copy_from_user", 999)
    assert profiler.total_cycles("receiver") == 140
    assert profiler.total_cycles("sender") == 999


def test_by_category_aggregates_operations():
    profiler = CpuProfiler()
    core = FakeCore("receiver", 0)
    profiler.charge(core, "copy_to_user", 60)
    profiler.charge(core, "skb_copy_datagram_iter", 40)
    profiler.charge(core, "tcp_ack", 100)
    by_cat = profiler.by_category("receiver")
    assert by_cat[Category.DATA_COPY] == 100
    assert by_cat[Category.TCPIP] == 100


def test_category_fractions_sum_to_one():
    profiler = CpuProfiler()
    core = FakeCore("receiver", 0)
    profiler.charge(core, "copy_to_user", 75)
    profiler.charge(core, "tcp_ack", 25)
    fractions = profiler.category_fractions("receiver")
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert fractions[Category.DATA_COPY] == pytest.approx(0.75)


def test_fractions_of_idle_host_are_zero():
    fractions = CpuProfiler().category_fractions("receiver")
    assert all(value == 0.0 for value in fractions.values())


def test_reset_clears_everything():
    profiler = CpuProfiler()
    profiler.charge(FakeCore("receiver", 0), "copy_to_user", 100)
    profiler.reset()
    assert profiler.total_cycles("receiver") == 0


def test_negative_charge_rejected():
    profiler = CpuProfiler()
    with pytest.raises(ValueError):
        profiler.charge(FakeCore("receiver", 0), "copy_to_user", -1)


def test_zero_charge_is_noop():
    profiler = CpuProfiler()
    profiler.charge(FakeCore("receiver", 0), "copy_to_user", 0)
    assert profiler.total_cycles("receiver") == 0


def test_busy_core_keys():
    profiler = CpuProfiler()
    profiler.charge(FakeCore("receiver", 3), "copy_to_user", 1)
    assert list(profiler.busy_core_keys("receiver")) == [("receiver", 3)]
