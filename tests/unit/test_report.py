"""Unit tests for table rendering."""

import pytest

from repro.core.report import Table, render_breakdown_table
from repro.core.results import BreakdownTable
from repro.core.taxonomy import Category


def test_add_row_and_render():
    table = Table("My Title", ["a", "b"])
    table.add_row("x", 1.5)
    text = table.render()
    assert "My Title" in text
    assert "1.50" in text


def test_wrong_arity_rejected():
    table = Table("t", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only-one")


def test_column_extraction():
    table = Table("t", ["name", "value"])
    table.add_row("x", 1)
    table.add_row("y", 2)
    assert table.column("value") == [1, 2]


def test_unknown_column_raises():
    table = Table("t", ["a"])
    with pytest.raises(ValueError):
        table.column("nope")


def test_render_alignment_consistent():
    table = Table("t", ["col"])
    table.add_row("short")
    table.add_row("a-much-longer-value")
    lines = table.render().splitlines()
    widths = {len(line) for line in lines[2:]}
    assert len(widths) == 1  # all rows padded to same width


def test_breakdown_table_has_category_columns():
    breakdown = BreakdownTable({cat: 1 / len(Category) for cat in Category})
    table = render_breakdown_table("b", [("cfg", breakdown)])
    assert "data copy" in table.columns
    assert len(table.rows) == 1
