"""Unit tests for content-addressed cache keying and the on-disk store."""

import json

from repro.config import (
    ExperimentConfig,
    HostConfig,
    LinkConfig,
    NicConfig,
    NumaPolicy,
    OptimizationConfig,
    SteeringMode,
    TcpConfig,
    TrafficPattern,
    WorkloadConfig,
)
from repro.core.cache import CACHE_SCHEMA_VERSION, ResultCache, config_cache_key

from .test_results import make_result


def key(config, schema_version=CACHE_SCHEMA_VERSION):
    return config_cache_key(config, schema_version)


def test_key_is_stable_and_shared_by_equal_configs():
    assert key(ExperimentConfig()) == key(ExperimentConfig())
    config = ExperimentConfig(seed=5)
    assert key(config.replace()) == key(config)


def test_every_top_level_field_change_changes_the_key():
    base = ExperimentConfig()
    variants = [
        base.replace(pattern=TrafficPattern.INCAST),
        base.replace(num_flows=2),
        base.replace(duration_ns=base.duration_ns + 1),
        base.replace(warmup_ns=base.warmup_ns + 1),
        base.replace(seed=2),
        base.replace(opts=OptimizationConfig.none()),
        base.replace(nic=NicConfig(rx_descriptors=128)),
        base.replace(host=HostConfig(dca_enabled=False)),
        base.replace(tcp=TcpConfig(autotune_rx_buffer=False)),
        base.replace(link=LinkConfig(loss_rate=0.001, has_switch=True)),
        base.replace(workload=WorkloadConfig(rpc_size_bytes=1024)),
        base.replace(numa_policy=NumaPolicy.NIC_REMOTE),
        base.replace(worst_case_irq_mapping=False),
        base.replace(steering=SteeringMode.RFS),
        base.replace(cost_overrides={"syscall_cycles": 600.0}),
    ]
    keys = [key(base)] + [key(v) for v in variants]
    assert len(set(keys)) == len(keys), "some field change did not change the key"


def test_nested_field_change_changes_the_key():
    base = ExperimentConfig()
    jumbo_off = base.replace(
        opts=OptimizationConfig(tso_gro=True, jumbo=False, arfs=True)
    )
    assert key(base) != key(jumbo_off)


def test_cost_override_value_change_changes_the_key():
    a = ExperimentConfig(cost_overrides={"syscall_cycles": 600.0})
    b = ExperimentConfig(cost_overrides={"syscall_cycles": 601.0})
    assert key(a) != key(b)


def test_schema_version_bump_changes_the_key():
    config = ExperimentConfig()
    assert key(config, 1) != key(config, 2)


def test_canonical_dict_is_json_stable():
    canonical = ExperimentConfig().to_canonical_dict()
    assert json.loads(json.dumps(canonical)) == canonical
    assert canonical["opts"]["jumbo"] is True
    assert canonical["pattern"] == "single"


def test_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    config = ExperimentConfig()
    result = make_result(total=12.5)
    cache.put(config, result)
    loaded = cache.get(config)
    assert loaded is not None
    assert loaded.total_throughput_gbps == 12.5
    assert cache.hits == 1 and cache.misses == 0


def test_get_miss_on_unknown_config(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(ExperimentConfig()) is None
    assert cache.misses == 1


def test_schema_bump_invalidates_old_entries(tmp_path):
    old = ResultCache(tmp_path, schema_version=1)
    old.put(ExperimentConfig(), make_result())
    new = ResultCache(tmp_path, schema_version=2)
    assert new.get(ExperimentConfig()) is None
    assert old.get(ExperimentConfig()) is not None  # old entries untouched


def test_corrupt_entry_is_treated_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    config = ExperimentConfig()
    path = cache.put(config, make_result())
    path.write_text("{not json")
    assert cache.get(config) is None


def test_clear_and_len(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(ExperimentConfig(), make_result())
    cache.put(ExperimentConfig(seed=2), make_result())
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0
    assert cache.get(ExperimentConfig()) is None


def _plant_tmp(cache, config, age_s=0.0):
    """Create an orphaned write-then-rename temp file next to config's entry."""
    import os
    import time

    path = cache.path_for(cache.key(config))
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp.99999")
    tmp.write_text("{half-written")
    if age_s:
        old = time.time() - age_s
        os.utime(tmp, (old, old))
    return tmp


def test_put_sweeps_stale_tmp_files_but_spares_fresh_ones(tmp_path):
    """Regression: temp files orphaned by a writer killed between write and
    rename accumulated forever. put() now reclaims stale ones in the shard it
    touches, without yanking a concurrent writer's fresh temp file."""
    from repro.core.cache import STALE_TMP_SECONDS

    cache = ResultCache(tmp_path)
    config = ExperimentConfig()
    stale = _plant_tmp(cache, config, age_s=STALE_TMP_SECONDS + 60)
    fresh = _plant_tmp(cache, config.replace(seed=7))  # same shard iff same prefix
    # Plant the fresh one in the same shard as `config` so one put() sees both.
    fresh = fresh.rename(stale.parent / "concurrent.tmp.12345")

    cache.put(config, make_result())
    assert not stale.exists(), "stale orphan should be swept by put()"
    assert fresh.exists(), "a fresh (possibly in-flight) temp must survive"
    assert cache.get(config) is not None  # the entry itself is intact


def test_clear_removes_tmp_files_of_any_age(tmp_path):
    cache = ResultCache(tmp_path)
    config = ExperimentConfig()
    cache.put(config, make_result())
    fresh = _plant_tmp(cache, config.replace(seed=3))  # age 0: still removed
    assert cache.clear() == 1
    assert not fresh.exists()
    assert len(cache) == 0
