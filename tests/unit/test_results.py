"""Unit tests for the result dataclasses."""

import pytest

from repro.core.metrics import LatencyStats
from repro.core.results import BreakdownTable, ExperimentResult
from repro.core.taxonomy import Category


def make_result(total=40.0, snd=0.5, rcv=1.0, skb_sizes=None):
    breakdown = BreakdownTable({Category.DATA_COPY: 0.5, Category.TCPIP: 0.5})
    return ExperimentResult(
        config_summary="test",
        duration_ns=10_000_000,
        total_throughput_gbps=total,
        sender_utilization_cores=snd,
        receiver_utilization_cores=rcv,
        sender_breakdown=breakdown,
        receiver_breakdown=breakdown,
        receiver_cache_miss_rate=0.5,
        sender_cache_miss_rate=0.1,
        copy_latency=LatencyStats(0, 0, 0, 0, 0),
        rx_skb_sizes=skb_sizes or {},
    )


def test_bottleneck_is_higher_utilization_side():
    assert make_result(snd=0.5, rcv=1.0).bottleneck_side == "receiver"
    assert make_result(snd=1.2, rcv=1.0).bottleneck_side == "sender"


def test_throughput_per_core_uses_bottleneck():
    result = make_result(total=40.0, snd=0.5, rcv=2.0)
    assert result.throughput_per_core_gbps == pytest.approx(20.0)


def test_per_side_throughput_metrics():
    result = make_result(total=90.0, snd=1.0, rcv=3.0)
    assert result.throughput_per_sender_core_gbps == pytest.approx(90.0)
    assert result.throughput_per_receiver_core_gbps == pytest.approx(30.0)


def test_zero_utilization_gives_zero_per_core():
    assert make_result(snd=0.0, rcv=0.0).throughput_per_core_gbps == 0.0


def test_breakdown_top():
    breakdown = BreakdownTable({Category.DATA_COPY: 0.6, Category.TCPIP: 0.4})
    category, fraction = breakdown.top()
    assert category is Category.DATA_COPY and fraction == 0.6


def test_breakdown_as_rows_covers_all_categories():
    breakdown = BreakdownTable({Category.DATA_COPY: 1.0})
    rows = breakdown.as_rows()
    assert len(rows) == len(Category)


def test_skb_size_cdf_monotone():
    result = make_result(skb_sizes={9000: 10, 64 * 1024: 10})
    cdf = result.skb_size_cdf()
    assert cdf[0] == (9000, 0.5)
    assert cdf[-1] == (64 * 1024, 1.0)


def test_mean_skb_bytes():
    result = make_result(skb_sizes={1000: 1, 3000: 1})
    assert result.mean_rx_skb_bytes() == 2000


def test_summary_mentions_bottleneck():
    assert "receiver" in make_result().summary()
