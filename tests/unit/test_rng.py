"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import RngStreams


def test_same_seed_same_stream_is_deterministic():
    a = RngStreams(seed=7).stream("loss")
    b = RngStreams(seed=7).stream("loss")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RngStreams(seed=1).stream("loss")
    b = RngStreams(seed=2).stream("loss")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_streams_are_independent_of_creation_order():
    one = RngStreams(seed=3)
    first = one.stream("alpha").random()
    two = RngStreams(seed=3)
    two.stream("beta")  # creating another stream first must not perturb alpha
    assert two.stream("alpha").random() == first


def test_stream_is_cached():
    streams = RngStreams(seed=1)
    assert streams.stream("x") is streams.stream("x")
