"""Unit tests for the parallel experiment runner.

The core invariant: a config + seed produces an identical ``result_to_dict``
payload whether simulated in-process, in a worker process, or read back from
the on-disk cache. Durations are kept short so the process-pool paths stay
fast on small CI machines.
"""

import json

import pytest

from repro.config import ExperimentConfig, OptimizationConfig, TrafficPattern
from repro.core.cache import ResultCache
from repro.core.experiment import Experiment
from repro.core.export import result_to_dict
from repro.core.runner import RunnerStats, resolve_jobs, run_many
from repro.core.sweep import run_labeled, run_sweep
from repro.units import msec


def small(**kwargs) -> ExperimentConfig:
    return ExperimentConfig(duration_ns=msec(2), warmup_ns=msec(1), **kwargs)


def ladder_configs():
    """The Fig-3a incremental-optimization ladder (shortened windows)."""
    return [
        (label, ExperimentConfig(opts=opts, duration_ns=msec(2), warmup_ns=msec(2)))
        for label, opts in OptimizationConfig.incremental_ladder()
    ]


def payloads(results):
    return [json.dumps(result_to_dict(r), sort_keys=True) for r in results]


def test_run_many_matches_direct_experiment():
    config = small()
    direct = result_to_dict(Experiment(config).run())
    via_runner = result_to_dict(run_many([config])[0])
    assert direct == via_runner


def test_run_many_preserves_input_order():
    configs = [small(num_flows=n, pattern=TrafficPattern.ONE_TO_ONE)
               for n in (1, 2, 3)]
    results = run_many(configs, jobs=2)
    for n, result in zip((1, 2, 3), results):
        assert len(result.per_flow_gbps) == n


def test_fig3a_ladder_parallel_matches_sequential():
    """Acceptance: jobs>1 is byte-identical to sequential for the ladder."""
    configs = [config for _, config in ladder_configs()]
    sequential = payloads(run_many(configs, jobs=1))
    parallel = payloads(run_many(configs, jobs=2))
    assert sequential == parallel


def test_fig3a_ladder_second_sweep_is_all_cache_hits(tmp_path):
    """Acceptance: re-running an unchanged sweep runs zero experiments."""
    configs = [config for _, config in ladder_configs()]
    cache = ResultCache(tmp_path)

    cold_stats = RunnerStats()
    cold = payloads(run_many(configs, jobs=2, cache=cache, stats=cold_stats))
    assert cold_stats.experiments_run == len(configs)
    assert cold_stats.cache_hits == 0

    warm_stats = RunnerStats()
    warm = payloads(run_many(configs, jobs=2, cache=cache, stats=warm_stats))
    assert warm_stats.experiments_run == 0
    assert warm_stats.cache_hits == len(configs)
    assert warm == cold


def test_worker_and_cache_results_identical_to_in_process(tmp_path):
    """The determinism invariant across all three execution paths."""
    config = small(seed=7)
    in_process = payloads(run_many([config]))
    worker = payloads(run_many([config, small(seed=8)], jobs=2))[:1]
    cache = ResultCache(tmp_path)
    run_many([config], cache=cache)          # populate
    from_cache = payloads(run_many([config], cache=cache))
    assert in_process == worker == from_cache


def test_same_seed_reruns_identically():
    config = small(seed=3)
    assert payloads(run_many([config])) == payloads(run_many([config]))


def test_stats_accumulate_across_calls(tmp_path):
    cache = ResultCache(tmp_path)
    stats = RunnerStats()
    run_many([small()], cache=cache, stats=stats)
    run_many([small()], cache=cache, stats=stats)
    assert stats.experiments_run == 1
    assert stats.cache_hits == 1
    assert stats.cache_misses == 1


def test_resolve_jobs():
    assert resolve_jobs(4) == 4
    assert resolve_jobs(None) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(0)


def test_run_many_empty_batch():
    assert run_many([]) == []


def test_run_sweep_parallel_matches_sequential():
    def make(n):
        return small(num_flows=n, pattern=TrafficPattern.ONE_TO_ONE)

    sequential = run_sweep((1, 2), make)
    parallel = run_sweep((1, 2), make, jobs=2)
    assert [v for v, _ in parallel] == [1, 2]
    assert payloads([r for _, r in sequential]) == payloads(
        [r for _, r in parallel]
    )


def test_run_labeled_returns_all_labels():
    out = run_labeled([("a", small(seed=1)), ("b", small(seed=2))], jobs=2)
    assert set(out) == {"a", "b"}
    assert out["a"].total_throughput_gbps > 0
