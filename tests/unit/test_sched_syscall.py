"""Unit tests for app threads and the syscall layer."""

import pytest

from repro.config import ExperimentConfig, TrafficPattern, WorkloadConfig
from repro.core.experiment import Experiment
from repro.kernel.sched import AppThread, ThreadState
from repro.kernel.syscall import RecvOp, SendOp
from repro.units import kb, msec


def test_recv_op_validates_sizes():
    class FakeEndpoint:
        pass

    with pytest.raises(ValueError):
        RecvOp([], 100)
    with pytest.raises(ValueError):
        RecvOp([FakeEndpoint()], 0)
    with pytest.raises(ValueError):
        RecvOp([FakeEndpoint()], 10, min_bytes=20)


def test_send_op_validates_size():
    with pytest.raises(ValueError):
        SendOp(object(), 0)


def test_thread_cannot_start_twice():
    experiment = Experiment(ExperimentConfig(duration_ns=msec(1)))
    thread = experiment.threads[0]
    experiment.engine.run(until=10_000)
    with pytest.raises(RuntimeError):
        thread.start()


def test_threads_progress_through_states():
    experiment = Experiment(ExperimentConfig(duration_ns=msec(1)))
    assert all(t.state is ThreadState.NEW for t in experiment.threads)
    experiment.engine.run(until=msec(1))
    assert all(t.state is not ThreadState.NEW for t in experiment.threads)


def test_finite_app_body_completes():
    """A generator that stops ends the thread cleanly."""
    experiment = Experiment(ExperimentConfig(duration_ns=msec(1)))
    sender_ep = experiment.sender.endpoints[1]

    def body(thread):
        yield SendOp(sender_ep, 1000)

    thread = AppThread("finite", experiment.sender, experiment.sender.core(5), body)
    experiment.engine.schedule(0, thread.start)
    experiment.engine.run(until=msec(1))
    assert thread.state is ThreadState.DONE


def test_multi_socket_recv_op_serves_whichever_is_ready():
    """The RPC server pattern: one thread, many sockets."""
    config = ExperimentConfig(
        pattern=TrafficPattern.RPC_INCAST,
        num_flows=4,
        duration_ns=msec(3),
        warmup_ns=msec(1),
        workload=WorkloadConfig(rpc_size_bytes=kb(4)),
    )
    experiment = Experiment(config)
    result = experiment.run()
    # every client made progress through the shared server thread
    for flow_id in experiment.receiver.endpoints:
        assert experiment.metrics.flow_bytes("receiver", flow_id) > 0
    assert result.total_throughput_gbps > 0
