"""Unit tests for the skb model."""

from repro.kernel.skb import Skb


def test_end_seq():
    skb = Skb(flow_id=1, seq=1000, payload_bytes=500)
    assert skb.end_seq == 1500


def test_defaults():
    skb = Skb(flow_id=1, seq=0, payload_bytes=100)
    assert skb.regions == []
    assert skb.nframes == 1
    assert not skb.ecn
    assert not skb.is_retransmit


def test_regions_are_independent_per_instance():
    a = Skb(flow_id=1, seq=0, payload_bytes=100)
    b = Skb(flow_id=1, seq=0, payload_bytes=100)
    a.regions.append((1, 100))
    assert b.regions == []
