"""Unit tests for the receive socket queue."""

from repro.kernel.skb import Skb
from repro.kernel.socket import Socket


def make_skb(seq=0, size=1000):
    return Skb(flow_id=1, seq=seq, payload_bytes=size)


def test_enqueue_tracks_unread():
    sock = Socket(1, 10_000)
    sock.enqueue(make_skb(size=400))
    assert sock.available() == 400


def test_drain_whole_skbs():
    sock = Socket(1, 10_000)
    sock.enqueue(make_skb(seq=0, size=300))
    sock.enqueue(make_skb(seq=300, size=300))
    taken, portions = sock.drain(600)
    assert taken == 600
    assert [p[2] for p in portions] == [True, True]
    assert sock.available() == 0


def test_drain_partial_head():
    sock = Socket(1, 10_000)
    sock.enqueue(make_skb(size=1000))
    taken, portions = sock.drain(400)
    assert taken == 400
    assert portions[0][2] is False  # head not fully consumed
    taken2, portions2 = sock.drain(600)
    assert taken2 == 600
    assert portions2[0][2] is True


def test_drain_conserves_bytes():
    sock = Socket(1, 10_000)
    for i in range(5):
        sock.enqueue(make_skb(seq=i * 700, size=700))
    total = 0
    while sock.available():
        taken, portions = sock.drain(900)
        assert taken == sum(p[1] for p in portions)
        total += taken
    assert total == 3500


def test_drain_empty_returns_zero():
    sock = Socket(1, 10_000)
    assert sock.drain(100) == (0, [])


def test_free_space_and_advertised_window():
    sock = Socket(1, 10_000)
    sock.enqueue(make_skb(size=4000))
    assert sock.free_space() == 6000
    assert sock.advertised_window() == 3000  # tcp_adv_win_scale=1


def test_window_never_negative():
    sock = Socket(1, 1000)
    sock.enqueue(make_skb(size=5000))  # over-committed by ooo merging
    assert sock.free_space() == 0
    assert sock.advertised_window() == 0
