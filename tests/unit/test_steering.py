"""Unit tests for flow steering (RSS/aRFS/pinning)."""

import random

from repro.config import SteeringMode
from repro.hardware.steering import SteeringEngine


class FakeQueue:
    def __init__(self, queue_id):
        self.queue_id = queue_id


def make_steering(num_queues=4, capacity=2):
    steering = SteeringEngine(SteeringMode.RSS, random.Random(1), capacity)
    queues = [FakeQueue(i) for i in range(num_queues)]
    for queue in queues:
        steering.register_queue(queue)
    return steering, queues


def test_hash_steering_is_stable():
    steering, _ = make_steering()
    first = steering.queue_for(42)
    assert all(steering.queue_for(42) is first for _ in range(10))


def test_arfs_entry_overrides_hash():
    steering, queues = make_steering()
    assert steering.install_arfs(7, queues[3])
    assert steering.queue_for(7) is queues[3]


def test_arfs_table_capacity_enforced():
    steering, queues = make_steering(capacity=2)
    assert steering.install_arfs(1, queues[0])
    assert steering.install_arfs(2, queues[1])
    assert not steering.install_arfs(3, queues[2])
    assert steering.arfs_install_failures == 1


def test_arfs_reinstall_same_flow_allowed_at_capacity():
    steering, queues = make_steering(capacity=1)
    assert steering.install_arfs(1, queues[0])
    assert steering.install_arfs(1, queues[2])  # update, not a new entry
    assert steering.queue_for(1) is queues[2]


def test_pinned_flow_used_when_no_arfs():
    steering, queues = make_steering()
    steering.pin_flow(9, queues[2])
    assert steering.queue_for(9) is queues[2]


def test_arfs_beats_pinning():
    steering, queues = make_steering()
    steering.pin_flow(9, queues[2])
    steering.install_arfs(9, queues[0])
    assert steering.queue_for(9) is queues[0]


def test_no_queues_registered_raises():
    steering = SteeringEngine(SteeringMode.RSS, random.Random(1), 8)
    try:
        steering.queue_for(1)
    except RuntimeError:
        return
    raise AssertionError("expected RuntimeError")
