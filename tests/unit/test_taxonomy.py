"""Unit tests for the Table-1 CPU taxonomy."""

import pytest

from repro.core.taxonomy import FUNCTION_CATEGORY, Category, categorize


def test_eight_categories():
    assert len(Category) == 8


def test_every_function_maps_to_a_category():
    for op in FUNCTION_CATEGORY:
        assert isinstance(categorize(op), Category)


def test_every_category_has_at_least_one_function():
    covered = set(FUNCTION_CATEGORY.values())
    assert covered == set(Category)


def test_unknown_operation_raises():
    with pytest.raises(KeyError):
        categorize("definitely_not_a_kernel_symbol")


def test_known_classifications_match_paper():
    assert categorize("copy_to_user") is Category.DATA_COPY
    assert categorize("tcp_rcv_established") is Category.TCPIP
    assert categorize("dev_gro_receive") is Category.NETDEV
    assert categorize("skb_release_data") is Category.SKB_MGMT
    assert categorize("__alloc_pages_nodemask") is Category.MEMORY
    assert categorize("lock_sock") is Category.LOCK
    assert categorize("__schedule") is Category.SCHED
    assert categorize("handle_irq_event") is Category.ETC


def test_labels_are_human_readable():
    assert Category.DATA_COPY.label == "data copy"
    assert all(category.label for category in Category)
