"""Unit tests for the NUMA topology."""

import pytest

from repro.core.profiler import CpuProfiler
from repro.costs.calibration import default_cost_model
from repro.hardware.cpu import Core
from repro.hardware.topology import Topology
from repro.sim.engine import Engine


def make_topology(num_nodes=4, cores_per_node=6, nic_node=0):
    topology = Topology(num_nodes, cores_per_node, nic_node)
    engine, profiler, costs = Engine(), CpuProfiler(), default_cost_model()
    for core_id in range(topology.total_cores):
        core = Core(engine, profiler, costs, "h", core_id,
                    topology.node_of_core(core_id), 3.4e9)
        topology.register_core(core)
    return topology


def test_total_cores():
    assert make_topology().total_cores == 24


def test_node_of_core_is_node_major():
    topology = make_topology()
    assert topology.node_of_core(0) == 0
    assert topology.node_of_core(5) == 0
    assert topology.node_of_core(6) == 1
    assert topology.node_of_core(23) == 3


def test_nic_local_first_ordering():
    topology = make_topology(nic_node=0)
    order = topology.cores_nic_local_first()
    assert [c.numa_node for c in order[:6]] == [0] * 6
    assert order[6].numa_node == 1


def test_nic_remote_first_ordering():
    topology = make_topology(nic_node=0)
    order = topology.cores_nic_remote_first()
    assert all(c.numa_node != 0 for c in order[:18])
    assert all(c.numa_node == 0 for c in order[18:])


def test_remote_core_is_on_other_node():
    topology = make_topology()
    local = topology.nodes[0].cores[0]
    remote = topology.remote_core_for(local)
    assert remote.numa_node != local.numa_node


def test_remote_core_single_node_raises():
    topology = make_topology(num_nodes=1)
    with pytest.raises(ValueError):
        topology.remote_core_for(topology.cores[0])


def test_invalid_nic_node_rejected():
    with pytest.raises(ValueError):
        Topology(2, 6, nic_node=5)
