"""Unit tests for the per-stage latency tracing primitives."""

import pytest

from repro.core.report import Table
from repro.trace import (
    NUM_BUCKETS,
    STAGE_KEYS,
    SideTrace,
    StageHistogram,
    TraceHub,
    TraceReport,
)


# --- log2 bucketing --------------------------------------------------------------


def test_bucket_edges():
    """Bucket 0 holds exactly zero; bucket b holds [2^(b-1), 2^b - 1]."""
    hist = StageHistogram()
    hist.record(0)
    assert hist.buckets[0] == 1
    for bucket in range(1, 12):
        low = 1 << (bucket - 1)
        high = (1 << bucket) - 1
        edge_hist = StageHistogram()
        edge_hist.record(low)
        edge_hist.record(high)
        assert edge_hist.buckets[bucket] == 2, f"bucket {bucket}"
        assert sum(edge_hist.buckets) == 2


def test_exact_moments_survive_bucketing():
    hist = StageHistogram()
    values = [0, 1, 7, 8, 1000, 123456, 999]
    for value in values:
        hist.record(value)
    assert hist.count == len(values)
    assert hist.total_ns == sum(values)
    assert hist.max_ns == max(values)
    assert hist.avg_ns == pytest.approx(sum(values) / len(values))


def test_huge_delta_fits():
    hist = StageHistogram()
    hist.record((1 << (NUM_BUCKETS - 1)) - 1)  # largest representable delta
    assert hist.buckets[NUM_BUCKETS - 1] == 1


# --- percentiles -----------------------------------------------------------------


def test_percentile_all_zero_is_exact():
    hist = StageHistogram()
    for _ in range(10):
        hist.record(0)
    assert hist.percentile(0.5) == 0.0
    assert hist.percentile(0.99) == 0.0


def test_percentile_within_bucket_bounds():
    hist = StageHistogram()
    for value in [100, 200, 300, 400, 1000]:
        hist.record(value)
    p50 = hist.percentile(0.5)
    # rank-3 value (300) lands in bucket 9 = [256, 511]
    assert 256 <= p50 <= 511


def test_percentile_never_exceeds_max():
    hist = StageHistogram()
    hist.record(257)  # bucket [256, 511] but max is 257
    assert hist.percentile(0.99) <= 257
    assert hist.percentile(0.5) <= 257


def test_percentile_empty_is_zero():
    assert StageHistogram().percentile(0.99) == 0.0


# --- merge -----------------------------------------------------------------------


def _hist_from(values):
    hist = StageHistogram()
    for value in values:
        hist.record(value)
    return hist


def test_merge_matches_combined_stream():
    a = _hist_from([1, 5, 100])
    b = _hist_from([0, 7, 2000])
    a.merge(b)
    assert a == _hist_from([1, 5, 100, 0, 7, 2000])


def test_merge_associative_and_commutative():
    streams = ([3, 9], [0, 1 << 20], [77, 77, 78])
    # (a+b)+c
    left = _hist_from(streams[0])
    left.merge(_hist_from(streams[1]))
    left.merge(_hist_from(streams[2]))
    # a+(b+c)
    bc = _hist_from(streams[1])
    bc.merge(_hist_from(streams[2]))
    right = _hist_from(streams[0])
    right.merge(bc)
    # c+b+a
    rev = _hist_from(streams[2])
    rev.merge(_hist_from(streams[1]))
    rev.merge(_hist_from(streams[0]))
    assert left == right == rev


def test_report_merge_across_hosts():
    hub_a = TraceHub()
    hub_a.side("receiver").stage("e2e").record(100)
    hub_b = TraceHub()
    hub_b.side("receiver").stage("e2e").record(200)
    hub_b.side("sender").stage("tx_queue").record(5)
    merged = TraceReport.merge([hub_a.report(), hub_b.report()])
    assert merged.hosts["receiver"]["e2e"].count == 2
    assert merged.hosts["receiver"]["e2e"].total_ns == 300
    assert merged.hosts["sender"]["tx_queue"].count == 1


# --- serialization ---------------------------------------------------------------


def test_histogram_round_trip():
    hist = _hist_from([0, 1, 2, 1000, 1 << 40])
    assert StageHistogram.from_dict(hist.to_dict()) == hist


def test_report_round_trip():
    hub = TraceHub()
    hub.side("receiver").stage("rx_sockq").record(400)
    hub.side("sender").stage("tx_xmit").record(12)
    report = hub.report()
    assert TraceReport.from_dict(report.to_dict()) == report


def test_sparse_bucket_encoding():
    payload = _hist_from([1 << 30]).to_dict()
    assert list(payload["buckets"]) == ["31"]  # only the populated bucket


# --- reset-in-place --------------------------------------------------------------


def test_clear_preserves_recorder_references():
    """The warmup reset must not orphan recorder references cached by the
    NIC/link/endpoints: clear() zeroes in place."""
    hub = TraceHub()
    stage = hub.side("receiver").stage("e2e")
    record = stage.record
    record(123)
    hub.reset()
    assert stage.count == 0
    record(7)  # the pre-reset reference still feeds the live histogram
    assert hub.report().hosts["receiver"]["e2e"].total_ns == 7


# --- identity check --------------------------------------------------------------


def _receive_side(softirq, sockq, e2e):
    side = SideTrace("receiver")
    for value in softirq:
        side.stage("rx_softirq").record(value)
    for value in sockq:
        side.stage("rx_sockq").record(value)
    for value in e2e:
        side.stage("e2e").record(value)
    hub = TraceHub()
    hub.sides["receiver"] = side
    return hub.report()


def test_identity_holds_when_stages_telescope():
    report = _receive_side([10, 20], [5, 5], [15, 25])
    checks, violations = report.check_identity()
    assert checks == 2 and violations == []


def test_identity_catches_total_mismatch():
    report = _receive_side([10, 20], [5, 5], [15, 26])
    _, violations = report.check_identity()
    assert any("total" in violation for violation in violations)


def test_identity_catches_count_mismatch():
    report = _receive_side([10], [5, 5], [15, 10])
    _, violations = report.check_identity()
    assert any("counts diverge" in violation for violation in violations)


# --- rendering -------------------------------------------------------------------


def test_to_table_renders_stages_in_datapath_order():
    hub = TraceHub()
    side = hub.side("receiver")
    for key in ("e2e", "rx_sockq", "rx_softirq"):
        side.stage(key).record(1000)
    table = hub.report().to_table("test")
    assert isinstance(table, Table)
    stages = [row[1].split(":")[0] for row in table.rows]
    expected_order = [k for k in STAGE_KEYS if k in {"rx_softirq", "rx_sockq", "e2e"}]
    assert stages == expected_order
    assert table.rows[0][4] == pytest.approx(1.0)  # 1000ns -> 1.00us avg
