"""Unit tests for the frame-train fast path (``repro.hardware.train``).

The randomized equivalence sweep lives in
``tests/property/test_train_equivalence.py``; these tests pin down the
deterministic contracts — the pipeline is actually wired (and unwired under
``--no-train``), the event-count win is real on a known config, trains
conserve frames through settlement, and the flag stays invisible to the
content-addressed result cache.
"""

from repro.config import ExperimentConfig, TrafficPattern
from repro.core.cache import config_cache_key
from repro.core.experiment import Experiment
from repro.core.export import result_to_dict
from repro.hardware.train import FrameTrain
from repro.units import msec


def _experiment(frame_trains, **kwargs):
    config = ExperimentConfig(
        duration_ns=msec(1),
        warmup_ns=msec(1),
        frame_trains=frame_trains,
        **kwargs,
    )
    return Experiment(config)


# --- wiring -------------------------------------------------------------------


def test_pipeline_wired_by_default():
    experiment = _experiment(True)
    assert len(experiment.pipelines) == 2
    fwd, rev = experiment.pipelines
    assert fwd.peer is rev and rev.peer is fwd
    assert experiment.sender.nic.tx_pipeline is fwd
    assert experiment.receiver.nic.rx_pipeline is fwd
    # Every core of the host a pipeline delivers into settles it on job
    # submission/completion (the pipeline's observable hooks).
    for core in experiment.receiver.topology.cores:
        assert core._rx_settle is fwd
    for core in experiment.sender.topology.cores:
        assert core._rx_settle is rev


def test_no_train_unwires_the_pipeline():
    experiment = _experiment(False)
    assert experiment.pipelines == []
    assert experiment.sender.nic.tx_pipeline is None
    assert experiment.sender.nic.rx_pipeline is None
    for host in (experiment.sender, experiment.receiver):
        for core in host.topology.cores:
            assert core._rx_settle is None


# --- the observable contract on one known config ------------------------------


def test_train_mode_identical_results_fewer_events():
    train = _experiment(True)
    legacy = _experiment(False)
    train_payload = result_to_dict(train.run())
    legacy_payload = result_to_dict(legacy.run())
    assert train_payload == legacy_payload
    # The tentpole target is >=30% on the benchmark panels; a short unit run
    # must still show a solid cut, not a rounding error.
    assert train.engine.events_fired < 0.9 * legacy.engine.events_fired


def test_incast_mode_identical_results():
    kwargs = dict(pattern=TrafficPattern.INCAST, num_flows=4)
    train = _experiment(True, **kwargs)
    legacy = _experiment(False, **kwargs)
    assert result_to_dict(train.run()) == result_to_dict(legacy.run())


def test_standin_finish_orders_same_instant_arrival_like_legacy():
    """Regression: a wake standing in for an IRQ job's finish event used the
    wake's own insertion stamp for same-instant ordering, so an arrival whose
    legacy delivery event was inserted between the wake's arming and the IRQ
    submission (drain after rearm, before the raise) was replayed *after* the
    poll that legacy ran it before — the poll took a thinner batch and every
    later receive-side timestamp drifted. This exact config (lossy switch +
    DCTCP incast) hits that interleaving."""
    from repro.config import (CongestionControl, LinkConfig,
                              OptimizationConfig, TcpConfig)

    kwargs = dict(
        pattern=TrafficPattern.INCAST, num_flows=3, seed=1,
        opts=OptimizationConfig(tso_gro=False, jumbo=False, arfs=False,
                                lro=False),
        tcp=TcpConfig(congestion_control=CongestionControl.DCTCP),
        link=LinkConfig(loss_rate=0.001, has_switch=True),
    )
    train = _experiment(True, **kwargs)
    legacy = _experiment(False, **kwargs)
    assert result_to_dict(train.run()) == result_to_dict(legacy.run())


# --- train/pipeline mechanics -------------------------------------------------


def test_trains_settled_up_to_run_end():
    experiment = _experiment(True)
    experiment.run()
    end_ns = experiment.config.warmup_ns + experiment.config.duration_ns
    for pipeline in experiment.pipelines:
        # Everything observable by the end instant has been replayed; only
        # trains still genuinely on the wire (arriving after the end) remain.
        assert all(train.arrival_ns > end_ns for train in pipeline.inflight)
        assert not pipeline._pending_finishes


def test_frame_train_flow_frames_lazy_and_cached():
    class _F:
        def __init__(self, flow_id):
            self.flow_id = flow_id

    train = FrameTrain(
        [_F(1), _F(1), _F(2)], wire_bytes=4500, arrival_ns=10, drain_vt=0
    )
    assert train._flow_frames is None
    counts = train.flow_frames
    assert counts == {1: 2, 2: 1}
    assert train.flow_frames is counts


def test_train_inflight_matches_link_counters():
    experiment = _experiment(True)
    experiment.run()
    for pipeline in experiment.pipelines:
        # The auditor's train-resolved wire identity: whatever the link
        # thinks is in flight must be exactly the frames/bytes aboard queued
        # trains — zero on both sides once the run has settled.
        assert pipeline.link.frames_in_flight == sum(
            len(train.frames) for train in pipeline.inflight
        )
        assert pipeline.link.bytes_in_flight == sum(
            train.wire_bytes for train in pipeline.inflight
        )
        assert pipeline.link.frames_delivered > 0


# --- cache-key transparency ---------------------------------------------------


def test_frame_trains_flag_excluded_from_cache_key():
    on = ExperimentConfig(frame_trains=True)
    off = ExperimentConfig(frame_trains=False)
    assert on.to_canonical_dict() == off.to_canonical_dict()
    assert config_cache_key(on) == config_cache_key(off)
    # ...while a real experiment parameter still changes the key.
    assert config_cache_key(on) != config_cache_key(on.replace(seed=2))
