"""Unit tests for unit-conversion helpers."""

import pytest

from repro import units


def test_time_conversions():
    assert units.usec(1) == 1_000
    assert units.msec(1.5) == 1_500_000
    assert units.sec(2) == 2_000_000_000
    assert units.ns_to_usec(2_500) == 2.5
    assert units.ns_to_sec(1_000_000_000) == 1.0


def test_size_conversions():
    assert units.kb(1) == 1024
    assert units.mb(2) == 2 * 1024 * 1024
    assert units.kb(3200) == 3_276_800


def test_rate_conversions():
    assert units.gbps(100) == 100e9
    assert units.bits_per_sec_to_gbps(42e9) == pytest.approx(42.0)
    assert units.bytes_to_bits(10) == 80


def test_transmission_time_100g():
    # 9000B at 100Gbps = 720ns
    assert units.transmission_time_ns(9000, 100e9) == 720


def test_transmission_time_minimum_1ns():
    assert units.transmission_time_ns(1, 1e15) == 1


def test_transmission_time_invalid_rate():
    with pytest.raises(ValueError):
        units.transmission_time_ns(100, 0)


def test_throughput_gbps():
    # 125MB over 10ms = 100Gbps
    assert units.throughput_gbps(125_000_000, 10_000_000) == pytest.approx(100.0)


def test_throughput_zero_elapsed():
    assert units.throughput_gbps(100, 0) == 0.0
