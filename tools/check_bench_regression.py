#!/usr/bin/env python
"""CI perf gate: engine micro-benchmarks and figure costs vs the baseline.

Two gates against ``benchmarks/baseline_engine.json``:

* **Engine** — the timer-wheel micro-benchmarks (same workloads as
  ``benchmarks/test_bench_engine.py`` and ``repro bench``), compared by
  *calibration-normalized* throughput. Fails when either path drops more
  than the tolerance (default 25%) below baseline.
* **Figures** — each gated panel is regenerated cold in three wire/clock
  modes: the shipping fast path (frame trains + express lane), trains with
  ``--no-express`` (isolating the express lane's contribution), and the
  fully legacy per-event pipeline (``--no-train --no-express``). Gated
  quantities: normalized cost (wall time × calibration throughput, a
  machine-independent work unit) for each mode, with tolerance headroom,
  and the fractional reduction in engine events fired by the combined
  train+express path vs legacy — enforced exactly (it is a structural
  property of the simulation, not a timing). Each panel is also re-run
  with per-stage latency tracing on; the traced/untraced wall-time ratio
  must stay under ``MAX_TRACE_OVERHEAD``.

Usage::

    PYTHONPATH=src python tools/check_bench_regression.py
    PYTHONPATH=src python tools/check_bench_regression.py --figures none
    PYTHONPATH=src python tools/check_bench_regression.py --update  # re-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import bench  # noqa: E402

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "benchmarks" / "baseline_engine.json"

#: Required drop in engine events fired with the combined frame-train +
#: express-lane fast path on, vs the fully legacy per-event pipeline, per
#: gated figure. Kept in the tool (not just the baseline file) so a plain
#: ``--update`` can never quietly weaken it. Trains alone delivered 0.30;
#: fast-forwarding quiescent ACK-clocked rounds off-wheel raises the floor.
MIN_EVENTS_REDUCTION = 0.55

#: Allowed fractional wall-time increase of a traced run over the same
#: panel with tracing off. The tracing-off cost itself is gated by the
#: baseline's ``max_normalized_cost`` ceiling (tracing off is the default
#: everywhere, including the golden-digest gate); this ratio — measured on
#: the same machine in the same process, so it needs no baseline entry —
#: bounds what turning tracing ON may cost. Kept in the tool so
#: ``--update`` can never weaken it.
MAX_TRACE_OVERHEAD = 0.50


def _time_figure(name: str, frame_trains: bool, express: bool, repeat: int,
                 trace: bool = False):
    """Best-of-N cold wall time and engine events fired for one panel."""
    from repro.cli import _run_panel
    from repro.figures import base as figures_base

    best = float("inf")
    for _ in range(repeat):
        figures_base.STATS.reset()
        start = time.perf_counter()
        _run_panel(name, jobs=1, cache=None, audit=False,
                   frame_trains=frame_trains, express=express, trace=trace)
        best = min(best, time.perf_counter() - start)
    return best, figures_base.STATS.events_fired


def _figure_metrics(names, repeat: int, calibration_ops: float):
    rows = {}
    for name in names:
        print(f"figure gate: timing {name} "
              "(fast / --no-express / legacy / traced)...")
        wall, events = _time_figure(name, True, True, repeat)
        wall_nx, events_nx = _time_figure(name, True, False, repeat)
        wall_legacy, events_legacy = _time_figure(name, False, False, repeat)
        wall_traced, _ = _time_figure(name, True, True, repeat, trace=True)
        rows[name] = {
            "normalized_cost": wall * calibration_ops,
            "normalized_cost_no_express": wall_nx * calibration_ops,
            "normalized_cost_legacy": wall_legacy * calibration_ops,
            "events_fired": events,
            "events_fired_no_express": events_nx,
            "events_fired_legacy": events_legacy,
            "events_reduction": (
                1.0 - events / events_legacy if events_legacy else 0.0
            ),
            "trace_overhead": wall_traced / wall - 1.0 if wall else 0.0,
        }
        print(
            f"  {name}: {wall:.3f}s / {wall_nx:.3f}s / {wall_legacy:.3f}s "
            f"wall, {events:,} / {events_nx:,} / {events_legacy:,} events "
            f"({rows[name]['events_reduction']:.1%} fewer than legacy); "
            f"traced {wall_traced:.3f}s "
            f"({rows[name]['trace_overhead']:+.1%} vs tracing off)"
        )
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop below baseline (default 0.25)")
    parser.add_argument("--repeat", type=int, default=5,
                        help="rounds per engine measurement, best-of-N (default 5)")
    parser.add_argument("--figures", default="fig3a,fig9a",
                        help="comma-separated panels for the figure gate "
                        "(default fig3a,fig9a — the single-flow and multi-flow "
                        "tentpole panels; 'none' skips it)")
    parser.add_argument("--figure-repeat", type=int, default=2,
                        help="rounds per figure measurement, best-of-N (default 2)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this machine's numbers")
    args = parser.parse_args()

    current = bench.engine_metrics(repeat=args.repeat)
    print(
        f"schedule_run: {current['schedule_run_events_per_sec']:,.0f} ev/s "
        f"(normalized {current['schedule_run_normalized']:.4f})"
    )
    print(
        f"cancel_churn: {current['cancel_churn_events_per_sec']:,.0f} ev/s "
        f"(normalized {current['cancel_churn_normalized']:.4f})"
    )

    names = []
    if args.figures and args.figures != "none":
        names = [n.strip() for n in args.figures.split(",") if n.strip()]
    figure_rows = _figure_metrics(
        names, args.figure_repeat, current["calibration_ops_per_sec"]
    )

    if args.update:
        doc = {
            "comment": "calibration-normalized perf floors for CI; regenerate "
            "with tools/check_bench_regression.py --update (engine floors are "
            "throughput minima; figure entries are normalized-cost ceilings "
            "for the train+express fast path, the --no-express intermediate, "
            "and the fully legacy pipeline, plus the exact events-fired "
            "reduction the combined fast path must keep delivering)",
            "schedule_run_normalized": current["schedule_run_normalized"],
            "cancel_churn_normalized": current["cancel_churn_normalized"],
            "figures": {
                name: {
                    "max_normalized_cost": row["normalized_cost"],
                    "max_normalized_cost_no_express": row[
                        "normalized_cost_no_express"
                    ],
                    "max_normalized_cost_legacy": row["normalized_cost_legacy"],
                    "min_events_reduction": MIN_EVENTS_REDUCTION,
                }
                for name, row in figure_rows.items()
            },
        }
        with open(args.baseline, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = bench.load_baseline(args.baseline)
    failures = bench.compare_to_baseline(current, baseline, args.tolerance)
    gated = {
        name: floor
        for name, floor in baseline.get("figures", {}).items()
        if not names or name in names
    }
    failures += bench.compare_figures_to_baseline(figure_rows, gated, args.tolerance)
    for name, row in figure_rows.items():
        if row["trace_overhead"] > MAX_TRACE_OVERHEAD:
            failures.append(
                f"{name}: tracing costs {row['trace_overhead']:.1%} over the "
                f"tracing-off run (ceiling {MAX_TRACE_OVERHEAD:.0%})"
            )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"perf gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
