#!/usr/bin/env python
"""CI perf gate: engine micro-benchmarks vs the committed baseline.

Runs the timer-wheel engine micro-benchmarks (same workloads as
``benchmarks/test_bench_engine.py`` and ``repro bench``) and compares their
*calibration-normalized* throughput against ``benchmarks/baseline_engine.json``.
Normalizing by a fixed pure-Python spin makes the committed numbers portable
across machines; the gate fails when either path drops more than the
tolerance (default 25%) below baseline.

Usage::

    PYTHONPATH=src python tools/check_bench_regression.py
    PYTHONPATH=src python tools/check_bench_regression.py --update  # re-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import bench  # noqa: E402

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "benchmarks" / "baseline_engine.json"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop below baseline (default 0.25)")
    parser.add_argument("--repeat", type=int, default=5,
                        help="rounds per measurement, best-of-N (default 5)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this machine's numbers")
    args = parser.parse_args()

    current = bench.engine_metrics(repeat=args.repeat)
    print(
        f"schedule_run: {current['schedule_run_events_per_sec']:,.0f} ev/s "
        f"(normalized {current['schedule_run_normalized']:.4f})"
    )
    print(
        f"cancel_churn: {current['cancel_churn_events_per_sec']:,.0f} ev/s "
        f"(normalized {current['cancel_churn_normalized']:.4f})"
    )

    if args.update:
        doc = {
            "comment": "calibration-normalized engine throughput floor for CI; "
            "regenerate with tools/check_bench_regression.py --update",
            "schedule_run_normalized": current["schedule_run_normalized"],
            "cancel_churn_normalized": current["cancel_churn_normalized"],
        }
        with open(args.baseline, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = bench.load_baseline(args.baseline)
    failures = bench.compare_to_baseline(current, baseline, args.tolerance)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"perf gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
