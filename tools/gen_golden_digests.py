"""Regenerate the golden figure-config digest file.

Harvests every experiment config any figure generator submits, runs each one
with the shortened audit windows, and records (a) the cache key of the
*original* figure config and (b) a SHA-256 digest of the canonical
``result_to_dict`` payload of the shortened run. The committed output
(``tests/golden/figure_digests.json``) pins the simulator's observable
behaviour: any engine or hot-path change that alters a single float in any
result shows up as a digest mismatch in
``tests/integration/test_golden_digests.py``.

Run from the repo root after an *intentional* behaviour change::

    PYTHONPATH=src python tools/gen_golden_digests.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.golden import compute_golden_document

OUT = Path(__file__).resolve().parent.parent / "tests" / "golden" / "figure_digests.json"


def main() -> int:
    document = compute_golden_document()
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    print(f"{len(document['digests'])} config digests written to {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
